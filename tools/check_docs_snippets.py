#!/usr/bin/env python
"""Execute every fenced Python snippet in the documentation tree.

Documentation code rots silently: an API rename breaks an example and
nobody notices until a reader pastes it.  This checker extracts every
fenced code block tagged ``python`` from the given Markdown files (or every
``*.md`` under a given directory) and ``exec``-utes each block in its own
fresh namespace, failing CI if any block raises.

Conventions:

* only blocks whose info string starts with ``python`` run; ``sh``/``text``
  /untagged fences are ignored;
* a block tagged ``python no-run`` is skipped (for illustrative fragments
  that are deliberately not self-contained);
* each block must be self-contained — it runs in an isolated namespace
  with ``src/`` on ``sys.path``, so ``import repro`` works without an
  installed package.

Usage::

    python tools/check_docs_snippets.py docs [more.md ...]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import traceback

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FENCE = "```"


def extract_snippets(path: pathlib.Path) -> list[tuple[int, str, str]]:
    """Return ``(first_line_number, info_string, source)`` per fenced block.

    Follows CommonMark fence matching: a block opened by a run of N
    backticks closes only on a line of >= N backticks and nothing else, so
    fenced examples *displayed inside* longer fences (e.g. a ```` block
    showing a ```python snippet) stay literal instead of desyncing the
    parser.
    """
    snippets = []
    lines = path.read_text().splitlines()
    fence_len = 0  # backtick run of the open fence; 0 = not in a block
    info = ""
    start = 0
    block: list[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        backticks = len(stripped) - len(stripped.lstrip("`"))
        if fence_len == 0 and backticks >= len(FENCE):
            fence_len = backticks
            info = stripped[backticks:].strip().lower()
            start = number + 1
            block = []
        elif fence_len and backticks >= fence_len and not stripped.strip("`"):
            snippets.append((start, info, "\n".join(block)))
            fence_len = 0
        elif fence_len:
            block.append(line)
    if fence_len:
        raise SystemExit(f"{path}: unterminated code fence opened before EOF")
    return snippets


def runnable(info: str) -> bool:
    words = info.split()
    return bool(words) and words[0] in ("python", "py") and "no-run" not in words


def run_snippet(path: pathlib.Path, line: int, source: str) -> str | None:
    """Execute one snippet; return an error description or ``None``."""
    label = f"{path}:{line}"
    try:
        code = compile(source, filename=label, mode="exec")
        exec(code, {"__name__": f"docs_snippet_{line}"})
    except Exception:
        return f"{label}\n{traceback.format_exc()}"
    return None


def collect_files(targets: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for target in targets:
        path = pathlib.Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"{target}: not a Markdown file or directory")
    if not files:
        raise SystemExit(f"no Markdown files found under {targets}")
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("targets", nargs="+",
                        help="Markdown files or directories to check")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: list[str] = []
    total = 0
    for path in collect_files(args.targets):
        for line, info, source in extract_snippets(path):
            if not runnable(info):
                continue
            total += 1
            error = run_snippet(path, line, source)
            status = "FAIL" if error else "ok"
            print(f"[{status}] {path}:{line}")
            if error:
                failures.append(error)

    if failures:
        print(f"\n{len(failures)} of {total} snippets failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"\n--- {failure}", file=sys.stderr)
        return 1
    print(f"\nall {total} documentation snippets executed cleanly.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
