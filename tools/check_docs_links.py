#!/usr/bin/env python
"""Fail CI on dangling intra-repository links in the documentation.

The docs cross-reference each other heavily (``[serving.md](serving.md)``,
``[docs/workloads.md](docs/workloads.md#slo-classes-and-preemption)``),
and a renamed file or retitled section silently strands every link that
pointed at it.  This checker extracts every inline Markdown link from the
given files (or every ``*.md`` under a given directory) and verifies, for
each *relative* target, that

* the linked path exists (resolved against the linking file's directory),
  and
* when a ``#fragment`` is present and the target is a Markdown file, the
  fragment matches a GitHub-style anchor of some heading in that file
  (lowercased, punctuation stripped, spaces to hyphens, ``-N`` suffixes
  for duplicates).

External links (any target with a URL scheme, or protocol-relative
``//...``) are skipped: this tool gates what the repository can promise —
its own tree — not the wider internet.  Links inside fenced code blocks
are ignored, matching how the snippet checker treats fences.

Usage::

    python tools/check_docs_links.py docs README.md
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

FENCE = "```"
#: Inline links/images: ``[text](target)`` — target taken up to the first
#: unescaped closing paren; titles (``[x](y "t")``) are split off later.
LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading (before de-duplication)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: pathlib.Path) -> set[str]:
    """Every anchor the rendered page exposes, duplicates suffixed ``-N``."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if line.strip().startswith(FENCE):
            in_fence = not in_fence
            continue
        match = None if in_fence else HEADING.match(line)
        if match is None:
            continue
        anchor = github_anchor(match.group(2))
        seen = counts.get(anchor, 0)
        counts[anchor] = seen + 1
        anchors.add(anchor if seen == 0 else f"{anchor}-{seen}")
    return anchors


def extract_links(path: pathlib.Path) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every inline link outside fences."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.strip().startswith(FENCE):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1).split(" ")[0].strip("<>")
            links.append((number, target))
    return links


def check_file(path: pathlib.Path, anchors_of) -> list[str]:
    """Dangling-link descriptions for one Markdown file."""
    errors: list[str] = []
    for number, target in extract_links(path):
        if SCHEME.match(target) or target.startswith("//"):
            continue  # external: not this tool's promise to keep
        where = f"{path}:{number}"
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{where}: broken link target {target!r} "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = path.resolve()  # pure in-page anchor: #section
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(f"{where}: dangling anchor {target!r} "
                              f"(no heading in {resolved.name} renders "
                              f"#{fragment})")
    return errors


def collect_files(targets: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for target in targets:
        path = pathlib.Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"{target}: not a Markdown file or directory")
    if not files:
        raise SystemExit(f"no Markdown files found under {targets}")
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("targets", nargs="+",
                        help="Markdown files or directories to check")
    args = parser.parse_args(argv)

    anchor_cache: dict[pathlib.Path, set[str]] = {}

    def anchors_of(path: pathlib.Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(path)
        return anchor_cache[path]

    errors: list[str] = []
    checked = 0
    for path in collect_files(args.targets):
        checked += 1
        errors.extend(check_file(path, anchors_of))

    if errors:
        print(f"{len(errors)} dangling links in {checked} files:",
              file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"all intra-repository links resolve across {checked} files.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
