#!/usr/bin/env python
"""Fail CI when benchmark wall-clock regresses against a committed baseline.

Compares a fresh pytest-benchmark JSON against a baseline JSON committed in
the repository (``benchmarks/baselines/``) and exits non-zero if any
benchmark's mean time exceeds the baseline by more than the allowed
regression (default 20%).

Because the suite is interpreter-bound, absolute times shift with the
machine.  ``--calibrate SUBSTRING`` selects a calibration benchmark present
in both files (see ``benchmarks/test_bench_calibration.py``) and divides
every mean by the machine's calibration mean, so the gate compares
machine-normalized times.

Improvements beyond ``--improvement-threshold`` (default: the allowed
regression) are also reported: a benchmark running far *faster* than its
committed baseline means the baseline is stale, and a stale (too-slow)
baseline silently hands future regressions that much headroom before the
gate fires.  Stale baselines are flagged with a refresh hint; they do not
fail the gate (pass ``--fail-on-improvement`` to make them fail, e.g. in a
scheduled freshness check).

Usage::

    python tools/check_bench_regression.py \
        --current BENCH_serving.json \
        --baseline benchmarks/baselines/BENCH_serving.json \
        --max-regression 0.20 --calibrate calibration
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"]
            for bench in data["benchmarks"]}


def calibration_mean(means: dict[str, float], needle: str, path: str) -> float:
    matches = [mean for name, mean in means.items() if needle in name]
    if not matches:
        raise SystemExit(f"no calibration benchmark matching {needle!r} "
                         f"in {path}")
    return sum(matches) / len(matches)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="pytest-benchmark JSON from this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline pytest-benchmark JSON")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed relative slowdown (0.20 = +20%%)")
    parser.add_argument("--calibrate", default=None,
                        help="substring of a calibration benchmark used to "
                             "normalize for machine speed")
    parser.add_argument("--improvement-threshold", type=float, default=None,
                        help="relative speedup beyond which the committed "
                             "baseline is flagged as stale (default: the "
                             "value of --max-regression)")
    parser.add_argument("--fail-on-improvement", action="store_true",
                        help="exit non-zero when a stale (too-slow) "
                             "baseline is detected instead of only "
                             "flagging it")
    args = parser.parse_args(argv)
    improvement_threshold = (args.max_regression
                             if args.improvement_threshold is None
                             else args.improvement_threshold)

    current = load_means(args.current)
    baseline = load_means(args.baseline)

    scale = 1.0
    if args.calibrate:
        scale = (calibration_mean(baseline, args.calibrate, args.baseline)
                 / calibration_mean(current, args.calibrate, args.current))
        print(f"machine calibration scale: {scale:.3f} "
              f"(>1 means this machine is faster than the baseline's)")

    failures = []
    stale = []
    header = f"{'benchmark':<55s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}"
    print(header)
    print("-" * len(header))
    for name, base_mean in sorted(baseline.items()):
        if args.calibrate and args.calibrate in name:
            continue
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<55s} {base_mean:>9.3f}s {'MISSING':>10s}")
            continue
        normalized = current[name] * scale
        ratio = normalized / base_mean
        flag = ""
        if ratio > 1.0 + args.max_regression:
            failures.append(
                f"{name}: {normalized:.3f}s vs baseline {base_mean:.3f}s "
                f"({(ratio - 1.0):+.1%} > +{args.max_regression:.0%})"
            )
            flag = "  REGRESSION"
        elif ratio < 1.0 - improvement_threshold:
            stale.append(
                f"{name}: {normalized:.3f}s vs baseline {base_mean:.3f}s "
                f"({(1.0 - ratio):.1%} faster than the baseline)"
            )
            flag = "  IMPROVEMENT (stale baseline?)"
        print(f"{name:<55s} {base_mean:>9.3f}s {normalized:>9.3f}s "
              f"{ratio:>6.2f}x{flag}")

    new_benchmarks = sorted(set(current) - set(baseline))
    if new_benchmarks:
        print(f"(not gated — new benchmarks: {', '.join(new_benchmarks)})")

    if stale:
        print("\nstale baselines detected (benchmarks now run more than "
              f"{improvement_threshold:.0%} faster):")
        for entry in stale:
            print(f"  - {entry}")
        print("A too-slow baseline masks future regressions by that much "
              "headroom; regenerate it (see docs/benchmarks.md, "
              "'Regenerating a baseline').")

    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("If the slowdown is intended, regenerate the baseline (see "
              "README.md, 'Benchmarks and the CI perf gate').",
              file=sys.stderr)
        return 1
    if stale and args.fail_on_improvement:
        print("\nperf gate FAILED: stale baselines (see above) with "
              "--fail-on-improvement set.", file=sys.stderr)
        return 1
    print("\nperf regression gate passed "
          f"(allowed +{args.max_regression:.0%}).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
