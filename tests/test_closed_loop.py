"""Tests for closed-loop sessions (PR 8 tentpole).

Pins the closed-loop contracts: turn ``t+1`` of every session arrives at
turn ``t``'s *simulated* completion plus the script's think-time draw
(exact float causality), closed-loop serves are a pure function of
``(spec seed, engine configuration)`` (seed-determinism pin), per-turn
scripts are identical to the open-loop lowering, and the source composes
with the cluster layer and the rate-sweep front end.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.cluster import ReplicaGroup
from repro.experiments import run_experiment
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine
from repro.workloads.sessions import ClosedLoopSessions, sessions

MODEL = "opt-6.7b"

EXACT_KEYS = ("num_requests", "generated_tokens", "duration_s",
              "throughput_tokens_per_s", "mean_queueing_delay_s",
              "prefix_hit_rate", "num_preemptions")


def engine(*, max_batch_size=None, preemption=None,
           **kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(
        FlexGenSystem(MODEL, V100_16GB_NODE, **kwargs),
        max_batch_size=max_batch_size, preemption=preemption)


def chat(num_sessions=12, rate=2.0, seed=3, **kwargs):
    kwargs.setdefault("interactive_fraction", 0.5)
    kwargs.setdefault("mean_turns", 3.0)
    kwargs.setdefault("max_context", 1024)
    kwargs.setdefault("mean_new_input", 48)
    kwargs.setdefault("mean_output", 64)
    return sessions(num_sessions, rate, seed=seed, **kwargs)


def group(replicas=2, policy="session-affinity"):
    def factory(node, parallelism):
        return FlexGenSystem(MODEL, node, parallelism=parallelism)
    return ReplicaGroup.from_layout(factory, f"{replicas}x(none)",
                                    V100_16GB_NODE, policy=policy)


# --------------------------------------------------------------------- #
# Source contract
# --------------------------------------------------------------------- #
class TestSourceContract:
    def test_spec_builds_fresh_single_use_sources(self):
        spec = chat()
        source = spec.closed_loop()
        assert isinstance(source, ClosedLoopSessions)
        assert source.spec is spec
        assert source.num_turns == spec.num_turns
        assert not source.exhausted
        assert spec.closed_loop() is not source

    def test_scripts_match_open_loop_lengths(self):
        spec = chat()
        expected = {(t.session_id, t.turn_index):
                    (t.prefix_len, t.input_len, t.output_len, t.slo_class,
                     t.final_turn)
                    for t in spec.requests()}
        seen = {}
        source = spec.closed_loop()
        # Walk the scripts with a zero-service-time fake server: complete
        # each pop instantly so every turn becomes ready in order.
        while not source.exhausted:
            request = source.pop_next()
            seen[(request.session_id, request.turn_index)] = (
                request.prefix_len, request.input_len, request.output_len,
                request.slo_class, request.final_turn)
            source.on_completion(SimpleNamespace(
                request_id=request.request_id,
                completion_time=request.arrival_time))
        assert seen == expected

    def test_rateless_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no arrival rate"):
            sessions(8).closed_loop()

    def test_unknown_completion_id_raises(self):
        source = chat(num_sessions=2).closed_loop()
        request = source.pop_next()
        done = SimpleNamespace(request_id=request.request_id,
                               completion_time=request.arrival_time + 1.0)
        source.on_completion(done)
        with pytest.raises(ConfigurationError, match="unknown or already"):
            source.on_completion(done)
        with pytest.raises(ConfigurationError, match="unknown or already"):
            source.on_completion(SimpleNamespace(request_id=10**6,
                                                 completion_time=0.0))


# --------------------------------------------------------------------- #
# Engine serves: causality and determinism
# --------------------------------------------------------------------- #
class TestClosedLoopServe:
    def test_seed_determinism_pin(self):
        spec = chat()
        first = engine().serve(spec.closed_loop())
        second = engine().serve(spec.closed_loop())
        assert first.num_requests == spec.num_turns
        assert first.records == second.records
        assert first.summary() == second.summary()

    def test_causality_is_exact(self):
        spec = chat()
        source = spec.closed_loop()
        trace = engine().serve(source)
        assert source.exhausted
        scripts = spec._scripts()
        by_turn: dict[int, dict[int, object]] = {}
        for record in trace.records:
            session_id, turn_index = source.assignments[record.request_id]
            by_turn.setdefault(session_id, {})[turn_index] = record
        for session_id, (start, _, script) in enumerate(scripts):
            turns = by_turn.get(session_id, {})
            assert len(turns) == len(script)
            if script:
                assert turns[0].arrival_time == start
            for turn_index in range(len(script) - 1):
                think = script[turn_index][3]
                prev, cur = turns[turn_index], turns[turn_index + 1]
                # The tentpole contract, as an exact float identity: the
                # next turn arrives at the previous turn's simulated
                # completion plus the scripted think time.
                assert cur.arrival_time == prev.completion_time + think
                assert cur.arrival_time >= prev.completion_time

    def test_arrivals_couple_to_simulated_service(self):
        # Open-loop arrivals bake in an a-priori service allowance; the
        # closed loop replaces it with the engine's own completions, so
        # follow-up arrival instants differ while lengths stay scripted.
        spec = chat()
        open_loop = {(t.session_id, t.turn_index): t.arrival_time
                     for t in spec.requests()}
        source = spec.closed_loop()
        trace = engine().serve(source)
        closed = {source.assignments[r.request_id]: r.arrival_time
                  for r in trace.records}
        assert set(closed) == set(open_loop)
        followups = [key for key in closed if key[1] > 0]
        assert followups
        assert any(closed[key] != open_loop[key] for key in followups)

    def test_streaming_mode_matches_full(self):
        spec = chat()
        full = engine().serve(spec.closed_loop())
        stream = engine().serve(spec.closed_loop(),
                                record_mode="streaming")
        full_summary, stream_summary = full.summary(), stream.summary()
        for key in EXACT_KEYS:
            assert stream_summary[key] == full_summary[key], key

    def test_drained_source_serves_empty(self):
        spec = chat(num_sessions=2)
        source = spec.closed_loop()
        engine().serve(source)
        assert source.exhausted
        leftover = engine().serve(source)
        assert leftover.num_requests == 0

    def test_exact_stepping_rejected(self):
        eng = engine(exact_stepping=True)
        with pytest.raises(ConfigurationError, match="closed-loop"):
            eng.serve(chat(num_sessions=2).closed_loop())

    def test_composes_with_preemption_classes(self):
        spec = chat(num_sessions=16, rate=6.0, seed=5,
                    interactive_fraction=0.4, mean_new_input=64,
                    mean_output=96)
        trace = engine(max_batch_size=4,
                       preemption="recompute").serve(spec.closed_loop())
        assert trace.num_requests == spec.num_turns
        assert trace.num_preemptions > 0
        classes = {r.slo_class for r in trace.records}
        assert classes == {"interactive", "batch"}

    @given(seed=st.integers(0, 2**16),
           num_sessions=st.integers(1, 8),
           mean_turns=st.floats(1.0, 4.0))
    @settings(max_examples=12, deadline=None)
    def test_property_causality_and_determinism(self, seed, num_sessions,
                                                mean_turns):
        spec = sessions(num_sessions, 2.0, seed=seed, mean_turns=mean_turns,
                        max_context=512, mean_new_input=32, mean_output=32)
        source = spec.closed_loop()
        trace = engine().serve(source)
        assert trace.num_requests == spec.num_turns
        assert source.exhausted
        scripts = spec._scripts()
        completions = {source.assignments[r.request_id]: r.completion_time
                       for r in trace.records}
        for record in trace.records:
            session_id, turn_index = source.assignments[record.request_id]
            if turn_index == 0:
                assert record.arrival_time == scripts[session_id][0]
            else:
                think = scripts[session_id][2][turn_index - 1][3]
                assert record.arrival_time == \
                    completions[(session_id, turn_index - 1)] + think
        repeat = engine().serve(spec.closed_loop())
        assert repeat.records == trace.records


# --------------------------------------------------------------------- #
# Cluster composition
# --------------------------------------------------------------------- #
class TestClusterClosedLoop:
    def test_cluster_serve_covers_every_turn(self):
        spec = chat(num_sessions=16)
        trace = group().serve(spec.closed_loop())
        assert trace.num_requests == spec.num_turns
        assert trace.prefix_hit_rate == 1.0  # session affinity holds

    def test_cluster_serve_is_deterministic(self):
        spec = chat(num_sessions=16)
        first = group().serve(spec.closed_loop())
        second = group().serve(spec.closed_loop())
        assert first.summary() == second.summary()
        assert [r.summary() for r in first.replica_traces] == \
            [r.summary() for r in second.replica_traces]

    def test_streaming_cluster_matches_full(self):
        spec = chat(num_sessions=16)
        full = group().serve(spec.closed_loop())
        stream = group().serve(spec.closed_loop(), record_mode="streaming")
        full_summary, stream_summary = full.summary(), stream.summary()
        for key in EXACT_KEYS:
            assert stream_summary[key] == full_summary[key], key


# --------------------------------------------------------------------- #
# Sweep front end
# --------------------------------------------------------------------- #
class TestSweepClosedLoop:
    def test_closed_loop_requires_session_workload(self):
        with pytest.raises(ConfigurationError, match="closed_loop"):
            run_experiment("serving_rate_sweep", rates=(2.0,),
                           closed_loop=True)

    def test_sweep_rows_carry_new_columns(self):
        result = run_experiment(
            "serving_rate_sweep", rates=(2.0,),
            workload=chat(num_sessions=4), closed_loop=True,
            prefill_chunk_tokens=64)
        assert result.rows
        for row in result.rows:
            assert row["p99_preemption_latency_s"] >= 0.0
            assert row["prefill_chunks_per_request"] > 0.0
        assert result.notes["closed_loop"] is True
        assert result.notes["prefill_chunk_tokens"] == 64
