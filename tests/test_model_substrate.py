"""Tests for the NumPy transformer substrate (layers, configs, model)."""

import numpy as np
import pytest

from repro._common import ConfigurationError
from repro.attention.variants import DenseAttentionPolicy, make_policy
from repro.model.builder import default_attention_gain
from repro.model.config import (
    EXECUTABLE_CONFIGS,
    PAPER_CONFIGS,
    ModelConfig,
    executable_stand_in,
    get_config,
    list_configs,
)
from repro.model.generation import generate, teacher_forced_logits
from repro.model.layers import (
    Embedding,
    LayerNorm,
    Linear,
    causal_mask,
    gelu,
    masked_softmax,
    sinusoidal_positions,
)
from repro.model.tokenizer import SyntheticTokenizer
from repro.model.transformer import InferenceSession


class TestLayers:
    def test_linear_matches_matmul(self, rng):
        weight = rng.normal(size=(4, 3))
        bias = rng.normal(size=3)
        layer = Linear(weight, bias)
        x = rng.normal(size=(2, 4))
        assert np.allclose(layer(x), x @ weight + bias)

    def test_linear_shape_validation(self):
        with pytest.raises(ConfigurationError):
            Linear(np.zeros((4, 3)), np.zeros(4))

    def test_layernorm_zero_mean_unit_variance(self, rng):
        layer = LayerNorm(np.ones(16), np.zeros(16))
        out = layer(rng.normal(size=(3, 16)) * 5 + 2)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_embedding_lookup_and_range_check(self, rng):
        table = rng.normal(size=(10, 4))
        emb = Embedding(table)
        assert np.allclose(emb(np.array([1, 3])), table[[1, 3]])
        with pytest.raises(ConfigurationError):
            emb(np.array([10]))

    def test_gelu_fixed_points(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)

    def test_causal_mask_square(self):
        mask = causal_mask(3, 3)
        assert mask.tolist() == [[True, False, False],
                                 [True, True, False],
                                 [True, True, True]]

    def test_causal_mask_with_offset(self):
        mask = causal_mask(2, 5)
        assert mask[0].tolist() == [True, True, True, True, False]
        assert mask[1].tolist() == [True, True, True, True, True]

    def test_causal_mask_rejects_short_keys(self):
        with pytest.raises(ConfigurationError):
            causal_mask(4, 2)

    def test_masked_softmax_zeroes_masked_positions(self):
        scores = np.zeros((1, 1, 2, 3))
        mask = causal_mask(2, 3)
        out = masked_softmax(scores, mask)
        assert out[0, 0, 0, 2] == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_sinusoidal_positions_shape_and_bounds(self):
        pos = sinusoidal_positions(32, 16)
        assert pos.shape == (32, 16)
        assert np.all(np.abs(pos) <= 1.0 + 1e-9)


class TestConfig:
    def test_paper_configs_have_expected_dimensions(self):
        opt30 = get_config("opt-30b")
        assert (opt30.num_layers, opt30.hidden_size, opt30.num_heads) == (48, 7168, 56)

    def test_head_dim_divides_hidden(self):
        for name in list_configs():
            config = get_config(name)
            assert config.hidden_size == config.head_dim * config.num_heads

    def test_kv_bytes_per_token_matches_paper_formula(self):
        config = get_config("opt-6.7b")
        # Paper: 4 * l * h bytes per token per batch element at FP16.
        assert config.kv_bytes_per_token(2.0) == 4 * config.num_layers * config.hidden_size

    def test_parameter_count_scale(self):
        params = get_config("opt-6.7b").num_parameters()
        assert 5e9 < params < 9e9

    def test_invalid_head_split_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(name="x", family="test", num_layers=2, hidden_size=10,
                        num_heads=3)

    def test_unknown_config_raises(self):
        with pytest.raises(ConfigurationError):
            get_config("opt-175b")

    def test_executable_stand_in_mapping(self):
        stand_in = executable_stand_in("opt-30b")
        assert stand_in.executable
        assert stand_in.family == "opt"

    def test_every_paper_config_has_a_stand_in(self):
        for name in PAPER_CONFIGS:
            assert executable_stand_in(name).executable

    def test_executable_configs_are_small(self):
        for config in EXECUTABLE_CONFIGS.values():
            assert config.hidden_size <= 256


class TestRandomModel:
    def test_parameter_count_positive(self, tiny_random_model):
        assert tiny_random_model.num_parameters() > 0

    def test_attention_gain_grows_with_width(self):
        assert (default_attention_gain(get_config("opt-base"))
                > default_attention_gain(get_config("opt-tiny")))

    def test_prefill_logits_shape(self, tiny_random_model):
        session = InferenceSession(tiny_random_model, batch_size=2)
        logits = session.prefill(np.zeros((2, 5), dtype=int) + 7)
        assert logits.shape == (2, 5, tiny_random_model.config.vocab_size)

    def test_decode_appends_to_cache(self, tiny_random_model):
        session = InferenceSession(tiny_random_model, batch_size=1)
        session.prefill(np.full((1, 4), 5))
        session.decode_step(np.array([[6]]))
        assert session.seq_len == 5
        assert session.cache.seq_len == 5

    def test_decode_matches_prefill_for_dense_attention(self, tiny_random_model):
        """Incremental decoding with a KV cache must reproduce the one-shot
        forward pass (the correctness property KV caching relies on)."""
        tokens = np.array([[5, 9, 17, 33, 21, 8]])
        full_session = InferenceSession(tiny_random_model, batch_size=1)
        full_logits = full_session.prefill(tokens)

        incremental = InferenceSession(tiny_random_model, batch_size=1,
                                       policy=DenseAttentionPolicy())
        incremental.prefill(tokens[:, :3])
        outs = []
        for t in range(3, tokens.shape[1]):
            outs.append(incremental.decode_step(tokens[:, t]))
        assert np.allclose(outs[-1], full_logits[:, -1], atol=1e-8)

    def test_generation_shapes_and_determinism(self, tiny_random_model):
        prompt = np.full((2, 6), 11)
        a = generate(tiny_random_model, prompt, max_new_tokens=4, seed=3)
        b = generate(tiny_random_model, prompt, max_new_tokens=4, seed=3)
        assert a.generated_tokens.shape == (2, 4)
        assert np.array_equal(a.generated_tokens, b.generated_tokens)
        assert a.sequences.shape == (2, 10)

    def test_generation_kv_bytes_grow(self, tiny_random_model):
        prompt = np.full((1, 6), 11)
        result = generate(tiny_random_model, prompt, max_new_tokens=4)
        assert result.kv_bytes_per_step == sorted(result.kv_bytes_per_step)

    def test_teacher_forcing_alignment(self, tiny_random_model):
        tokens = np.full((1, 10), 9)
        logits, _ = teacher_forced_logits(tiny_random_model, tokens, prefill_len=4)
        assert logits.shape == (1, 9, tiny_random_model.config.vocab_size)

    def test_sequence_length_limit_enforced(self, tiny_random_model):
        session = InferenceSession(tiny_random_model, batch_size=1)
        too_long = tiny_random_model.config.max_seq_len + 1
        with pytest.raises(ConfigurationError):
            session.prefill(np.full((1, too_long), 5))

    def test_sparse_policy_reduces_attended_tokens(self, tiny_random_model):
        prompt = np.full((1, 32), 13)
        run = generate(tiny_random_model, prompt, max_new_tokens=4,
                       policy=make_policy("swa", kv_sparsity=0.8))
        decode_record = run.records[-1]
        assert all(len(pos) < decode_record.seq_len
                   for pos in decode_record.key_positions)


class TestTokenizer:
    def test_roundtrip(self):
        tok = SyntheticTokenizer()
        ids = tok.encode("the capital of france")
        assert tok.decode(ids[1:]) == "the capital of france"

    def test_bos_prepended(self):
        tok = SyntheticTokenizer()
        assert tok.encode("hello")[0] == tok.bos_token

    def test_same_word_same_id(self):
        tok = SyntheticTokenizer()
        a = tok.encode("paris paris", add_bos=False)
        assert a[0] == a[1]

    def test_overflow_maps_to_unk(self):
        tok = SyntheticTokenizer(vocab_size=10)
        ids = tok.encode(" ".join(f"w{i}" for i in range(20)), add_bos=False)
        assert tok.unk_token in ids.tolist()

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ConfigurationError):
            SyntheticTokenizer(vocab_size=4)
