"""Tests for workloads (recall/corpus/descriptors) and evaluation metrics."""

import numpy as np
import pytest

from repro._common import ConfigurationError
from repro.attention.variants import make_policy
from repro.evaluation.accuracy import evaluate_policy_on_dataset, sweep_sparsity
from repro.evaluation.correlation import (
    distribution_summary,
    score_distribution,
    spearman_correlation,
)
from repro.evaluation.metrics import (
    answer_accuracy,
    geometric_mean,
    negative_perplexity,
    perplexity,
    relative_accuracy_drop,
)
from repro.evaluation.sparsity import (
    attention_weight_sparsity,
    sparsity_over_steps,
)
from repro.model.constructed import DEFAULT_VOCABULARY
from repro.model.generation import generate
from repro.workloads.corpus import sample_prompts, zipf_prompt_batch, zipf_token_stream
from repro.workloads.descriptors import (
    ALPACA_WORKLOAD,
    FIGURE1_WORKLOADS,
    Workload,
    alpaca_batch_sweep,
)
from repro.workloads.recall import (
    ALL_DATASETS,
    LM_DATASETS,
    QA_DATASETS,
    generate_recall_dataset,
    generate_recall_sequence,
    get_dataset_config,
)


class TestWorkloadDescriptors:
    def test_max_seq_len(self):
        assert Workload(4, 128, 512, "w").max_seq_len == 640

    def test_invalid_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(0, 128, 512, "w")

    def test_alpaca_sweep_batches(self):
        sweep = alpaca_batch_sweep()
        assert [w.batch_size for w in sweep] == [4, 8, 16, 32, 64]
        assert all(w.input_len == 128 and w.output_len == 512 for w in sweep)

    def test_figure1_workloads_share_lengths(self):
        assert {w.input_len for w in FIGURE1_WORKLOADS} == {512}

    def test_with_batch_size_preserves_lengths(self):
        wl = ALPACA_WORKLOAD.with_batch_size(64)
        assert (wl.batch_size, wl.input_len, wl.output_len) == (64, 128, 512)


class TestRecallWorkloads:
    def test_sequence_layout(self, rng):
        config = QA_DATASETS["copa"]
        seq = generate_recall_sequence(config, rng)
        assert seq.length <= config.sequence_length
        vocab = config.vocabulary
        # Every answer position holds the bound value for its query token.
        for pos, answer in zip(seq.answer_positions, seq.answer_tokens):
            assert seq.tokens[pos] == answer
            assert vocab.value_start <= answer < vocab.filler_start
            query = seq.tokens[pos - 1]
            assert vocab.query_start <= query < vocab.value_start

    def test_binding_sites_in_prefix(self, rng):
        config = LM_DATASETS["wikitext-2"]
        seq = generate_recall_sequence(config, rng)
        assert seq.binding_positions.max() < config.prefill_len

    def test_answers_consistent_with_bindings(self, rng):
        config = QA_DATASETS["piqa"]
        seq = generate_recall_sequence(config, rng)
        vocab = config.vocabulary
        binding = {}
        for pos in seq.binding_positions:
            binding[int(seq.tokens[pos - 1])] = int(seq.tokens[pos])
        for pos, answer in zip(seq.answer_positions, seq.answer_tokens):
            query = int(seq.tokens[pos - 1])
            key = vocab.key(query - vocab.query_start)
            assert binding[key] == answer

    def test_dataset_determinism(self):
        a = generate_recall_dataset(QA_DATASETS["copa"], seed=5)
        b = generate_recall_dataset(QA_DATASETS["copa"], seed=5)
        assert np.array_equal(a.token_matrix(), b.token_matrix())

    def test_dataset_size(self):
        dataset = generate_recall_dataset(LM_DATASETS["alpaca"].with_sequences(3))
        assert len(dataset) == 3

    def test_all_seven_paper_datasets_registered(self):
        assert set(LM_DATASETS) == {"wikitext-2", "penn-treebank", "alpaca"}
        assert set(QA_DATASETS) == {"piqa", "copa", "openbookqa", "winogrande"}

    def test_get_dataset_config_unknown(self):
        with pytest.raises(ConfigurationError):
            get_dataset_config("mmlu")

    def test_vocabulary_ranges_disjoint(self):
        vocab = DEFAULT_VOCABULARY
        assert vocab.key_start < vocab.query_start < vocab.value_start < vocab.filler_start
        assert vocab.filler_start < vocab.vocab_size

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ALL_DATASETS["copa"].__class__("x", "question-answering",
                                           num_pairs=100)


class TestCorpus:
    def test_zipf_stream_range(self):
        stream = zipf_token_stream(500, 128, seed=1)
        assert stream.min() >= 4 and stream.max() < 128

    def test_zipf_stream_heavy_tail(self):
        stream = zipf_token_stream(2000, 256, seed=2)
        counts = np.bincount(stream, minlength=256)
        assert counts.max() > 5 * np.median(counts[counts > 0])

    def test_zipf_prompt_batch_shape(self):
        batch = zipf_prompt_batch(3, 40, 128, seed=0)
        assert batch.shape == (3, 40)

    def test_sample_prompts_bounds(self):
        prompts = sample_prompts(2, 16, 100, seed=0)
        assert prompts.min() >= 4 and prompts.max() < 100

    def test_invalid_repeat_probability(self):
        with pytest.raises(ConfigurationError):
            zipf_token_stream(10, 64, repeat_probability=1.5)


class TestMetrics:
    def test_perplexity_of_perfect_prediction(self):
        logits = np.full((1, 4, 8), -100.0)
        targets = np.array([[1, 2, 3, 4]])
        for t, tok in enumerate(targets[0]):
            logits[0, t, tok] = 100.0
        assert perplexity(logits, targets) == pytest.approx(1.0)

    def test_perplexity_of_uniform_prediction(self):
        logits = np.zeros((1, 5, 16))
        targets = np.zeros((1, 5), dtype=int)
        assert perplexity(logits, targets) == pytest.approx(16.0)

    def test_negative_perplexity_sign(self):
        logits = np.zeros((1, 5, 16))
        targets = np.zeros((1, 5), dtype=int)
        assert negative_perplexity(logits, targets) == pytest.approx(-16.0)

    def test_answer_accuracy(self):
        logits = np.zeros((1, 4, 8))
        logits[0, 1, 3] = 5.0
        logits[0, 3, 2] = 5.0
        targets = np.array([[0, 3, 0, 7]])
        assert answer_accuracy(logits, targets, np.array([1, 3])) == 0.5

    def test_accuracy_requires_positions(self):
        with pytest.raises(ConfigurationError):
            answer_accuracy(np.zeros((1, 2, 4)), np.zeros((1, 2), dtype=int),
                            np.array([]))

    def test_relative_drop(self):
        assert relative_accuracy_drop(0.8, 0.6) == pytest.approx(0.25)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            perplexity(np.zeros((1, 3, 4)), np.zeros((1, 4), dtype=int))


class TestSparsityAndCorrelation:
    def test_one_hot_rows_are_sparse(self):
        weights = np.zeros((1, 1, 1, 10))
        weights[..., 3] = 1.0
        assert attention_weight_sparsity(weights) == pytest.approx(0.9)

    def test_uniform_rows_are_dense(self):
        weights = np.full((1, 1, 1, 10), 0.1)
        assert attention_weight_sparsity(weights) == 0.0

    def test_causal_masking_excluded_from_count(self):
        weights = np.full((1, 1, 4, 4), 0.25)
        sparsity = attention_weight_sparsity(weights, causal=True)
        assert sparsity == 0.0

    def test_sparsity_over_steps_shape(self, tiny_random_model):
        prompts = sample_prompts(1, 16, tiny_random_model.config.vocab_size)
        run = generate(tiny_random_model, prompts, max_new_tokens=3,
                       policy=make_policy("dense"))
        matrix = sparsity_over_steps(run.records)
        # One prefill record plus max_new_tokens - 1 decode records.
        assert matrix.shape == (3, tiny_random_model.config.num_layers)
        assert np.all((matrix >= 0) & (matrix <= 1))

    def test_spearman_perfect_and_inverted(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(a, a * 10) == pytest.approx(1.0)
        assert spearman_correlation(a, -a) == pytest.approx(-1.0)

    def test_spearman_constant_input(self):
        assert spearman_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_distribution_summary(self):
        summary = distribution_summary(np.array([10.0, 1.0, 1.0, 1.0, 1.0,
                                                 1.0, 1.0, 1.0, 1.0, 1.0]))
        assert summary["top10pct_mass"] > 0.5
        assert summary["max_share"] > 0.5

    def test_score_distribution_sorted(self):
        dist = score_distribution(np.array([0.1, 0.9, 0.5]))
        assert dist.tolist() == sorted(dist.tolist(), reverse=True)


class TestAccuracyIntegration:
    """Integration: the full Figure-8 mechanism on a small configuration."""

    def test_dense_solves_the_recall_task(self, recall_model, small_recall_dataset):
        result = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                            "dense", kv_sparsity=0.0)
        assert result.accuracy >= 0.9

    def test_swa_matches_dense_at_high_sparsity(self, recall_model,
                                                small_recall_dataset):
        dense = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                           "dense", kv_sparsity=0.0)
        swa = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                         "swa", kv_sparsity=0.8)
        assert swa.accuracy >= dense.accuracy - 0.15

    def test_local_attention_collapses(self, recall_model, small_recall_dataset):
        local = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                           "local", kv_sparsity=0.5)
        swa = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                         "swa", kv_sparsity=0.5)
        assert local.accuracy < swa.accuracy - 0.3

    def test_compression_tracks_swa(self, recall_model, small_recall_dataset):
        swa = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                         "swa", kv_sparsity=0.8)
        alisa = evaluate_policy_on_dataset(recall_model, small_recall_dataset,
                                           "swa", kv_sparsity=0.8,
                                           compressed=True)
        assert alisa.accuracy == pytest.approx(swa.accuracy, abs=0.05)

    def test_sweep_contains_all_series(self):
        results = sweep_sparsity("opt-6.7b", QA_DATASETS["copa"],
                                 sparsities=(0.0, 0.8), num_sequences=2)
        policies = {(r.policy, r.compressed) for r in results}
        assert ("dense", False) in policies
        assert ("swa", True) in policies
        assert ("local", False) in policies
