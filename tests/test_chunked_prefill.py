"""Tests for chunked prefill (PR 8 tentpole).

Pins the tentpole contracts: a ``prefill_chunk_tokens=None`` engine stays
event-journal-identical to the PR 7 core (golden-pinned), chunked serves
conserve every prefill token across chunk events, prefix hits chunk only
the suffix, mid-prefill preemption retains or recomputes completed chunks
per mode, and — the acceptance bar — a higher-priority arrival's
preemption wait is bounded by one chunk's priced duration.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine
from repro.serving.events import (
    ADMISSION,
    ARRIVAL,
    COMPLETION,
    EPOCH_BOUNDARY,
    PREEMPTION,
    PREFILL_CHUNK,
    drive,
)
from repro.workloads.arrivals import Request, generate_requests
from repro.workloads.sessions import sessions

MODEL = "opt-6.7b"


def engine(*, chunk=None, max_batch_size=None, preemption=None,
           **kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(
        FlexGenSystem(MODEL, V100_16GB_NODE, **kwargs),
        max_batch_size=max_batch_size, preemption=preemption,
        prefill_chunk_tokens=chunk)


def requests(n=16, rate=4.0, seed=3, **kwargs):
    return generate_requests(n, rate, pattern="bursty", seed=seed,
                             max_len=512, **kwargs)


def serve_with_journal(eng, reqs):
    trace = eng.make_trace("full")
    run = eng.start_run(trace,
                        max_input_len=max(r.input_len for r in reqs),
                        max_output_len=max(r.output_len for r in reqs))
    journal: list = []
    ordered = sorted(reqs, key=lambda r: (r.arrival_time, r.request_id))
    drive(ordered, [run], lambda request: 0, journal=journal)
    return run.finalize(), journal


def contended_mix():
    """Four long batch prompts at t=0 plus interactive turns that arrive
    while those prompts are still prefilling — each interactive admission
    must preempt its way into a full batch."""
    reqs = [Request(request_id=i, arrival_time=0.0, input_len=480,
                    output_len=48, slo_class="batch") for i in range(4)]
    for j, arrival in enumerate((0.03, 0.12, 0.25, 0.40)):
        reqs.append(Request(request_id=4 + j, arrival_time=arrival,
                            input_len=48, output_len=24,
                            slo_class="interactive"))
    return reqs


# --------------------------------------------------------------------- #
# Chunking disabled: bit-identical to the PR 7 event core
# --------------------------------------------------------------------- #
class TestDisabledIdentity:
    def test_none_budget_event_journal_identical(self):
        reference, ref_journal = serve_with_journal(engine(), requests())
        explicit, none_journal = serve_with_journal(engine(chunk=None),
                                                    requests())
        assert none_journal == ref_journal
        assert explicit.records == reference.records
        assert explicit.summary() == reference.summary()
        kinds = {kind for _, kind, _ in ref_journal}
        assert kinds == {ARRIVAL, ADMISSION, EPOCH_BOUNDARY, COMPLETION}
        assert PREFILL_CHUNK not in kinds

    def test_pr7_golden_pin_with_chunking_off(self):
        # Frozen observables from the event-core PR: the chunking machinery
        # must degrade to `+0` arithmetic when no budget is set.
        trace = engine(chunk=None).serve(requests())
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.metadata["kv_budget_tokens"] == 4946
        assert trace.metadata["peak_reserved_tokens"] == 4896
        assert trace.metadata["num_epochs"] == 24
        assert trace.metadata["num_decode_steps"] == 605
        assert "prefill_chunking" not in trace.metadata
        assert trace.prefill_chunks_per_request == 0.0
        assert trace.p99_preemption_latency == 0.0
        assert all(r.prefill_chunks == 0 and not r.preempting
                   for r in trace.records)


# --------------------------------------------------------------------- #
# Chunked serves: events, conservation, prefix composition
# --------------------------------------------------------------------- #
class TestChunkedServe:
    def test_journal_gains_chunk_events(self):
        _, journal = serve_with_journal(engine(chunk=96), requests())
        kinds = {kind for _, kind, _ in journal}
        assert kinds == {ARRIVAL, ADMISSION, PREFILL_CHUNK, EPOCH_BOUNDARY,
                         COMPLETION}

    def test_token_conservation_and_metadata(self):
        reqs = requests()
        chunked = engine(chunk=96).serve(reqs)
        plain = engine().serve(reqs)
        meta = chunked.metadata["prefill_chunking"]
        assert meta["chunk_tokens"] == 96
        # Every prefill token is applied by exactly one chunk event.
        assert meta["chunked_tokens"] == sum(r.input_len for r in reqs)
        assert meta["num_chunks"] > 0
        assert meta["max_chunk_s"] > 0.0
        assert chunked.num_requests == plain.num_requests
        assert chunked.generated_tokens == plain.generated_tokens
        per_request = [r.prefill_chunks for r in chunked.records]
        assert all(chunks >= 1 for chunks in per_request)
        by_id = {r.request_id: r for r in chunked.records}
        for request in reqs:
            assert by_id[request.request_id].prefill_chunks >= \
                math.ceil(request.input_len / 96)
        # A chunk event covers at least one request, so the per-request
        # participation counts dominate the event count.
        assert sum(per_request) >= meta["num_chunks"]
        assert chunked.prefill_chunks_per_request == pytest.approx(
            sum(per_request) / len(per_request))
        assert chunked.summary()["prefill_chunks_per_request"] == \
            chunked.prefill_chunks_per_request

    def test_prefix_hits_chunk_only_the_suffix(self):
        spec = sessions(10, 2.0, seed=3, interactive_fraction=0.5,
                        mean_turns=3.0, max_context=1024,
                        mean_new_input=48, mean_output=64)
        trace = engine(chunk=64).serve(spec.requests())
        assert trace.prefix_hit_rate > 0.0
        expected = sum(
            record.input_len - (record.prefix_len if record.prefix_hit
                                else 0)
            for record in trace.records)
        assert trace.metadata["prefill_chunking"]["chunked_tokens"] == \
            expected

    def test_streaming_mode_reports_chunk_columns(self):
        full = engine(chunk=96).serve(requests())
        stream = engine(chunk=96).serve(requests(),
                                        record_mode="streaming")
        assert stream.summary()["prefill_chunks_per_request"] == \
            full.summary()["prefill_chunks_per_request"]
        assert stream.summary()["p99_preemption_latency_s"] == 0.0

    def test_oversized_budget_is_one_chunk_per_request(self):
        reqs = requests(n=8)
        trace = engine(chunk=4096).serve(reqs)
        assert all(r.prefill_chunks == 1 for r in trace.records)
        assert trace.generated_tokens == engine().serve(reqs).generated_tokens

    @given(seed=st.integers(0, 2**16),
           chunk=st.sampled_from([16, 48, 128, 600]),
           n=st.integers(2, 12),
           rate=st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=20, deadline=None)
    def test_property_token_conservation(self, seed, chunk, n, rate):
        # For any workload and budget: chunk events apply each prompt token
        # exactly once, every request participates in at least enough
        # chunks to cover its prompt, and decode output is untouched.
        reqs = generate_requests(n, rate, pattern="poisson", seed=seed,
                                 max_len=256)
        trace = engine(chunk=chunk).serve(reqs)
        meta = trace.metadata["prefill_chunking"]
        assert meta["chunked_tokens"] == sum(r.input_len for r in reqs)
        assert trace.generated_tokens == sum(r.output_len for r in reqs)
        by_id = {r.request_id: r for r in trace.records}
        for request in reqs:
            assert by_id[request.request_id].prefill_chunks >= \
                math.ceil(request.input_len / chunk)


# --------------------------------------------------------------------- #
# Mid-prefill preemption: completed chunks retained or recomputed
# --------------------------------------------------------------------- #
class TestMidPrefillPreemption:
    @pytest.mark.parametrize("mode", ["retain", "recompute"])
    def test_preempted_chunked_work_completes(self, mode):
        mix = contended_mix()
        trace = engine(chunk=32, max_batch_size=4,
                       preemption=mode).serve(mix)
        assert trace.num_requests == len(mix)
        assert trace.num_preemptions > 0
        meta = trace.metadata["preemption"]
        assert meta["mode"] == mode
        if mode == "retain":
            assert meta["swap_bytes"] > 0
        else:
            assert meta["recompute_tokens"] > 0

    def test_retain_conserves_recompute_replays_chunks(self):
        # Retain keeps a victim's completed chunks (only the remaining
        # suffix is chunked on resume), so the chunk ledger still balances
        # exactly; recompute re-prefills the resident context, so the same
        # scenario applies strictly more chunk tokens than the prompts.
        mix = contended_mix()
        need = sum(r.input_len for r in mix)
        retain = engine(chunk=32, max_batch_size=4,
                        preemption="retain").serve(mix)
        recompute = engine(chunk=32, max_batch_size=4,
                           preemption="recompute").serve(mix)
        assert retain.num_preemptions > 0
        assert retain.metadata["prefill_chunking"]["chunked_tokens"] == need
        assert recompute.metadata["prefill_chunking"]["chunked_tokens"] > need

    def test_chunk_events_journal_under_preemption(self):
        # Chunk-boundary preemptions happen inside admission rounds (no
        # scheduled PREEMPTION event needed) — the journal stays within
        # the known event vocabulary and records the chunk stream.
        eng = engine(chunk=32, max_batch_size=4, preemption="recompute")
        mix = contended_mix()
        trace = eng.make_trace("full")
        run = eng.start_run(trace,
                            max_input_len=max(r.input_len for r in mix),
                            max_output_len=max(r.output_len for r in mix))
        journal: list = []
        drive(mix, [run], lambda request: 0, journal=journal)
        served = run.finalize()
        assert served.num_preemptions > 0
        kinds = {kind for _, kind, _ in journal}
        assert PREFILL_CHUNK in kinds
        assert kinds <= {ARRIVAL, ADMISSION, EPOCH_BOUNDARY, COMPLETION,
                         PREEMPTION, PREFILL_CHUNK}


# --------------------------------------------------------------------- #
# Acceptance: preemption latency bounded by one chunk's priced time
# --------------------------------------------------------------------- #
class TestBoundedPreemptionWait:
    def test_interactive_wait_bounded_by_one_chunk(self):
        mix = contended_mix()
        chunked = engine(chunk=128, max_batch_size=4,
                         preemption="recompute").serve(mix)
        waits = chunked.preemption_waits
        assert waits  # interactive arrivals did preempt
        bound = chunked.metadata["prefill_chunking"]["max_chunk_s"]
        assert max(waits) <= bound + 1e-9
        assert chunked.p99_preemption_latency <= bound + 1e-9
        assert chunked.summary()["p99_preemption_latency_s"] == \
            chunked.p99_preemption_latency
        preemptors = [r for r in chunked.records if r.preempting]
        assert all(r.slo_class == "interactive" for r in preemptors)

    def test_monolithic_prefill_waits_longer(self):
        # Same scenario, no chunk budget: interactive arrivals landing
        # mid-prefill stall behind the whole 4x480-token prefill epoch —
        # with no admission round to refuse them there is nothing to
        # preempt, and their queueing delay dwarfs the chunked bound.
        mix = contended_mix()
        chunked = engine(chunk=128, max_batch_size=4,
                         preemption="recompute").serve(mix)
        monolithic = engine(max_batch_size=4,
                            preemption="recompute").serve(mix)

        def interactive_delays(trace):
            return [r.queueing_delay for r in trace.records
                    if r.slo_class == "interactive"]

        bound = chunked.metadata["prefill_chunking"]["max_chunk_s"]
        assert max(interactive_delays(monolithic)) > bound
        assert max(interactive_delays(monolithic)) > \
            max(interactive_delays(chunked))


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #
class TestValidation:
    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="prefill_chunk_tokens"):
            engine(chunk=0)
        with pytest.raises(ConfigurationError, match="prefill_chunk_tokens"):
            engine(chunk=-64)

    def test_exact_stepping_combination_rejected(self):
        with pytest.raises(ConfigurationError, match="exact_stepping"):
            engine(chunk=64, exact_stepping=True)
