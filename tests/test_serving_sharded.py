"""Multi-GPU sharded serving: presets, TP/PP cost terms, per-shard admission.

The 1-GPU regression pin holds the sharded engine to the exact numbers the
pre-sharding engine produced (golden values captured from the seed revision
of this repository), so single-GPU serving can never drift as the multi-GPU
path evolves.
"""

from dataclasses import replace

import pytest

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.core.engine import AlisaSystem
from repro.core.schedule_cache import ScheduleCache
from repro.experiments import run_experiment
from repro.experiments.serving import max_sustained_rate
from repro.hardware.presets import (
    NVLINK,
    PCIE_P2P,
    V100_16GB_NODE,
    V100_16GB_X2_NODE,
    V100_16GB_X4_NODE,
    HardwareSpec,
    get_hardware,
    get_interconnect,
    multi_gpu,
)
from repro.model.config import get_config
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import LLMCostModel, ParallelismSpec
from repro.workloads.arrivals import Request, generate_requests

MODEL = "opt-6.7b"


class TestMultiGPUPresets:
    def test_multi_gpu_keeps_per_gpu_resources(self):
        node = multi_gpu(V100_16GB_NODE, 4)
        assert node.gpu_count == 4
        assert node.gpu == V100_16GB_NODE.gpu
        assert node.pcie_bandwidth == V100_16GB_NODE.pcie_bandwidth
        assert node.node_gpu_memory_bytes == 4 * V100_16GB_NODE.gpu.memory_bytes
        assert node.node_pcie_bandwidth == 4 * V100_16GB_NODE.pcie_bandwidth

    def test_multi_gpu_degree_one_is_the_base_node(self):
        assert multi_gpu(V100_16GB_NODE, 1) is V100_16GB_NODE

    def test_x2_x4_presets_registered(self):
        assert get_hardware("v100-16gb-node-x2-nvlink") is V100_16GB_X2_NODE
        assert get_hardware("v100-16gb-node-x4-nvlink") is V100_16GB_X4_NODE
        assert V100_16GB_X4_NODE.interconnect is NVLINK

    def test_multi_gpu_requires_interconnect(self):
        with pytest.raises(ConfigurationError):
            HardwareSpec("bad", V100_16GB_NODE.gpu, V100_16GB_NODE.cpu,
                         20e9, gpu_count=2, interconnect=None)

    def test_interconnect_lookup(self):
        assert get_interconnect("nvlink") is NVLINK
        assert get_interconnect("pcie-p2p") is PCIE_P2P
        with pytest.raises(ConfigurationError):
            get_interconnect("carrier-pigeon")


class TestParallelismSpec:
    def test_parse_round_trips_labels(self):
        for label, mode, degree in (("none", "none", 1), ("tp-2", "tp", 2),
                                    ("pp-4", "pp", 4), ("tp4", "tp", 4)):
            spec = ParallelismSpec.parse(label)
            assert (spec.mode, spec.degree) == (mode, degree)
        assert ParallelismSpec.parse("tp-2").label == "tp-2"
        assert ParallelismSpec.parse("1gpu").label == "none"
        assert ParallelismSpec.parse("tp-1") == ParallelismSpec()

    def test_parse_rejects_garbage(self):
        for bad in ("dp-2", "tp-", "tensor", ""):
            with pytest.raises(ConfigurationError):
                ParallelismSpec.parse(bad)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelismSpec(mode="none", degree=2)
        with pytest.raises(ConfigurationError):
            ParallelismSpec(mode="tp", degree=1)
        with pytest.raises(ConfigurationError):
            ParallelismSpec(mode="ep", degree=2)


class TestParallelCostTerms:
    CONFIG = get_config(MODEL)

    def _model(self, mode, degree, **kwargs):
        hardware = multi_gpu(V100_16GB_NODE, degree)
        return LLMCostModel(self.CONFIG, hardware,
                            parallelism=ParallelismSpec(mode, degree, **kwargs))

    def test_degree_one_is_bit_identical(self):
        base = LLMCostModel(self.CONFIG, V100_16GB_NODE)
        explicit = LLMCostModel(self.CONFIG, V100_16GB_NODE,
                                parallelism=ParallelismSpec())
        for b, s in ((1, 128), (16, 512)):
            assert explicit.decode_step_time(b, s) == base.decode_step_time(b, s)
            assert explicit.prefill_time(b, s) == base.prefill_time(b, s)
            assert explicit.recompute_time(b, s) == base.recompute_time(b, s)
            assert explicit.quantize_time(b, s) == base.quantize_time(b, s)
        assert explicit.pcie_time(1e9) == base.pcie_time(1e9)
        assert explicit.parallel_comm_time(16) == 0.0

    def test_tp_divides_compute_and_pays_allreduces(self):
        base = LLMCostModel(self.CONFIG, V100_16GB_NODE)
        tp4 = self._model("tp", 4)
        comm = tp4.parallel_comm_time(16)
        assert comm > 0
        assert tp4.decode_step_time(16, 512) == pytest.approx(
            base.decode_step_time(16, 512) / 4 + comm)
        assert tp4.pp_boundary_time(16) == 0.0
        assert tp4.pp_bubble_factor() == 1.0

    def test_pp_pays_bubble_and_stage_transfers(self):
        base = LLMCostModel(self.CONFIG, V100_16GB_NODE)
        pp4 = self._model("pp", 4, pp_microbatches=4)
        assert pp4.pp_bubble_factor() == pytest.approx((4 + 3) / 4)
        assert pp4.tp_allreduce_time(16) == 0.0
        expected = (base.decode_step_time(16, 512) / 4 * pp4.pp_bubble_factor()
                    + pp4.pp_boundary_time(16))
        assert pp4.decode_step_time(16, 512) == pytest.approx(expected)

    def test_more_microbatches_shrink_the_bubble(self):
        small = self._model("pp", 4, pp_microbatches=2)
        large = self._model("pp", 4, pp_microbatches=16)
        assert large.pp_bubble_factor() < small.pp_bubble_factor()
        assert large.decode_step_time(16, 512) < small.decode_step_time(16, 512)

    def test_sharded_offload_uses_aggregate_host_links(self):
        base = LLMCostModel(self.CONFIG, V100_16GB_NODE)
        tp4 = self._model("tp", 4)
        assert tp4.pcie_time(1e9) == pytest.approx(base.pcie_time(1e9) / 4)
        assert tp4.recompute_time(16, 256) == pytest.approx(
            base.recompute_time(16, 256) / 4)
        assert tp4.quantize_time(16, 256) == pytest.approx(
            base.quantize_time(16, 256) / 4)

    def test_degree_must_match_gpu_count(self):
        with pytest.raises(ConfigurationError):
            LLMCostModel(self.CONFIG, V100_16GB_NODE,
                         parallelism=ParallelismSpec("tp", 2))
        with pytest.raises(ConfigurationError):
            LLMCostModel(self.CONFIG, multi_gpu(V100_16GB_NODE, 4),
                         parallelism=ParallelismSpec("tp", 2))


def engine(gpu_count=1, mode="tp", system=FlexGenSystem, **kwargs):
    hardware = multi_gpu(V100_16GB_NODE, gpu_count)
    parallelism = (ParallelismSpec() if gpu_count == 1
                   else ParallelismSpec(mode, gpu_count))
    return ContinuousBatchingEngine(
        system(MODEL, hardware, parallelism=parallelism), **kwargs)


class TestShardedAdmission:
    def test_shard_budgets_sum_to_node_budget(self):
        quad = engine(gpu_count=4)
        # A remainder-heavy split: budgets differ by at most one token and
        # never lose (or invent) capacity.
        for node_budget in (7, 1001, 9924, 196605):
            budgets = quad.shard_budgets(node_budget)
            assert len(budgets) == 4
            assert sum(budgets) == node_budget
            assert max(budgets) - min(budgets) <= 1

    def test_shard_footprint_rounds_up(self):
        quad = engine(gpu_count=4)
        assert quad.shard_footprint(Request(0, 0.0, 100, 1)) == 26
        single = engine(gpu_count=1)
        assert single.shard_footprint(Request(0, 0.0, 100, 28)) == 128

    def test_oversized_request_rejected_not_truncated(self):
        # The request's per-shard slice exceeds every shard budget: admission
        # must fail loudly even though 2x the node budget would "fit" if the
        # engine silently truncated the sequence.
        quad = engine(gpu_count=4)
        oversized = Request(0, 0.0, input_len=120000, output_len=120000)
        probe = quad.kv_budget_tokens([oversized])
        assert quad.shard_footprint(oversized) > min(quad.shard_budgets(probe))
        with pytest.raises(ConfigurationError, match="never be admitted"):
            quad.serve([oversized])

    def test_sharded_admission_is_conservative(self):
        # ceil(max_seq_len / shards) on every shard can only admit fewer
        # requests than the node-level budget would.
        requests = generate_requests(16, rate=50.0, input_len=255,
                                     output_len=254, seed=2)
        quad = engine(gpu_count=4)
        trace = quad.serve(requests)
        budget = trace.metadata["kv_budget_tokens"]
        limit = min(quad.shard_budgets(budget))
        for shard in trace.metadata["shards"]:
            assert shard["peak_reserved_tokens"] <= limit
            assert 0.0 < shard["peak_occupancy"] <= 1.0

    def test_all_requests_complete_on_sharded_node(self):
        requests = generate_requests(12, rate=8.0, input_len=128,
                                     output_len=64, seed=1)
        for gpu_count, mode in ((2, "tp"), (4, "tp"), (2, "pp"), (4, "pp")):
            trace = engine(gpu_count=gpu_count, mode=mode).serve(requests)
            assert trace.num_requests == len(requests)
            assert len(trace.metadata["shards"]) == gpu_count
            assert trace.metadata["parallelism"]["degree"] == gpu_count

    def test_comm_time_share_reported_for_tp_only_on_multi_gpu(self):
        requests = generate_requests(6, rate=8.0, input_len=64,
                                     output_len=32, seed=4)
        single = engine(gpu_count=1).serve(requests)
        assert single.metadata["comm_time_s"] == 0.0
        assert single.metadata["comm_time_share"] == 0.0
        tp = engine(gpu_count=2).serve(requests)
        assert 0.0 < tp.metadata["comm_time_share"] < 1.0


class TestSingleGPURegressionPin:
    """The sharded engine at 1 GPU is the pre-sharding engine, exactly.

    Golden values were produced by the seed revision of this repository
    (before shard budgets, ParallelismSpec, or multi-GPU cost terms
    existed) on the same trace; the sharded engine must reproduce them
    bit-for-bit.
    """

    GOLDEN = {
        "flexgen": dict(duration_s=3.329817241320824,
                        p99_ttft_s=0.8534277092201079,
                        p50_tpot_s=0.01871808752902459,
                        kv_budget_tokens=4962, peak_reserved_tokens=4608,
                        num_epochs=7, num_decode_steps=131, pcie_bytes=0.0),
        "alisa": dict(duration_s=3.2578830003252692,
                      p99_ttft_s=0.8540543676378853,
                      p50_tpot_s=0.018145979159050845,
                      kv_budget_tokens=9924, peak_reserved_tokens=4608,
                      num_epochs=7, num_decode_steps=131, pcie_bytes=0.0),
    }

    @pytest.mark.parametrize("system", ["flexgen", "alisa"])
    def test_one_gpu_trace_matches_pre_sharding_golden(self, system):
        requests = generate_requests(12, 16.0, input_len=256, output_len=128,
                                     seed=5)
        simulator = (FlexGenSystem(MODEL, V100_16GB_NODE)
                     if system == "flexgen"
                     else AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8))
        trace = ContinuousBatchingEngine(simulator).serve(requests)
        summary = trace.summary()
        golden = self.GOLDEN[system]
        for key in ("duration_s", "p99_ttft_s", "p50_tpot_s"):
            assert summary[key] == golden[key]
        for key in ("kv_budget_tokens", "peak_reserved_tokens",
                    "num_epochs", "num_decode_steps", "pcie_bytes"):
            assert trace.metadata[key] == golden[key]
        # Sharding metadata degenerates to one shard covering the node.
        assert trace.metadata["parallelism"]["label"] == "none"
        shards = trace.metadata["shards"]
        assert len(shards) == 1
        assert shards[0]["budget_tokens"] == golden["kv_budget_tokens"]
        assert shards[0]["peak_reserved_tokens"] == golden["peak_reserved_tokens"]


class TestScheduleCacheShardNamespacing:
    def test_contexts_differ_per_shard_shape(self):
        # Same node name, same model, same kv dtype — only the shard shape
        # differs, which must be enough to keep cache entries apart.
        node = replace(V100_16GB_NODE, gpu_count=2, interconnect=NVLINK)
        tp = AlisaSystem(MODEL, node, kv_sparsity=0.8,
                         parallelism=ParallelismSpec("tp", 2))
        pp = AlisaSystem(MODEL, node, kv_sparsity=0.8,
                         parallelism=ParallelismSpec("pp", 2))
        assert tp._schedule_context != pp._schedule_context

    def test_contexts_differ_per_link_speeds(self):
        # replace()/with_pcie_bandwidth keep the node *name*, but the link
        # numbers price the schedules — they must namespace the cache too.
        nvlink_node = replace(V100_16GB_NODE, gpu_count=2, interconnect=NVLINK)
        p2p_node = replace(V100_16GB_NODE, gpu_count=2, interconnect=PCIE_P2P)
        spec = ParallelismSpec("tp", 2)
        fast = AlisaSystem(MODEL, nvlink_node, kv_sparsity=0.8,
                           parallelism=spec)
        slow = AlisaSystem(MODEL, p2p_node, kv_sparsity=0.8, parallelism=spec)
        assert fast._schedule_context != slow._schedule_context

        narrow = AlisaSystem(MODEL, V100_16GB_NODE.with_pcie_bandwidth(5e9),
                             kv_sparsity=0.8)
        wide = AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8)
        assert narrow._schedule_context != wide._schedule_context

    def test_shared_cache_never_crosses_shard_shapes(self):
        requests = generate_requests(8, rate=16.0, input_len=256,
                                     output_len=128, seed=5)
        node = replace(V100_16GB_NODE, gpu_count=2, interconnect=NVLINK)

        def serve_pp(cache):
            before = (cache.stats.full_solves + cache.stats.warm_solves)
            ContinuousBatchingEngine(AlisaSystem(
                MODEL, node, kv_sparsity=0.8,
                parallelism=ParallelismSpec("pp", 2),
                schedule_cache=cache)).serve(requests)
            return (cache.stats.full_solves + cache.stats.warm_solves) - before

        # Control: how many searches a PP serve needs on a fresh cache.
        fresh_solves = serve_pp(ScheduleCache())
        assert fresh_solves > 0

        # A cache pre-warmed by a differently sharded (TP) system on the
        # *same* node must give the PP serve zero reuse: it performs exactly
        # as many searches as on a fresh cache.
        warmed = ScheduleCache()
        ContinuousBatchingEngine(AlisaSystem(
            MODEL, node, kv_sparsity=0.8,
            parallelism=ParallelismSpec("tp", 2),
            schedule_cache=warmed)).serve(requests)
        assert serve_pp(warmed) == fresh_solves

    def test_same_shard_shape_still_reuses(self):
        requests = generate_requests(8, rate=16.0, input_len=256,
                                     output_len=128, seed=5)
        cache = ScheduleCache()
        node = multi_gpu(V100_16GB_NODE, 2)

        def tp_engine():
            return ContinuousBatchingEngine(AlisaSystem(
                MODEL, node, kv_sparsity=0.8,
                parallelism=ParallelismSpec("tp", 2), schedule_cache=cache))

        tp_engine().serve(requests)
        solves_first = cache.stats.full_solves + cache.stats.warm_solves
        tp_engine().serve(requests)
        assert cache.stats.full_solves + cache.stats.warm_solves == solves_first


class TestParallelServingSweep:
    @pytest.fixture(scope="class")
    def result(self):
        # 28 x (256 + 256) = 14336 reserved KV tokens versus ALISA's ~10k
        # single-GPU budget: at 32 req/s the 1-GPU node must queue, while
        # the 4-GPU nodes (4x the per-GPU memory in aggregate, sharded KV)
        # admit everything.
        return run_experiment(
            "serving_rate_sweep", rates=(2.0, 32.0), num_requests=28,
            input_len=256, output_len=256,
            parallelism=("none", "tp-2", "tp-4", "pp-2", "pp-4"))

    def test_one_invocation_covers_1_2_4_gpus_tp_and_pp(self, result):
        combos = {(row["parallelism"], row["gpu_count"])
                  for row in result.rows}
        assert combos == {("none", 1), ("tp-2", 2), ("tp-4", 4),
                          ("pp-2", 2), ("pp-4", 4)}
        assert len(result.rows) == 2 * 5 * 3  # rates x parallelism x systems
        assert result.notes["parallelism"] == ("none", "tp-2", "tp-4",
                                               "pp-2", "pp-4")

    def test_four_gpus_sustain_strictly_higher_rate(self, result):
        single = max_sustained_rate(result, system="alisa",
                                    parallelism="none",
                                    max_queueing_delay_s=0.25)
        for sharded in ("tp-4", "pp-4"):
            quad = max_sustained_rate(result, system="alisa",
                                      parallelism=sharded,
                                      max_queueing_delay_s=0.25)
            assert quad > single

    def test_sharded_budget_exceeds_single_gpu(self, result):
        rows = {row["parallelism"]: row
                for row in result.filter(system="alisa", rate_req_per_s=2.0)}
        assert rows["tp-2"]["kv_budget_tokens"] > rows["none"]["kv_budget_tokens"]
        assert rows["tp-4"]["kv_budget_tokens"] > rows["tp-2"]["kv_budget_tokens"]

    def test_comm_share_only_on_multi_gpu(self, result):
        for row in result.filter(system="alisa"):
            if row["parallelism"] == "none":
                assert row["comm_time_share"] == 0.0
            elif row["parallelism"].startswith("tp"):
                # per-layer ring all-reduces: a visible share of the clock
                assert row["comm_time_share"] > 0.0
            else:
                # pp: stage-boundary transfers are tiny but never zero
                assert row["parallelism"].startswith("pp")
                assert row["comm_time_share"] > 0.0

    def test_default_sweep_is_single_gpu(self):
        result = run_experiment("serving_rate_sweep", rates=(4.0,),
                                num_requests=4, input_len=64, output_len=32)
        for row in result.rows:
            assert row["parallelism"] == "none"
            assert row["gpu_count"] == 1
