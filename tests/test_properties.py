"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import round_half_up, softmax
from repro.core.compression import QuantizationSpec, dequantize, quantize
from repro.core.scheduler import DynamicScheduler, SchedulerConfig
from repro.core.swa import SWAConfig, select_sparse_tokens
from repro.kvcache.cache import LayerKVCache
from repro.systems.memory import MemoryDevice, PCIeLink


@st.composite
def swa_cases(draw):
    seq_len = draw(st.integers(min_value=1, max_value=300))
    ratio = draw(st.floats(min_value=0.05, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=1000))
    sums = np.random.default_rng(seed).random(seq_len)
    return seq_len, ratio, sums


class TestSWAProperties:
    @given(swa_cases())
    @settings(max_examples=80, deadline=None)
    def test_selection_invariants(self, case):
        seq_len, ratio, sums = case
        config = SWAConfig(caching_ratio=ratio)
        selection = select_sparse_tokens(sums, seq_len, config)
        indices = selection.indices
        # Indices are unique, sorted, in range, and the newest token is kept.
        assert len(set(indices.tolist())) == len(indices)
        assert np.all(np.diff(indices) > 0)
        assert indices.min() >= 0 and indices.max() < seq_len
        assert seq_len - 1 in indices
        # The kept count never exceeds the sequence length and tracks r.
        assert selection.num_kept <= seq_len
        assert selection.num_kept >= min(seq_len, 2)

    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_split_budget_partition(self, seq_len, ratio, local_fraction):
        config = SWAConfig(caching_ratio=ratio, local_fraction=local_fraction)
        local, global_ = config.split_budget(seq_len)
        assert 1 <= local <= seq_len
        assert 0 <= global_ <= seq_len - local


class TestQuantizationProperties:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=32),
           st.sampled_from([4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_step(self, seed, rows, channels, bits):
        x = np.random.default_rng(seed).normal(0, 3, size=(rows, channels))
        spec = QuantizationSpec(num_bits=bits)
        restored = dequantize(quantize(x, spec))
        span = x.max(axis=0) - x.min(axis=0)
        step = np.where(span > 0, span, 1.0) / (2**bits - 1)
        # Error never exceeds one quantization step per element.
        assert np.all(np.abs(restored - x) <= step + 1e-9)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_quantization_idempotent(self, seed):
        x = np.random.default_rng(seed).normal(size=(8, 4))
        once = dequantize(quantize(x))
        twice = dequantize(quantize(once))
        assert np.allclose(once, twice, atol=1e-9)


class TestSchedulerProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=120),
           st.integers(min_value=20, max_value=400),
           st.integers(min_value=16, max_value=256))
    @settings(max_examples=60, deadline=None)
    def test_placement_conserves_tokens(self, alpha, beta, p1, extra, budget,
                                        prompt):
        config = SchedulerConfig(offload_ratio=alpha, recompute_ratio=beta,
                                 phase2_step=p1, phase3_step=p1 + extra)
        scheduler = DynamicScheduler(config, SWAConfig.from_sparsity(0.8),
                                     gpu_budget_tokens=budget, prompt_len=prompt)
        scheduler.plan_prefill()
        for j in range(80):
            plan = scheduler.plan_step(j)
            assert plan.tokens_gpu >= 0
            assert plan.tokens_cpu >= 0
            assert plan.tokens_deleted >= 0
            assert (plan.tokens_gpu + plan.tokens_cpu + plan.tokens_deleted
                    == prompt + j + 1)
            assert plan.load_tokens >= 0
            assert plan.recompute_tokens >= 0


class TestMemoryProperties:
    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.floats(min_value=0, max_value=50)),
                    min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_ledger_never_negative_and_bounded(self, operations):
        device = MemoryDevice("gpu", 1000.0)
        for label, size in operations:
            device.resize(label, size)
            assert 0 <= device.used_bytes <= 1000.0
            assert device.peak_bytes >= device.used_bytes

    @given(st.floats(min_value=1.0, max_value=1e12),
           st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_monotone(self, bandwidth, num_bytes):
        link = PCIeLink(bandwidth)
        assert link.transfer_time(num_bytes) <= link.transfer_time(num_bytes + 1.0)


class TestKVCacheProperties:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_append_then_gather_roundtrip(self, batch, appends, seed):
        generator = np.random.default_rng(seed)
        cache = LayerKVCache(batch_size=batch, num_heads=2, head_dim=4)
        expected_len = 0
        for _ in range(appends):
            new = generator.integers(1, 3)
            keys = generator.normal(size=(batch, new, 2, 4))
            values = generator.normal(size=(batch, new, 2, 4))
            cache.append(keys, values)
            expected_len += new
        assert cache.seq_len == expected_len
        idx = generator.integers(0, expected_len, size=min(3, expected_len))
        gathered_k, gathered_v = cache.gather(idx)
        assert gathered_k.shape == (batch, idx.size, 2, 4)
        assert np.allclose(gathered_k, cache.keys[:, idx])


class TestNumericsProperties:
    @given(st.integers(min_value=0, max_value=300),
           st.integers(min_value=2, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, seed, size):
        x = np.random.default_rng(seed).normal(0, 10, size=size)
        out = softmax(x)
        assert np.all(out >= 0)
        assert np.isclose(out.sum(), 1.0)

    @given(st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=60, deadline=None)
    def test_round_half_up_close_to_value(self, value):
        assert abs(round_half_up(value) - value) <= 0.5
