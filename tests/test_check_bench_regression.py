"""Tests for tools/check_bench_regression.py (the CI perf gate)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / \
    "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL)
gate = importlib.util.module_from_spec(spec)
sys.modules["check_bench_regression"] = gate
spec.loader.exec_module(gate)


def bench_json(tmp_path, name, means):
    """Write a minimal pytest-benchmark JSON and return its path."""
    payload = {"benchmarks": [{"name": bench, "stats": {"mean": mean}}
                              for bench, mean in means.items()]}
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(payload))
    return str(path)


def run_gate(current, baseline, *extra):
    return gate.main(["--current", current, "--baseline", baseline, *extra])


class TestGate:
    def test_passes_within_allowed_regression(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.0, "test_b": 2.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.1, "test_b": 2.0})
        assert run_gate(current, baseline, "--max-regression", "0.20") == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_beyond_allowed_regression(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.5})
        assert run_gate(current, baseline, "--max-regression", "0.20") == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_benchmark_fails(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.0, "test_b": 1.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0})
        assert run_gate(current, baseline) == 1
        assert "missing from current run" in capsys.readouterr().err

    def test_new_benchmarks_are_not_gated(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0, "test_new": 9.0})
        assert run_gate(current, baseline) == 0
        assert "not gated" in capsys.readouterr().out


class TestCalibration:
    def test_calibration_normalizes_machine_speed(self, tmp_path):
        # Current machine runs everything 2x slower — including the
        # calibration probe — so normalized times are unchanged and the
        # gate passes despite the raw 2x "regression".
        baseline = bench_json(tmp_path, "base",
                              {"test_a": 1.0, "test_calibration_probe": 0.5})
        current = bench_json(tmp_path, "cur",
                             {"test_a": 2.0, "test_calibration_probe": 1.0})
        assert run_gate(current, baseline, "--calibrate", "calibration") == 0

    def test_real_regression_survives_calibration(self, tmp_path):
        # Machine is 2x slower but test_a is 4x slower: 2x normalized.
        baseline = bench_json(tmp_path, "base",
                              {"test_a": 1.0, "test_calibration_probe": 0.5})
        current = bench_json(tmp_path, "cur",
                             {"test_a": 4.0, "test_calibration_probe": 1.0})
        assert run_gate(current, baseline, "--calibrate", "calibration") == 1

    def test_calibration_benchmark_itself_is_not_gated(self, tmp_path):
        # The probe moved 4x (machine speed), every real benchmark moved
        # with it; the probe's own ratio must not fail the gate.
        baseline = bench_json(tmp_path, "base",
                              {"test_a": 1.0, "test_calibration_probe": 0.25})
        current = bench_json(tmp_path, "cur",
                             {"test_a": 4.0, "test_calibration_probe": 1.0})
        assert run_gate(current, baseline, "--calibrate", "calibration") == 0

    def test_missing_calibration_benchmark_aborts(self, tmp_path):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0})
        with pytest.raises(SystemExit, match="no calibration benchmark"):
            run_gate(current, baseline, "--calibrate", "calibration")


class TestStaleBaselines:
    def test_improvement_flags_but_passes_by_default(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 2.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0})
        assert run_gate(current, baseline) == 0
        out = capsys.readouterr().out
        assert "stale baselines detected" in out
        assert "IMPROVEMENT" in out

    def test_fail_on_improvement(self, tmp_path, capsys):
        baseline = bench_json(tmp_path, "base", {"test_a": 2.0})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0})
        assert run_gate(current, baseline, "--fail-on-improvement") == 1
        assert "stale baselines" in capsys.readouterr().err

    def test_improvement_threshold_overrides_max_regression(self, tmp_path):
        baseline = bench_json(tmp_path, "base", {"test_a": 1.3})
        current = bench_json(tmp_path, "cur", {"test_a": 1.0})
        # ~23% faster: stale under the default (20%) threshold...
        assert run_gate(current, baseline, "--fail-on-improvement") == 1
        # ...but fresh enough under a 40% threshold.
        assert run_gate(current, baseline, "--fail-on-improvement",
                        "--improvement-threshold", "0.40") == 0
