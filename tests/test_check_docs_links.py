"""Tests for tools/check_docs_links.py (the CI dangling-link gate)."""

import importlib.util
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / \
    "check_docs_links.py"
spec = importlib.util.spec_from_file_location("check_docs_links", TOOL)
checker = importlib.util.module_from_spec(spec)
sys.modules["check_docs_links"] = checker
spec.loader.exec_module(checker)

REPO_ROOT = TOOL.parent.parent


def write(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestAnchors:
    @pytest.mark.parametrize("heading,anchor", [
        ("Plain Words", "plain-words"),
        ("The `serving_rate_sweep` experiment",
         "the-serving_rate_sweep-experiment"),
        ("SLO classes & preemption", "slo-classes--preemption"),
        ("Epoch pricing (fast path)", "epoch-pricing-fast-path"),
    ])
    def test_github_anchor(self, heading, anchor):
        assert checker.github_anchor(heading) == anchor

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        page = write(tmp_path, "page.md",
                     "# Setup\n\n## Setup\n\ntext\n\n## Setup\n")
        assert checker.heading_anchors(page) == \
            {"setup", "setup-1", "setup-2"}

    def test_headings_inside_fences_ignored(self, tmp_path):
        page = write(tmp_path, "page.md",
                     "# Real\n\n```text\n# Not A Heading\n```\n")
        assert checker.heading_anchors(page) == {"real"}


class TestChecker:
    def test_clean_tree_passes(self, tmp_path, capsys):
        write(tmp_path, "docs/a.md",
              "# A\n\n## Section One\n\n[b](b.md)\n"
              "[deep](b.md#details)\n[self](#section-one)\n"
              "[up](../top.md)\n[ext](https://example.com/gone.md)\n")
        write(tmp_path, "docs/b.md", "# B\n\n## Details\n")
        write(tmp_path, "top.md", "# Top\n")
        assert checker.main([str(tmp_path / "docs"),
                             str(tmp_path / "top.md")]) == 0
        assert "resolve" in capsys.readouterr().out

    def test_broken_path_fails(self, tmp_path, capsys):
        write(tmp_path, "docs/a.md", "# A\n\n[gone](missing.md)\n")
        assert checker.main([str(tmp_path / "docs")]) == 1
        assert "missing.md" in capsys.readouterr().err

    def test_dangling_anchor_fails(self, tmp_path, capsys):
        write(tmp_path, "docs/a.md", "# A\n\n[bad](b.md#no-such-section)\n")
        write(tmp_path, "docs/b.md", "# B\n\n## Real Section\n")
        assert checker.main([str(tmp_path / "docs")]) == 1
        assert "no-such-section" in capsys.readouterr().err

    def test_dangling_in_page_anchor_fails(self, tmp_path):
        write(tmp_path, "docs/a.md", "# A\n\n[bad](#nowhere)\n")
        assert checker.main([str(tmp_path / "docs")]) == 1

    def test_links_inside_fences_ignored(self, tmp_path):
        write(tmp_path, "docs/a.md",
              "# A\n\n```python\nx = '[link](missing.md)'\n```\n")
        assert checker.main([str(tmp_path / "docs")]) == 0

    def test_non_markdown_target_checks_path_only(self, tmp_path):
        write(tmp_path, "docs/a.md", "# A\n\n[src](pkg/mod.py#L10)\n")
        write(tmp_path, "docs/pkg/mod.py", "x = 1\n")
        assert checker.main([str(tmp_path / "docs")]) == 0

    def test_repo_docs_have_no_dangling_links(self):
        # The gate CI actually runs, against the real documentation tree.
        assert checker.main([str(REPO_ROOT / "docs"),
                             str(REPO_ROOT / "README.md")]) == 0
