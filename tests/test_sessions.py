"""Tests for multi-turn sessions, prefix reuse, and SLO-class preemption.

Pins the PR's tentpole contracts: session traces lower to the exact
single-shot stream when reuse is off (hypothesis invariant), prefix-reuse
admission charges only the suffix and reports hit/miss/evicted ledgers,
priority preemption lifts interactive-tier goodput over FIFO at equal GPU
count, and — the regression that matters most — preemption-free serves
stay bit-identical to the event core's frozen golden pin.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.cluster import ReplicaGroup, Router
from repro.core.engine import AlisaSystem
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import PREEMPTION_MODES, ContinuousBatchingEngine
from repro.workloads.arrivals import SLO_CLASSES, generate_requests
from repro.workloads.sessions import (
    SessionRequest,
    SessionTrace,
    replay_requests,
    sessions,
)

MODEL = "opt-6.7b"


def engine(system=FlexGenSystem, *, max_batch_size=None, preemption=None,
           prefix_reuse=True, prefill_chunk_tokens=None,
           **kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(
        system(MODEL, V100_16GB_NODE, **kwargs),
        max_batch_size=max_batch_size, preemption=preemption,
        prefix_reuse=prefix_reuse, prefill_chunk_tokens=prefill_chunk_tokens)


def chat(num_sessions=12, rate=2.0, seed=3, **kwargs) -> SessionTrace:
    kwargs.setdefault("interactive_fraction", 0.5)
    kwargs.setdefault("mean_turns", 3.0)
    kwargs.setdefault("max_context", 1024)
    kwargs.setdefault("mean_new_input", 48)
    kwargs.setdefault("mean_output", 64)
    return sessions(num_sessions, rate, seed=seed, **kwargs)


# --------------------------------------------------------------------- #
# Lowering contract
# --------------------------------------------------------------------- #
class TestSessionLowering:
    def test_turns_sorted_with_positional_ids(self):
        turns = chat().requests()
        assert [t.request_id for t in turns] == list(range(len(turns)))
        arrivals = [t.arrival_time for t in turns]
        assert arrivals == sorted(arrivals)

    def test_prefix_is_previous_context(self):
        by_session: dict[int, list[SessionRequest]] = {}
        for turn in chat().requests():
            by_session.setdefault(turn.session_id, []).append(turn)
        for turns in by_session.values():
            turns.sort(key=lambda t: t.turn_index)
            assert turns[0].prefix_len == 0
            assert turns[-1].final_turn
            for prev, cur in zip(turns, turns[1:]):
                assert not prev.final_turn
                assert cur.prefix_len == prev.input_len + prev.output_len
                assert cur.suffix_len >= 1

    def test_context_cap_respected(self):
        trace = chat(max_context=512)
        assert all(t.max_seq_len <= 512 for t in trace.requests())

    def test_slo_class_constant_per_session(self):
        classes: dict[int, set] = {}
        for turn in chat().requests():
            classes.setdefault(turn.session_id, set()).add(turn.slo_class)
        assert all(len(seen) == 1 for seen in classes.values())
        assert set().union(*classes.values()) <= set(SLO_CLASSES)

    def test_rateless_spec_needs_with_rate(self):
        spec = sessions(8)
        with pytest.raises(ConfigurationError, match="no arrival rate"):
            spec.requests()
        assert spec.with_rate(2.0).num_turns > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sessions(8, 2.0, interactive_fraction=1.5)
        with pytest.raises(ConfigurationError):
            sessions(8, 2.0, mean_turns=0.5)
        with pytest.raises(ConfigurationError):
            SessionRequest(request_id=0, arrival_time=0.0, input_len=4,
                           output_len=4, prefix_len=4)

    @given(num_sessions=st.integers(1, 16),
           seed=st.integers(0, 2**16),
           mean_turns=st.floats(1.0, 6.0),
           interactive_fraction=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_reuse_off_equals_single_shot(self, num_sessions, seed,
                                          mean_turns, interactive_fraction):
        # The ISSUE invariant: disabling prefix reuse in the lowering gives
        # a trace request-for-request identical to the single-shot view on
        # every Request field — a session-blind stack sees no difference.
        trace = sessions(num_sessions, 2.0, seed=seed, mean_turns=mean_turns,
                         interactive_fraction=interactive_fraction)
        lowered = trace.requests(prefix_reuse=False)
        flat = trace.single_shot()
        assert len(lowered) == len(flat)
        for turn, single in zip(lowered, flat):
            assert turn.prefix_len == 0 and turn.final_turn
            assert dataclasses.astuple(single) == (
                turn.request_id, turn.arrival_time, turn.input_len,
                turn.output_len, turn.slo_class)

    def test_replay_requests_round_trip(self):
        trace = engine().serve(chat().requests())
        replayed = replay_requests(trace.records)
        assert [r.request_id for r in replayed] == \
            sorted(r.request_id for r in replayed)
        by_id = {r.request_id: r for r in trace.records}
        for request in replayed:
            record = by_id[request.request_id]
            assert request.arrival_time == record.arrival_time
            assert request.input_len == record.input_len
            assert request.output_len == record.output_len
            assert request.slo_class == record.slo_class


# --------------------------------------------------------------------- #
# Prefix-reuse admission
# --------------------------------------------------------------------- #
class TestPrefixReuse:
    def test_hit_ledger_and_metadata(self):
        trace = engine().serve(chat().requests())
        stats = trace.metadata["prefix_cache"]
        assert stats["hits"] + stats["misses"] > 0
        assert stats["hit_rate"] == pytest.approx(
            stats["hits"] / (stats["hits"] + stats["misses"]))
        assert stats["reused_tokens"] > 0
        assert trace.prefix_hit_rate == pytest.approx(stats["hit_rate"])
        hits = [r for r in trace.records if r.prefix_hit]
        assert len(hits) == stats["hits"]
        assert all(r.prefix_len > 0 for r in hits)

    def test_reuse_improves_on_single_shot_serve(self):
        # Charging only the suffix KV + prefill must not be slower than
        # serving the equivalent single-shot trace from scratch.
        workload = chat()
        reused = engine().serve(workload.requests())
        cold = engine().serve(workload.single_shot())
        assert reused.metadata["prefix_cache"]["hits"] > 0
        assert reused.duration <= cold.duration
        assert "prefix_cache" not in cold.metadata

    def test_reuse_disabled_engine_matches_single_shot(self):
        workload = chat()
        blind = engine(prefix_reuse=False).serve(workload.requests())
        cold = engine().serve(workload.single_shot())
        assert blind.summary() == cold.summary()
        # Declared prefixes are still judged — they just never hit, because
        # a reuse-disabled engine retains nothing.
        stats = blind.metadata["prefix_cache"]
        assert stats["hits"] == 0 and stats["misses"] > 0

    def test_event_and_clock_paths_agree_on_sessions(self):
        workload = chat()
        trace_event = engine().serve(workload.requests())
        trace_clock = engine(exact_stepping=True).serve(workload.requests())
        assert trace_event.records == trace_clock.records
        assert trace_event.metadata["prefix_cache"] == \
            trace_clock.metadata["prefix_cache"]

    def test_alisa_sessions_event_clock_parity(self):
        def build(model, node, **kwargs):
            return AlisaSystem(model, node, kv_sparsity=0.8, **kwargs)
        workload = chat(num_sessions=8)
        trace_event = engine(build).serve(workload.requests())
        trace_clock = engine(build, exact_stepping=True).serve(
            workload.requests())
        assert trace_event.records == trace_clock.records


# --------------------------------------------------------------------- #
# Priority classes and preemption
# --------------------------------------------------------------------- #
class TestPreemption:
    CONTENDED = dict(num_sessions=24, rate=8.0, seed=5,
                     interactive_fraction=0.4, mean_turns=3.0,
                     max_context=1024, mean_new_input=64, mean_output=96)

    def test_unknown_mode_and_clock_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="preemption"):
            engine(preemption="swap")
        with pytest.raises(ConfigurationError, match="exact_stepping"):
            engine(preemption="retain", exact_stepping=True)
        assert set(PREEMPTION_MODES) == {None, "retain", "recompute"}

    @pytest.mark.parametrize("mode", ["retain", "recompute"])
    def test_interactive_goodput_improves_over_fifo(self, mode):
        # The ISSUE acceptance bar: at equal GPU count, letting interactive
        # turns preempt batch work at epoch boundaries must lift the
        # interactive tier's goodput over FIFO admission.
        slos = {"interactive": (2.0, 0.1), "batch": (20.0, 1.0)}
        requests = chat(**self.CONTENDED).requests()
        fifo = engine(max_batch_size=4).serve(requests, class_slos=slos)
        preempting = engine(max_batch_size=4, preemption=mode).serve(
            requests, class_slos=slos)
        assert preempting.num_preemptions > 0
        assert fifo.num_preemptions == 0
        fifo_classes = fifo.per_class_summary(slos)
        preempt_classes = preempting.per_class_summary(slos)
        assert preempt_classes["interactive"]["goodput_tokens_per_s"] > \
            fifo_classes["interactive"]["goodput_tokens_per_s"]
        assert preempt_classes["interactive"]["mean_ttft_s"] < \
            fifo_classes["interactive"]["mean_ttft_s"]
        meta = preempting.metadata["preemption"]
        assert meta["mode"] == mode
        assert meta["count"] == preempting.num_preemptions
        if mode == "retain":
            assert meta["swap_bytes"] > 0
        else:
            assert meta["recompute_tokens"] > 0

    def test_preempted_work_still_completes(self):
        requests = chat(**self.CONTENDED).requests()
        trace = engine(max_batch_size=4, preemption="recompute").serve(
            requests)
        assert trace.num_requests == len(requests)
        assert sum(r.preemptions for r in trace.records) == \
            trace.num_preemptions

    def test_uncontended_preemption_engine_is_bit_identical(self):
        # With no contention, a preemption-enabled engine must never fire
        # and its trace must equal the FIFO engine's bit-for-bit.
        workload = chat(num_sessions=6, rate=0.2)
        fifo = engine().serve(workload.requests())
        armed = engine(preemption="retain").serve(workload.requests())
        assert armed.num_preemptions == 0
        assert armed.records == fifo.records
        assert "preemption" in armed.metadata  # mode recorded even if idle


# --------------------------------------------------------------------- #
# PR-6 golden pin: the single-shot path is untouched
# --------------------------------------------------------------------- #
class TestGoldenPin:
    def test_preemption_free_serve_matches_pr6_pin(self):
        # Frozen observables from the event-core PR: the sessions/priority
        # machinery must degrade to `+0` arithmetic on plain traces.
        requests = generate_requests(16, 4.0, pattern="bursty", seed=3,
                                     max_len=512)
        trace = engine().serve(requests)
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.metadata["kv_budget_tokens"] == 4946
        assert trace.metadata["peak_reserved_tokens"] == 4896
        assert trace.metadata["num_epochs"] == 24
        assert trace.metadata["num_decode_steps"] == 605
        assert trace.prefix_hit_rate == 0.0
        assert trace.num_preemptions == 0
        assert "prefix_cache" not in trace.metadata
        assert all(r.slo_class == SLO_CLASSES[0] and r.prefix_len == 0
                   and not r.prefix_hit and r.preemptions == 0
                   for r in trace.records)


# --------------------------------------------------------------------- #
# Per-class accounting and cluster routing
# --------------------------------------------------------------------- #
class TestClassesAndCluster:
    #: Aggregates every record mode computes with the same float op order —
    #: exact equality required (quantile columns are P² estimates instead).
    PARITY_KEYS = ("num_requests", "generated_tokens", "duration_s",
                   "throughput_tokens_per_s", "mean_queueing_delay_s",
                   "prefix_hit_rate", "num_preemptions",
                   "prefill_chunks_per_request")

    def test_streaming_per_class_matches_full(self):
        slos = {"interactive": (2.0, 0.1), "batch": (10.0, 0.5)}
        requests = chat().requests()
        full = engine().serve(requests, class_slos=slos)
        streaming = engine().serve(requests, record_mode="streaming",
                                   class_slos=slos)
        # Quantiles are P-squared estimates in streaming mode; every exact
        # aggregate — including the new session columns — must agree.
        full_summary, stream_summary = full.summary(), streaming.summary()
        for key in self.PARITY_KEYS:
            assert stream_summary[key] == full_summary[key], key
        # Nothing preempted: the latency column is exactly zero both ways.
        assert full_summary["p99_preemption_latency_s"] == 0.0
        assert stream_summary["p99_preemption_latency_s"] == 0.0
        assert streaming.per_class_summary(slos) == \
            full.per_class_summary(slos)

    @staticmethod
    def _assert_mode_parity(full, streaming, slos):
        full_summary, stream_summary = full.summary(), streaming.summary()
        for key in TestClassesAndCluster.PARITY_KEYS:
            assert stream_summary[key] == full_summary[key], key
        # The preemption-latency column is a P² estimate in streaming mode:
        # exact below five observations, interpolated (within the observed
        # range) beyond.
        waits = full.preemption_waits
        if len(waits) < 5:
            assert stream_summary["p99_preemption_latency_s"] == \
                full_summary["p99_preemption_latency_s"]
        else:
            assert min(waits) <= stream_summary["p99_preemption_latency_s"] \
                <= max(waits)
            assert stream_summary["p99_preemption_latency_s"] == \
                pytest.approx(full_summary["p99_preemption_latency_s"],
                              rel=0.5)
        assert streaming.per_class_summary(slos) == \
            full.per_class_summary(slos)

    def test_cross_mode_parity_matrix_engine(self):
        # The full-mode assertions of this file, replayed in streaming mode
        # under the PR 8 machinery (chunked prefill + preemption): every
        # exact column agrees, sketch columns agree within tolerance.
        slos = {"interactive": (2.0, 0.1), "batch": (20.0, 1.0)}
        requests = chat(**TestPreemption.CONTENDED).requests()

        def serve(record_mode):
            return engine(max_batch_size=4, preemption="recompute",
                          prefill_chunk_tokens=128).serve(
                requests, record_mode=record_mode, class_slos=slos)

        full = serve("full")
        assert full.num_preemptions > 0
        assert full.prefill_chunks_per_request > 0.0
        self._assert_mode_parity(full, serve("streaming"), slos)

    def test_cross_mode_parity_matrix_cluster(self):
        slos = {"interactive": (2.0, 0.1), "batch": (20.0, 1.0)}
        workload = chat(**TestPreemption.CONTENDED)

        def factory(node, parallelism):
            return FlexGenSystem(MODEL, node, parallelism=parallelism)

        def serve(record_mode):
            group = ReplicaGroup.from_layout(
                factory, "2x(none)", V100_16GB_NODE,
                policy="session-affinity", max_batch_size=2,
                preemption="recompute", prefill_chunk_tokens=128)
            return group.serve(workload.requests(),
                               record_mode=record_mode, class_slos=slos)

        full = serve("full")
        assert full.num_preemptions > 0
        assert full.prefill_chunks_per_request > 0.0
        assert full.prefix_hit_rate > 0.0
        self._assert_mode_parity(full, serve("streaming"), slos)

    def test_session_affinity_keeps_hit_rate(self):
        workload = chat(num_sessions=16)

        def factory(node, parallelism):
            return FlexGenSystem(MODEL, node, parallelism=parallelism)

        def serve(policy):
            group = ReplicaGroup.from_layout(factory, "2x(none)",
                                             V100_16GB_NODE)
            return group.serve(workload.requests(), policy=policy)

        sticky = serve("session-affinity")
        scattered = serve("jsq")
        assert sticky.prefix_hit_rate == 1.0
        assert scattered.prefix_hit_rate < sticky.prefix_hit_rate

    def test_affinity_pin_dropped_on_final_turn(self):
        router = Router(2, policy="session-affinity")
        turns = chat(num_sessions=4).requests()
        for turn in turns:
            router.assign(turn, [0.1, 0.1])
        assert router._sessions == {}  # every session ended

    def test_affinity_routes_plain_requests_by_jsq(self):
        plain = generate_requests(12, 4.0, seed=0, max_len=256)
        sticky = Router(2, policy="session-affinity", seed=0)
        jsq = Router(2, policy="jsq", seed=0)
        picks = [(sticky.assign(r, [0.1, 0.1]), jsq.assign(r, [0.1, 0.1]))
                 for r in plain]
        assert all(a == b for a, b in picks)


# --------------------------------------------------------------------- #
# Prefix-cache ledger conservation (regression: superseded retentions)
# --------------------------------------------------------------------- #
class TestPrefixCacheLedger:
    @staticmethod
    def _assert_ledger_balances(trace):
        stats = trace.metadata["prefix_cache"]
        # Every retained entry is eventually consumed by a follow-up,
        # evicted (superseded or pushed out for KV room), or still
        # resident when the serve drains — no entry is lost or counted
        # twice.  Before the fix, a same-session retain over an unconsumed
        # entry leaked the old entry's tokens from the ledger.
        assert stats["retained"] == \
            stats["consumed"] + stats["evicted"] + stats["resident"]
        bearing = sum(1 for r in trace.records if r.prefix_len > 0)
        assert stats["hits"] + stats["misses"] == bearing
        assert len([r for r in trace.records if r.prefix_hit]) == \
            stats["hits"]

    def test_overlapping_turns_supersede_retained_entries(self):
        # Near-zero think times make turn t+1 arrive while turn t is still
        # decoding: the follow-up misses, and turn t's later retention is
        # itself superseded by turn t+1's — the exact leak the ledger fix
        # closes.  The superseded entry must be counted as evicted.
        trace = engine().serve(
            chat(num_sessions=12, rate=4.0, mean_think_s=0.01,
                 service_tokens_per_s=10_000.0).requests())
        stats = trace.metadata["prefix_cache"]
        assert stats["misses"] > 0
        assert stats["evicted"] > 0
        self._assert_ledger_balances(trace)

    @given(seed=st.integers(0, 2**16),
           num_sessions=st.integers(1, 12),
           mean_think_s=st.sampled_from([0.01, 0.5, 2.0]),
           rate=st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=25, deadline=None)
    def test_property_ledger_conserves_lookups(self, seed, num_sessions,
                                               mean_think_s, rate):
        trace = engine().serve(
            chat(num_sessions=num_sessions, rate=rate, seed=seed,
                 mean_think_s=mean_think_s).requests())
        if "prefix_cache" not in trace.metadata:
            return  # single-turn draw: no prefixes were ever judged
        self._assert_ledger_balances(trace)

    def test_ledger_balances_under_preemption_and_chunking(self):
        trace = engine(max_batch_size=4, preemption="recompute",
                       prefill_chunk_tokens=128).serve(
            chat(**TestPreemption.CONTENDED).requests())
        assert trace.num_preemptions > 0
        self._assert_ledger_balances(trace)
