"""Tests for fault injection and failure recovery (repro.faults).

Pins the tentpole contracts: fault-free serves stay bit-identical to the
golden journal pins, a mid-trace crash on a 2-replica cluster completes
every retryable request through health-aware re-routing plus retry,
drain-mode outages migrate resident work with priced KV transfers,
retry exhaustion terminates requests as ``failed`` records, degraded-mode
shedding protects interactive goodput, and — property-tested — every
arrival terminates as exactly one of ``completed``/``failed``/``shed``
under arbitrary fault schedules, deterministically per seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.cluster import ReplicaGroup
from repro.cluster.router import Router
from repro.faults import (
    FAULT_MODES,
    FaultEvent,
    FaultSchedule,
    LoadShedder,
    RetryPolicy,
)
from repro.hardware.presets import V100_16GB_NODE
from repro.obs import Observer, SpanTracer
from repro.obs.report import render
from repro.serving import (
    REPLICA_FAIL,
    REPLICA_RECOVER,
    ContinuousBatchingEngine,
)
from repro.serving.trace import REQUEST_STATUSES
from repro.workloads.arrivals import Request, generate_requests

MODEL = "opt-6.7b"
CLASS_SLOS = {"interactive": (2.0, 0.2), "batch": (30.0, 2.0)}


def engine(**kwargs) -> ContinuousBatchingEngine:
    system_kwargs = {key: kwargs.pop(key) for key in ("exact_stepping",)
                     if key in kwargs}
    return ContinuousBatchingEngine(
        FlexGenSystem(MODEL, V100_16GB_NODE, **system_kwargs), **kwargs)


def requests(n=16, rate=4.0, seed=3, **kwargs):
    return generate_requests(n, rate, pattern="bursty", seed=seed,
                             max_len=512, **kwargs)


def group(policy="jsq", seed=3, **engine_kwargs) -> ReplicaGroup:
    def build(node, parallelism):
        return FlexGenSystem(MODEL, node, parallelism=parallelism)
    return ReplicaGroup.from_layout(build, "2x(none)", V100_16GB_NODE,
                                    policy=policy, seed=seed,
                                    **engine_kwargs)


def mixed_classes():
    """Batch-heavy load plus interactive arrivals (generate_requests emits
    interactive-only traces, so the class mix is built explicitly)."""
    reqs = []
    for i in range(8):
        reqs.append(Request(request_id=i, arrival_time=0.4 * i,
                            input_len=256, output_len=64, slo_class="batch"))
    for j in range(6):
        reqs.append(Request(request_id=100 + j, arrival_time=0.9 + 0.5 * j,
                            input_len=64, output_len=32,
                            slo_class="interactive"))
    return sorted(reqs, key=lambda r: (r.arrival_time, r.request_id))


def crash_at(fail=2.0, recover=4.0, replica=0, mode="crash"):
    return FaultSchedule([FaultEvent(replica, fail, recover, mode=mode)])


# --------------------------------------------------------------------- #
# Schedule and policy validation
# --------------------------------------------------------------------- #
class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(0, 1.0, 2.0, mode="meteor")
        with pytest.raises(ConfigurationError):
            FaultEvent(-1, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(0, 2.0, 2.0)  # recover must exceed fail
        with pytest.raises(ConfigurationError):
            FaultEvent(0, -0.5, 2.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigurationError, match="overlapping"):
            FaultSchedule([FaultEvent(0, 1.0, 3.0), FaultEvent(0, 2.0, 4.0)])
        # Same windows on different replicas are fine.
        FaultSchedule([FaultEvent(0, 1.0, 3.0), FaultEvent(1, 2.0, 4.0)])

    def test_non_event_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule([(0, 1.0, 2.0)])

    def test_timeline_recover_sorts_before_fail_at_ties(self):
        schedule = FaultSchedule([FaultEvent(0, 1.0, 2.0),
                                  FaultEvent(1, 2.0, 3.0)])
        timeline = schedule.timeline()
        assert timeline == [(1.0, REPLICA_FAIL, 0),
                            (2.0, REPLICA_RECOVER, 0),
                            (2.0, REPLICA_FAIL, 1),
                            (3.0, REPLICA_RECOVER, 1)]

    def test_stochastic_is_seed_deterministic(self):
        args = dict(num_replicas=2, mtbf_s=5.0, mttr_s=1.0, horizon_s=60.0)
        assert FaultSchedule.stochastic(**args, seed=7) == \
            FaultSchedule.stochastic(**args, seed=7)
        assert FaultSchedule.stochastic(**args, seed=7) != \
            FaultSchedule.stochastic(**args, seed=8)

    def test_stochastic_windows_respect_horizon_and_modes(self):
        schedule = FaultSchedule.stochastic(3, mtbf_s=4.0, mttr_s=0.5,
                                            horizon_s=40.0, seed=1,
                                            mode="drain")
        assert len(schedule) > 0
        for event in schedule.events:
            assert event.fail_time < 40.0
            assert event.mode == "drain"
            assert event.mode in FAULT_MODES

    def test_downtime_clips_to_horizon(self):
        schedule = FaultSchedule([FaultEvent(0, 2.0, 1000.0)])
        assert schedule.downtime_s(10.0) == pytest.approx(8.0)
        assert schedule.downtime_s(2000.0) == pytest.approx(998.0)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        retry = RetryPolicy(max_retries=3, backoff_s=0.1, backoff_factor=2.0)
        assert retry.delay(1) == pytest.approx(0.1)
        assert retry.delay(2) == pytest.approx(0.2)
        assert retry.delay(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.0)


class TestLoadShedder:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadShedder(classes=("steerage",))
        with pytest.raises(ConfigurationError):
            LoadShedder(classes=())
        with pytest.raises(ConfigurationError):
            LoadShedder(kv_occupancy=1.5)

    def test_sheds_only_degraded_sheddable_classes(self):
        shedder = LoadShedder()
        batch = Request(request_id=0, arrival_time=0.0, input_len=8,
                        output_len=4, slo_class="batch")
        interactive = Request(request_id=1, arrival_time=0.0, input_len=8,
                              output_len=4, slo_class="interactive")
        assert not shedder.should_shed(batch, False, [])
        assert shedder.should_shed(batch, True, [])
        assert not shedder.should_shed(interactive, True, [])


# --------------------------------------------------------------------- #
# Bit-identity: faults=None perturbs nothing
# --------------------------------------------------------------------- #
class TestNoFaultBitIdentity:
    def test_engine_serve_reproduces_golden_pin(self):
        trace = engine().serve(requests(), faults=None)
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.num_failed == 0 and trace.num_shed == 0
        assert trace.num_retries == 0
        assert "resilience" not in trace.metadata
        assert all(r.status == "completed" for r in trace.records)

    def test_retry_and_shedding_require_faults(self):
        with pytest.raises(ConfigurationError, match="faults"):
            engine().serve(requests(), retry=RetryPolicy())
        with pytest.raises(ConfigurationError, match="faults"):
            engine().serve(requests(), shedding=LoadShedder())

    def test_exact_stepping_rejects_faults(self):
        with pytest.raises(ConfigurationError):
            engine(exact_stepping=True).serve(requests(),
                                              faults=crash_at())


# --------------------------------------------------------------------- #
# Single-engine failure and recovery
# --------------------------------------------------------------------- #
class TestEngineFaults:
    @pytest.mark.parametrize("mode", FAULT_MODES)
    def test_outage_completes_every_request_via_retry(self, mode):
        trace = engine().serve(requests(), faults=crash_at(mode=mode))
        assert trace.num_requests == 16
        assert len(trace.completed_records) == 16
        assert trace.num_failed == 0 and trace.num_shed == 0
        assert trace.num_retries > 0
        resilience = trace.metadata["resilience"]
        assert resilience["num_failures"] == 1
        assert resilience["downtime_s"] == pytest.approx(2.0)
        assert 0.0 < resilience["availability"] < 1.0
        assert trace.metadata["faults"]["num_failures"] == 1

    def test_retried_records_keep_original_arrival(self):
        plain = engine().serve(requests())
        trace = engine().serve(requests(), faults=crash_at())
        arrivals = {r.request_id: r.arrival_time for r in plain.records}
        retried = [r for r in trace.records if r.retries > 0]
        assert retried
        for record in trace.records:
            assert record.arrival_time == arrivals[record.request_id]
        assert sum(r.retries for r in trace.records) == trace.num_retries

    def test_drain_prices_kv_migration(self):
        crash = engine().serve(requests(), faults=crash_at(mode="crash"))
        drain = engine().serve(requests(), faults=crash_at(mode="drain"))
        assert crash.metadata["faults"]["drained_bytes"] == 0.0
        assert drain.metadata["faults"]["drained_bytes"] > 0.0

    def test_retry_exhaustion_terminates_as_failed(self):
        # The outage never recovers within the trace and retries are
        # forbidden, so everything interrupted (or arriving while down)
        # must terminate as a failed record.
        trace = engine().serve(
            requests(), faults=crash_at(fail=2.0, recover=10_000.0),
            retry=RetryPolicy(max_retries=0))
        assert trace.num_failed > 0
        assert len(trace.completed_records) + trace.num_failed == 16
        for record in trace.records:
            if record.status != "failed":
                continue
            # Failed records collapse to their termination instant.
            assert record.admission_time == record.completion_time
            assert record.first_token_time == record.completion_time
            assert record.completion_time >= record.arrival_time

    def test_metrics_cover_only_completed_records(self):
        trace = engine().serve(
            requests(), faults=crash_at(fail=2.0, recover=10_000.0),
            retry=RetryPolicy(max_retries=0))
        completed = trace.completed_records
        assert trace.generated_tokens == sum(r.output_len for r in completed)
        assert trace.duration == max(r.completion_time
                                     for r in trace.records)

    def test_streaming_summary_matches_full(self):
        faults = crash_at(fail=2.0, recover=4.0)
        full = engine().serve(requests(), faults=faults,
                              retry=RetryPolicy(max_retries=1))
        streaming = engine().serve(requests(), faults=faults,
                                   retry=RetryPolicy(max_retries=1),
                                   record_mode="streaming")
        full_summary = full.summary()
        stream_summary = streaming.summary()
        for key in ("num_requests", "generated_tokens", "duration_s",
                    "num_failed", "num_shed", "num_retries",
                    "throughput_tokens_per_s"):
            assert stream_summary[key] == full_summary[key], key

    def test_schedule_naming_missing_replica_rejected(self):
        with pytest.raises(ConfigurationError, match="replica"):
            engine().serve(requests(), faults=crash_at(replica=1))


# --------------------------------------------------------------------- #
# Cluster failure and recovery (the acceptance scenario)
# --------------------------------------------------------------------- #
class TestClusterFaults:
    def test_mid_trace_crash_jsq_completes_every_request(self):
        journal = []
        trace = group().serve(requests(), faults=crash_at(replica=1),
                              event_journal=journal)
        assert trace.num_requests == 16
        assert len(trace.completed_records) == 16
        assert trace.num_failed == 0 and trace.num_shed == 0
        kinds = {kind for _, kind, _ in journal}
        assert REPLICA_FAIL in kinds and REPLICA_RECOVER in kinds
        # Health-aware routing skews dispatch to the survivor.
        counts = trace.metadata["routing"]["dispatch_counts"]
        assert sum(counts) >= 16  # retries re-dispatch through the router
        assert trace.metadata["resilience"]["num_failures"] == 1

    @pytest.mark.parametrize("mode", FAULT_MODES)
    def test_cluster_modes_conserve_requests(self, mode):
        trace = group().serve(requests(), faults=crash_at(replica=1,
                                                          mode=mode))
        assert len(trace.records) == 16
        assert len({r.request_id for r in trace.records}) == 16

    def test_availability_clips_to_trace_duration(self):
        # The recovery lands long after the last completion: only the
        # in-trace part of the outage may count as downtime.
        trace = group().serve(requests(),
                              faults=crash_at(fail=2.0, recover=1000.0,
                                              replica=1))
        resilience = trace.metadata["resilience"]
        assert resilience["downtime_s"] <= trace.duration
        expected = 1.0 - (trace.duration - 2.0) / (2 * trace.duration)
        assert resilience["availability"] == pytest.approx(expected)

    def test_total_outage_parks_and_recovers(self):
        faults = FaultSchedule([FaultEvent(0, 1.0, 3.0),
                                FaultEvent(1, 1.5, 2.5)])
        trace = group().serve(requests(), faults=faults)
        assert len(trace.records) == 16
        assert len(trace.completed_records) == 16

    def test_event_journal_is_seed_deterministic(self):
        faults = FaultSchedule.stochastic(2, mtbf_s=4.0, mttr_s=0.5,
                                          horizon_s=8.0, seed=5)
        journals = []
        for _ in range(2):
            journal = []
            trace = group().serve(requests(), faults=faults,
                                  event_journal=journal)
            journals.append((journal, trace.summary()))
        assert journals[0][0] == journals[1][0]
        assert journals[0][1] == journals[1][1]


class TestRouterHealth:
    def test_mark_down_excludes_replica(self):
        router = Router(2, policy="jsq")
        router.mark_down(0)
        request = Request(request_id=0, arrival_time=0.0, input_len=8,
                          output_len=4)
        assert router.assign(request, [1.0, 1.0]) == 1
        router.mark_up(0)
        with pytest.raises(ConfigurationError):
            router.mark_down(5)

    def test_round_robin_skips_down(self):
        router = Router(3, policy="round-robin")
        router.mark_down(1)
        request = Request(request_id=0, arrival_time=0.0, input_len=8,
                          output_len=4)
        picks = [router.assign(request, [1.0] * 3) for _ in range(4)]
        assert 1 not in picks

    def test_all_down_raises(self):
        router = Router(2, policy="jsq")
        router.mark_down(0)
        router.mark_down(1)
        request = Request(request_id=0, arrival_time=0.0, input_len=8,
                          output_len=4)
        with pytest.raises(ConfigurationError, match="down"):
            router.assign(request, [1.0, 1.0])

    def test_session_affinity_replaces_pinned_down_session(self):
        from repro.workloads.sessions import SessionRequest
        router = Router(2, policy="session-affinity", seed=0)
        first = SessionRequest(request_id=0, arrival_time=0.0, input_len=8,
                               output_len=4, session_id=9, final_turn=False)
        pinned = router.assign(first, [1.0, 1.0])
        router.mark_down(pinned)
        second = SessionRequest(request_id=1, arrival_time=1.0, input_len=8,
                                output_len=4, session_id=9, final_turn=False)
        assert router.assign(second, [1.0, 1.0]) != pinned


# --------------------------------------------------------------------- #
# Degraded-mode load shedding
# --------------------------------------------------------------------- #
class TestShedding:
    def test_shedding_protects_interactive_goodput(self):
        faults = crash_at(fail=1.0, recover=2.5)
        base = engine(preemption="retain").serve(
            mixed_classes(), faults=faults, class_slos=CLASS_SLOS)
        shed = engine(preemption="retain").serve(
            mixed_classes(), faults=faults, class_slos=CLASS_SLOS,
            shedding=LoadShedder())
        assert base.num_shed == 0
        assert shed.num_shed > 0
        def interactive_goodput(trace):
            return trace.per_class_summary(CLASS_SLOS)["interactive"][
                "goodput_tokens_per_s"]
        assert interactive_goodput(shed) > interactive_goodput(base)

    def test_shed_records_are_batch_class_instants(self):
        trace = engine(preemption="retain").serve(
            mixed_classes(), faults=crash_at(fail=1.0, recover=2.5),
            shedding=LoadShedder())
        shed = [r for r in trace.records if r.status == "shed"]
        assert shed
        for record in shed:
            assert record.slo_class == "batch"
            assert record.completion_time == record.arrival_time
        assert len(trace.records) == len(mixed_classes())


# --------------------------------------------------------------------- #
# Observability integration
# --------------------------------------------------------------------- #
class _FaultLog(Observer):
    def __init__(self):
        self.fails = []
        self.recovers = []
        self.retries = []
        self.sheds = []

    def on_replica_fail(self, replica, time, mode):
        self.fails.append((replica, time, mode))

    def on_replica_recover(self, replica, time):
        self.recovers.append((replica, time))

    def on_retry(self, replica, time, request, attempt):
        self.retries.append((replica, request.request_id, attempt))

    def on_shed(self, time, request):
        self.sheds.append(request.request_id)


class TestObservabilityIntegration:
    def test_fault_hooks_fire(self):
        log = _FaultLog()
        trace = group().serve(requests(), faults=crash_at(replica=1),
                              observers=[log])
        assert log.fails == [(1, 2.0, "crash")]
        assert log.recovers == [(1, 4.0)]
        assert len(log.retries) == trace.num_retries

    def test_shed_hook_fires(self):
        log = _FaultLog()
        trace = engine(preemption="retain").serve(
            mixed_classes(), faults=crash_at(fail=1.0, recover=2.5),
            shedding=LoadShedder(), observers=[log])
        assert len(log.sheds) == trace.num_shed > 0

    def test_chrome_trace_carries_fault_markers(self):
        tracer = SpanTracer()
        trace = group().serve(requests(), faults=crash_at(replica=1),
                              observers=[tracer], class_slos=CLASS_SLOS)
        chrome = tracer.to_chrome_trace()
        faults = [e for e in chrome["traceEvents"]
                  if e.get("cat") == "fault"]
        outages = [e for e in faults if e["name"] == "outage"]
        assert len(outages) == 1
        assert outages[0]["ph"] == "X" and outages[0]["pid"] == 1
        assert outages[0]["ts"] == pytest.approx(2.0 * 1e6)
        assert outages[0]["dur"] == pytest.approx(2.0 * 1e6)
        instants = {e["name"] for e in faults if e["ph"] == "i"}
        assert {"replica-fail", "replica-recover", "retry"} <= instants
        assert chrome["otherData"]["resilience"] == \
            trace.metadata["resilience"]

    def test_report_renders_resilience_section(self):
        tracer = SpanTracer()
        group().serve(requests(), faults=crash_at(replica=1),
                      observers=[tracer], class_slos=CLASS_SLOS)
        text = render(tracer.to_chrome_trace())
        assert "Resilience (fault injection)" in text
        assert "availability=" in text

    def test_no_fault_export_has_no_markers(self):
        tracer = SpanTracer()
        engine().serve(requests(), observers=[tracer])
        chrome = tracer.to_chrome_trace()
        assert not [e for e in chrome["traceEvents"]
                    if e.get("cat") == "fault"]
        assert chrome["otherData"]["resilience"] is None


# --------------------------------------------------------------------- #
# Property: conservation of arrivals under arbitrary schedules
# --------------------------------------------------------------------- #
@st.composite
def fault_schedules(draw):
    events = []
    for replica in range(2):
        if not draw(st.booleans()):
            continue
        fail = draw(st.floats(min_value=0.1, max_value=6.0,
                              allow_nan=False, allow_infinity=False))
        length = draw(st.floats(min_value=0.2, max_value=5.0,
                                allow_nan=False, allow_infinity=False))
        mode = draw(st.sampled_from(FAULT_MODES))
        events.append(FaultEvent(replica, fail, fail + length, mode=mode))
    return FaultSchedule(events)


class TestTerminationProperty:
    @settings(max_examples=12, deadline=None)
    @given(schedule=fault_schedules(),
           max_retries=st.integers(min_value=0, max_value=2),
           shed=st.booleans())
    def test_every_arrival_terminates_exactly_once(self, schedule,
                                                   max_retries, shed):
        arrivals = mixed_classes()
        trace = group().serve(
            arrivals, faults=schedule,
            retry=RetryPolicy(max_retries=max_retries),
            shedding=LoadShedder() if shed else None)
        assert len(trace.records) == len(arrivals)
        assert {r.request_id for r in trace.records} == \
            {r.request_id for r in arrivals}
        for record in trace.records:
            assert record.status in REQUEST_STATUSES
        assert len(trace.completed_records) + trace.num_failed \
            + trace.num_shed == len(arrivals)
