"""Tests for the serving layer: arrival traces, continuous batching, metrics."""

import numpy as np
import pytest

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem, VLLMSystem
from repro.core.engine import AlisaSystem
from repro.core.schedule_cache import (
    FULL_RESOLVE_POLICY,
    ScheduleCache,
    SchedulePolicy,
)
from repro.evaluation.metrics import percentiles, serving_goodput
from repro.experiments import list_experiments, run_experiment
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine, RequestRecord, ServingTrace
from repro.workloads.arrivals import (
    Request,
    bursty_arrival_times,
    generate_requests,
    poisson_arrival_times,
    sharegpt_lengths,
)

MODEL = "opt-6.7b"


def flexgen_engine(**kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(FlexGenSystem(MODEL, V100_16GB_NODE),
                                    **kwargs)


class TestArrivalTraces:
    def test_poisson_is_deterministic_and_increasing(self):
        a = poisson_arrival_times(64, rate=2.0, seed=7)
        b = poisson_arrival_times(64, rate=2.0, seed=7)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert not np.array_equal(a, poisson_arrival_times(64, 2.0, seed=8))

    def test_poisson_matches_requested_rate(self):
        times = poisson_arrival_times(2000, rate=4.0, seed=0)
        assert 2000 / times[-1] == pytest.approx(4.0, rel=0.1)

    def test_bursty_keeps_long_run_rate(self):
        times = bursty_arrival_times(2000, rate=4.0, seed=0, burst_size=8,
                                     burst_factor=8.0)
        assert np.all(np.diff(times) > 0)
        assert 2000 / times[-1] == pytest.approx(4.0, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        poisson = np.diff(poisson_arrival_times(2000, 4.0, seed=0))
        bursty = np.diff(bursty_arrival_times(2000, 4.0, seed=0))
        # Coefficient of variation of inter-arrival gaps: ~1 for Poisson,
        # larger for the Markov-modulated bursts.
        cv = lambda gaps: np.std(gaps) / np.mean(gaps)  # noqa: E731
        assert cv(bursty) > cv(poisson) * 1.3

    def test_sharegpt_lengths_heavy_tailed(self):
        inputs, outputs = sharegpt_lengths(4000, seed=0, mean_input=128,
                                           mean_output=256)
        assert inputs.min() >= 1 and outputs.min() >= 1
        assert np.mean(inputs) == pytest.approx(128, rel=0.15)
        assert np.mean(outputs) == pytest.approx(256, rel=0.15)
        # Heavy tail: the p99 length is far above the median.
        assert np.percentile(outputs, 99) > 3 * np.median(outputs)

    def test_generate_requests_fixed_and_sampled(self):
        fixed = generate_requests(10, 2.0, input_len=64, output_len=32, seed=0)
        assert all(r.input_len == 64 and r.output_len == 32 for r in fixed)
        assert [r.request_id for r in fixed] == list(range(10))
        sampled = generate_requests(10, 2.0, seed=0)
        assert len({r.input_len for r in sampled}) > 1

    def test_generate_requests_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            generate_requests(4, 1.0, pattern="fractal")

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            Request(0, arrival_time=-1.0, input_len=8, output_len=8)
        with pytest.raises(ConfigurationError):
            Request(0, arrival_time=0.0, input_len=0, output_len=8)


class TestServingMetrics:
    def test_percentiles_match_numpy(self, rng):
        values = rng.exponential(1.0, size=257)
        result = percentiles(values, qs=(50, 90, 99))
        for q in (50, 90, 99):
            assert result[float(q)] == np.percentile(values, q)

    def test_percentiles_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentiles([])

    def _record(self, request_id, ttft, tpot, output_len=10):
        first = 1.0 + ttft
        return RequestRecord(
            request_id=request_id, arrival_time=1.0, admission_time=1.0,
            first_token_time=first,
            completion_time=first + tpot * (output_len - 1),
            input_len=8, output_len=output_len,
        )

    def test_goodput_filters_by_slo(self):
        records = [self._record(0, ttft=0.1, tpot=0.01),
                   self._record(1, ttft=5.0, tpot=0.01),
                   self._record(2, ttft=0.1, tpot=1.0)]
        duration = 10.0
        assert serving_goodput(records, duration) == pytest.approx(3.0)
        assert serving_goodput(records, duration,
                               ttft_slo_s=1.0) == pytest.approx(2.0)
        assert serving_goodput(records, duration, ttft_slo_s=1.0,
                               tpot_slo_s=0.1) == pytest.approx(1.0)
        assert serving_goodput(records, 0.0) == 0.0

    def test_record_derived_metrics(self):
        record = RequestRecord(request_id=0, arrival_time=1.0,
                               admission_time=2.0, first_token_time=3.0,
                               completion_time=7.0, input_len=16, output_len=5)
        assert record.queueing_delay == pytest.approx(1.0)
        assert record.ttft == pytest.approx(2.0)
        assert record.tpot == pytest.approx(1.0)
        assert record.e2e_latency == pytest.approx(6.0)

    def test_record_rejects_disordered_timestamps(self):
        with pytest.raises(ConfigurationError):
            RequestRecord(request_id=0, arrival_time=1.0, admission_time=0.5,
                          first_token_time=2.0, completion_time=3.0,
                          input_len=8, output_len=8)

    def test_trace_percentiles_match_numpy(self):
        trace = ServingTrace(system="s", model="m")
        for i, ttft in enumerate((0.1, 0.4, 0.2, 0.9, 0.3)):
            trace.add_record(self._record(i, ttft=ttft, tpot=0.01))
        ttfts = [r.ttft for r in trace.records]
        assert trace.ttft_percentiles()[99.0] == np.percentile(ttfts, 99)
        assert trace.ttft_percentiles()[50.0] == np.percentile(ttfts, 50)


class TestContinuousBatchingEngine:
    def test_zero_arrival_trace_is_empty(self):
        trace = flexgen_engine().serve([])
        assert trace.num_requests == 0
        assert trace.records == []
        assert trace.throughput == 0.0
        assert trace.goodput() == 0.0
        assert trace.ttft_percentiles() == {}
        summary = trace.summary()
        assert summary["throughput_tokens_per_s"] == 0.0
        assert summary["p99_ttft_s"] == 0.0

    def test_all_requests_complete_with_ordered_timestamps(self):
        requests = generate_requests(12, rate=8.0, input_len=128,
                                     output_len=64, seed=1)
        trace = flexgen_engine().serve(requests)
        assert trace.num_requests == len(requests)
        assert sorted(r.request_id for r in trace.records) == list(range(12))
        for record in trace.records:
            assert record.ttft > 0
            assert record.tpot > 0
            assert record.e2e_latency >= record.ttft

    def test_admits_in_arrival_order(self):
        # High rate + long outputs force a backlog, so admission decisions
        # are non-trivial; FCFS must still admit strictly in arrival order.
        requests = generate_requests(16, rate=50.0, input_len=256,
                                     output_len=256, seed=2)
        trace = flexgen_engine().serve(requests)
        by_arrival = sorted(trace.records, key=lambda r: r.arrival_time)
        admissions = [r.admission_time for r in by_arrival]
        assert admissions == sorted(admissions)
        assert max(r.queueing_delay for r in by_arrival) > 0

    def test_never_exceeds_kv_budget(self):
        requests = generate_requests(16, rate=50.0, input_len=256,
                                     output_len=256, seed=2)
        engine = flexgen_engine()
        trace = engine.serve(requests)
        budget = trace.metadata["kv_budget_tokens"]
        assert budget == engine.kv_budget_tokens(requests)
        assert 0 < trace.metadata["peak_reserved_tokens"] <= budget

    def test_max_batch_size_caps_concurrency(self):
        requests = generate_requests(8, rate=100.0, input_len=32,
                                     output_len=32, seed=3)
        capped = flexgen_engine(max_batch_size=1).serve(requests)
        free = flexgen_engine().serve(requests)
        assert capped.metadata["peak_reserved_tokens"] == 64
        assert capped.duration > free.duration

    def test_oversized_request_rejected(self):
        engine = flexgen_engine()
        with pytest.raises(ConfigurationError):
            engine.serve([Request(0, 0.0, input_len=4000, output_len=4000)])

    def test_alisa_compression_doubles_admission_budget(self):
        requests = generate_requests(4, rate=4.0, input_len=64,
                                     output_len=32, seed=0)
        alisa = ContinuousBatchingEngine(
            AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8))
        ratio = (alisa.kv_budget_tokens(requests)
                 / flexgen_engine().kv_budget_tokens(requests))
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_vllm_and_alisa_serve_end_to_end(self):
        requests = generate_requests(6, rate=8.0, input_len=64,
                                     output_len=32, seed=4)
        for system in (VLLMSystem(MODEL, V100_16GB_NODE),
                       AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8)):
            trace = ContinuousBatchingEngine(system).serve(requests)
            assert trace.num_requests == len(requests)
            assert trace.throughput > 0


class TestIncrementalScheduling:
    """Serving behaviour of the scheduler cache (repro.core.schedule_cache)."""

    REQUESTS = dict(rate=16.0, input_len=256, output_len=128, seed=5)

    def _serve(self, policy=None, cache=None, num=12):
        requests = generate_requests(num, **self.REQUESTS)
        engine = ContinuousBatchingEngine(
            AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8,
                        schedule_policy=policy, schedule_cache=cache))
        return engine.serve(requests)

    def test_exact_mode_reproduces_full_resolve_byte_identically(self):
        incremental_memo = self._serve(SchedulePolicy(exact=True))
        full_resolve = self._serve(FULL_RESOLVE_POLICY)
        for cached, reference in zip(incremental_memo.records,
                                     full_resolve.records):
            assert cached == reference
        assert incremental_memo.summary() == full_resolve.summary()

    def test_default_mode_drift_is_bounded(self):
        incremental = self._serve().summary()
        exact = self._serve(FULL_RESOLVE_POLICY).summary()
        for metric in ("p50_ttft_s", "p99_ttft_s", "p50_tpot_s",
                       "p99_tpot_s", "duration_s"):
            assert incremental[metric] == pytest.approx(exact[metric],
                                                        rel=0.05)

    def test_serve_reports_per_serve_solver_stats(self):
        trace = self._serve()
        stats = trace.metadata["scheduler"]
        assert stats["full_solves"] >= 1
        searches = (stats["exact_hits"] + stats["canonical_hits"]
                    + stats["warm_solves"] + stats["full_solves"])
        # Every decode epoch is either priced fresh (one schedule search,
        # plus one per prefill shape) or served whole from the engine's
        # epoch-price memo.
        epoch_cache = trace.metadata["epoch_cache"]
        assert searches + epoch_cache["hits"] >= trace.metadata["num_epochs"]
        assert (epoch_cache["hits"] + epoch_cache["misses"]
                == trace.metadata["num_epochs"])
        assert "scheduler" not in flexgen_engine().serve(
            generate_requests(4, **self.REQUESTS)).metadata

    def test_shared_cache_across_engines_skips_research(self):
        cache = ScheduleCache()
        self._serve(cache=cache)
        solves_first = cache.stats.full_solves + cache.stats.warm_solves
        self._serve(cache=cache)
        solves_second = (cache.stats.full_solves + cache.stats.warm_solves
                         - solves_first)
        assert solves_second == 0  # identical trace: every epoch memoized

    def test_cache_injection_rejected_for_non_planning_systems(self):
        with pytest.raises(ConfigurationError):
            ContinuousBatchingEngine(FlexGenSystem(MODEL, V100_16GB_NODE),
                                     schedule_cache=ScheduleCache())


class TestServingExperiment:
    def test_registered(self):
        assert "serving_rate_sweep" in list_experiments()

    @pytest.fixture(scope="class")
    def result(self):
        # 16 x (256 + 128) = 6144 reserved KV tokens versus a ~5k-token FP16
        # budget: the baselines must queue at high rate while ALISA's INT8
        # cache still fits everything.
        return run_experiment("serving_rate_sweep", rates=(2.0, 16.0),
                              num_requests=16, input_len=256, output_len=128)

    def test_rows_cover_systems_and_rates(self, result):
        systems = {row["system"] for row in result.rows}
        assert systems == {"alisa", "vllm", "flexgen"}
        assert len(result.rows) == 6

    def test_tail_latency_grows_with_load(self, result):
        for system in ("alisa", "vllm", "flexgen"):
            rows = sorted(result.filter(system=system),
                          key=lambda r: r["rate_req_per_s"])
            assert rows[-1]["p99_ttft_s"] >= rows[0]["p99_ttft_s"]
            assert (rows[-1]["mean_queueing_delay_s"]
                    >= rows[0]["mean_queueing_delay_s"])

    def test_alisa_queues_less_under_load(self, result):
        alisa = result.filter(system="alisa", rate_req_per_s=16.0)[0]
        vllm = result.filter(system="vllm", rate_req_per_s=16.0)[0]
        assert alisa["kv_budget_tokens"] > vllm["kv_budget_tokens"]
        assert alisa["p99_ttft_s"] <= vllm["p99_ttft_s"]

    def test_rows_report_solver_stats(self, result):
        alisa_rows = result.filter(system="alisa")
        assert any(row["solver_full_solves"] + row["solver_warm_solves"] > 0
                   for row in alisa_rows)
        for row in result.filter(system="vllm"):
            assert row["solver_full_solves"] == 0

    def test_exact_schedules_knob_is_recorded(self):
        result = run_experiment("serving_rate_sweep", rates=(4.0,),
                                num_requests=4, input_len=64, output_len=32,
                                exact_schedules=True)
        assert result.notes["exact_schedules"] is True
        alisa_row = result.filter(system="alisa")[0]
        assert alisa_row["solver_warm_solves"] == 0
        assert alisa_row["solver_canonical_hits"] == 0
