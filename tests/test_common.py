"""Unit tests for repro._common utilities."""

import numpy as np
import pytest

from repro._common import (
    ConfigurationError,
    chunked,
    dtype_bytes,
    log_softmax,
    round_half_up,
    rng,
    softmax,
    unique_preserving_order,
    validate_fraction,
    validate_positive,
)


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax(np.array([1.0, 2.0, 3.0]))
        assert np.isclose(out.sum(), 1.0)

    def test_monotonic_in_logits(self):
        out = softmax(np.array([1.0, 2.0, 3.0]))
        assert out[0] < out[1] < out[2]

    def test_stable_for_large_logits(self):
        out = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(out))
        assert np.isclose(out.sum(), 1.0)

    def test_axis_argument(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        out = softmax(x, axis=0)
        assert np.allclose(out.sum(axis=0), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.array([0.5, -1.0, 2.0])
        assert np.allclose(log_softmax(x), np.log(softmax(x)))


class TestDtypeBytes:
    @pytest.mark.parametrize("name,expected", [("fp32", 4), ("fp16", 2),
                                               ("int8", 1), ("int4", 0.5)])
    def test_known_dtypes(self, name, expected):
        assert dtype_bytes(name) == expected

    def test_unknown_dtype_raises(self):
        with pytest.raises(ConfigurationError):
            dtype_bytes("bf17")


class TestRounding:
    @pytest.mark.parametrize("value,expected", [(0.4, 0), (0.5, 1), (1.5, 2),
                                                (2.49, 2), (10.5, 11)])
    def test_round_half_up(self, value, expected):
        assert round_half_up(value) == expected


class TestValidators:
    def test_validate_positive_accepts_positive(self):
        validate_positive(a=1, b=0.5)

    @pytest.mark.parametrize("value", [0, -1, None])
    def test_validate_positive_rejects(self, value):
        with pytest.raises(ConfigurationError):
            validate_positive(x=value)

    def test_validate_fraction_accepts_bounds(self):
        validate_fraction(a=0.0, b=1.0, c=0.5)

    @pytest.mark.parametrize("value", [-0.1, 1.1, None])
    def test_validate_fraction_rejects(self, value):
        with pytest.raises(ConfigurationError):
            validate_fraction(x=value)


class TestCollections:
    def test_unique_preserving_order(self):
        assert unique_preserving_order([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_chunked_splits_evenly(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_chunked_last_partial(self):
        assert chunked([1, 2, 3], 2) == [[1, 2], [3]]

    def test_chunked_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            chunked([1], 0)

    def test_rng_is_deterministic(self):
        assert rng(7).integers(0, 100, 5).tolist() == rng(7).integers(0, 100, 5).tolist()
