"""Tests for the system side: scheduler, optimizer, memory, cost, simulators."""

import numpy as np
import pytest

from repro._common import ConfigurationError, OutOfMemoryError
from repro.baselines import (
    BASELINE_SYSTEMS,
    AccelerateSystem,
    DeepSpeedZeroSystem,
    FlexGenSystem,
    GPUOnlySystem,
    VLLMSystem,
)
from repro.core.engine import AlisaSystem
from repro.core.optimizer import (
    CostParameters,
    SchedulerOptimizer,
    gpu_kv_budget_tokens,
    phase1_end_step,
)
from repro.core.scheduler import (
    PHASE_GPU,
    PHASE_GPU_CPU,
    PHASE_RECOMPUTE,
    DynamicScheduler,
    SchedulerConfig,
)
from repro.core.swa import SWAConfig
from repro.hardware.presets import (
    H100_80GB_NODE,
    V100_16GB_NODE,
    get_hardware,
    hardware_for_model,
)
from repro.systems.memory import MemoryDevice, MemoryHierarchy, PCIeLink
from repro.workloads.descriptors import Workload


class TestMemoryDevice:
    def test_allocate_and_free(self):
        device = MemoryDevice("gpu", 1000)
        device.allocate("weights", 600)
        assert device.used_bytes == 600
        device.free("weights")
        assert device.used_bytes == 0

    def test_oom_raised(self):
        device = MemoryDevice("gpu", 100)
        with pytest.raises(OutOfMemoryError):
            device.allocate("kv", 101)

    def test_peak_tracking(self):
        device = MemoryDevice("gpu", 100)
        device.allocate("a", 80)
        device.free("a", 50)
        assert device.peak_bytes == 80
        assert device.used_bytes == 30

    def test_resize_shrinks_and_grows(self):
        device = MemoryDevice("gpu", 100)
        device.resize("kv", 40)
        device.resize("kv", 10)
        assert device.usage("kv") == 10
        device.resize("kv", 0)
        assert "kv" not in device.allocations()

    def test_resize_respects_capacity(self):
        device = MemoryDevice("gpu", 100)
        device.allocate("weights", 90)
        with pytest.raises(OutOfMemoryError):
            device.resize("kv", 20)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryDevice("gpu", 10).allocate("x", -1)


class TestPCIeLink:
    def test_transfer_time_linear_in_bytes(self):
        link = PCIeLink(20e9, latency_s=0.0)
        assert link.transfer_time(20e9) == pytest.approx(1.0)

    def test_zero_bytes_costs_nothing(self):
        assert PCIeLink(20e9).transfer_time(0) == 0.0

    def test_traffic_accounting(self):
        link = PCIeLink(1e9)
        link.host_to_device(10)
        link.device_to_host(5)
        assert link.total_bytes == 15

    def test_hierarchy_from_hardware(self):
        hierarchy = MemoryHierarchy.from_hardware(V100_16GB_NODE)
        assert hierarchy.gpu.capacity_bytes == V100_16GB_NODE.gpu.memory_bytes
        assert hierarchy.link.bandwidth_bytes_per_s == V100_16GB_NODE.pcie_bandwidth


class TestHardwarePresets:
    def test_lookup_by_name(self):
        assert get_hardware("h100-80gb-node").gpu.name == "H100-80GB"

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            get_hardware("tpu-v5")

    @pytest.mark.parametrize("model,expected", [
        ("opt-6.7b", "v100-16gb-node"),
        ("opt-13b", "v100-32gb-node"),
        ("opt-30b", "h100-80gb-node"),
        ("llama-33b", "h100-80gb-node"),
    ])
    def test_model_to_node_mapping(self, model, expected):
        assert hardware_for_model(model).name == expected

    def test_pcie_override(self):
        node = V100_16GB_NODE.with_pcie_bandwidth(40e9)
        assert node.pcie_bandwidth == 40e9
        assert V100_16GB_NODE.pcie_bandwidth == 20e9


class TestCostModel:
    def test_decode_time_grows_with_kv_len(self, opt_cost_model):
        assert (opt_cost_model.decode_step_time(8, 2048)
                > opt_cost_model.decode_step_time(8, 128))

    def test_sparse_attention_not_slower_without_overhead(self, opt_cost_model):
        dense = opt_cost_model.attention_time(64, 1024)
        sparse = opt_cost_model.attention_time(64, 1024, kept_kv=128)
        assert sparse <= dense

    def test_breakdown_contains_swa_ops_only_when_requested(self, opt_cost_model):
        dense_ops = set(opt_cost_model.attention_breakdown(8, 256).as_dict())
        swa_ops = set(opt_cost_model.attention_breakdown(8, 256, kept_kv=64,
                                                         local_window=32).as_dict())
        assert "local_attention_sum" not in dense_ops
        assert {"local_attention_sum", "sparse_kv_gather"} <= swa_ops

    def test_kv_bytes_match_paper_formula(self, opt_cost_model):
        config = opt_cost_model.config
        expected = 4 * config.num_layers * config.hidden_size * 8
        assert opt_cost_model.kv_bytes_per_token(8) == pytest.approx(expected)

    def test_weight_bytes_scale(self, opt_cost_model):
        assert 10e9 < opt_cost_model.weight_bytes() < 20e9  # ~13 GB at FP16

    def test_recompute_zero_tokens_free(self, opt_cost_model):
        assert opt_cost_model.recompute_time(8, 0) == 0.0

    def test_prefill_quadratic_growth(self, opt_cost_model):
        short = opt_cost_model.prefill_time(8, 128)
        long = opt_cost_model.prefill_time(8, 512)
        assert long > 3.9 * short

    def test_cpu_attention_time_positive(self, opt_cost_model):
        assert opt_cost_model.cpu_attention_time(8, 100) > 0
        assert opt_cost_model.cpu_attention_time(8, 0) == 0.0

    def test_pcie_time_matches_bandwidth(self, opt_cost_model):
        assert opt_cost_model.pcie_time(20e9) == pytest.approx(1.0)


class TestScheduler:
    def _scheduler(self, budget=200, alpha=0.5, beta=0.4, p1=50, p2=100,
                   prompt=128):
        config = SchedulerConfig(offload_ratio=alpha, recompute_ratio=beta,
                                 phase2_step=p1, phase3_step=p2)
        return DynamicScheduler(config, SWAConfig.from_sparsity(0.8),
                                gpu_budget_tokens=budget, prompt_len=prompt)

    def test_phase_progression(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        phases = [scheduler.plan_step(j).phase for j in range(120)]
        assert phases[0] == PHASE_GPU
        assert PHASE_GPU_CPU in phases
        assert phases[-1] == PHASE_RECOMPUTE
        # Phases never go backwards.
        order = {PHASE_GPU: 0, PHASE_GPU_CPU: 1, PHASE_RECOMPUTE: 2}
        ranks = [order[p] for p in phases]
        assert ranks == sorted(ranks)

    def test_placement_covers_sequence(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        for j in range(150):
            plan = scheduler.plan_step(j)
            assert (plan.tokens_gpu + plan.tokens_cpu + plan.tokens_deleted
                    == plan.sequence_length)

    def test_gpu_capacity_enforced_in_phase2(self):
        scheduler = self._scheduler(budget=150, alpha=0.1, beta=0.0, p1=10,
                                    p2=400, prompt=128)
        scheduler.plan_prefill()
        for j in range(200):
            plan = scheduler.plan_step(j)
            assert plan.tokens_gpu <= 150 + 1

    def test_recompute_only_in_phase3(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        for j in range(120):
            plan = scheduler.plan_step(j)
            if plan.phase != PHASE_RECOMPUTE:
                assert plan.recompute_tokens == 0.0

    def test_prefill_required_before_steps(self):
        scheduler = self._scheduler()
        with pytest.raises(ConfigurationError):
            scheduler.plan_step(0)

    def test_prefill_only_once(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        with pytest.raises(ConfigurationError):
            scheduler.plan_prefill()

    def test_invalid_phase_order_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(offload_ratio=0.5, recompute_ratio=0.5,
                            phase2_step=100, phase3_step=50)

    def test_kept_tokens_track_swa_budget(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        plan = None
        for j in range(11):
            plan = scheduler.plan_step(j)
        assert plan.kept_tokens <= 0.25 * plan.sequence_length + 2

    def test_out_of_order_steps_rejected(self):
        scheduler = self._scheduler()
        scheduler.plan_prefill()
        with pytest.raises(ConfigurationError):
            scheduler.plan_step(5)


class TestOptimizer:
    def test_cost_parameters_transfer_time(self):
        params = CostParameters(hidden_size=4096, num_layers=32, batch_size=8,
                                input_len=128, output_len=512,
                                caching_ratio=0.2, pcie_bandwidth=20e9)
        per_token = params.kv_bytes_per_token
        assert params.transfer_time(10) == pytest.approx(10 * per_token / 20e9)

    def test_budget_tokens_smaller_for_larger_batch(self, opt_cost_model):
        small = gpu_kv_budget_tokens(opt_cost_model,
                                     Workload(4, 128, 512, "a"))
        large = gpu_kv_budget_tokens(opt_cost_model,
                                     Workload(64, 128, 512, "b"))
        assert large < small

    def test_phase1_end_step_clipped(self):
        assert phase1_end_step(100, Workload(1, 128, 512, "w")) == 0
        assert phase1_end_step(10_000, Workload(1, 128, 512, "w")) == 512

    def test_solution_is_feasible(self, opt_cost_model):
        workload = Workload(32, 128, 128, "opt")
        optimizer = SchedulerOptimizer(opt_cost_model, workload,
                                       SWAConfig.from_sparsity(0.8))
        solution = optimizer.solve()
        assert solution.estimated_time > 0
        assert solution.evaluated_candidates > 0
        assert 0 <= solution.config.phase2_step <= solution.config.phase3_step


class TestSimulators:
    @pytest.mark.parametrize("name", sorted(BASELINE_SYSTEMS))
    def test_baselines_produce_traces(self, name, small_workload):
        system = BASELINE_SYSTEMS[name]("opt-6.7b", V100_16GB_NODE)
        trace = system.run(small_workload)
        assert trace.system == name
        if not trace.oom:
            assert trace.throughput > 0
            assert len(trace.steps) == small_workload.output_len

    def test_gpu_only_ooms_on_large_batch(self):
        workload = Workload(64, 512, 512, "big")
        trace = GPUOnlySystem("opt-6.7b", V100_16GB_NODE).run(workload)
        assert trace.oom

    def test_accelerate_keeps_kv_on_cpu(self, small_workload):
        trace = AccelerateSystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        assert trace.steps[-1].cpu_kv_bytes > 0
        assert trace.steps[-1].gpu_kv_bytes == 0

    def test_deepspeed_streams_weights(self, small_workload):
        trace = DeepSpeedZeroSystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        slow = trace.steps[0].transfer_time
        fast = GPUOnlySystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        assert slow > fast.steps[0].transfer_time

    def test_flexgen_explicit_fraction_splits_kv(self, small_workload):
        trace = FlexGenSystem("opt-6.7b", V100_16GB_NODE,
                              cpu_fraction=0.5).run(small_workload)
        last = trace.steps[-1]
        assert last.cpu_kv_bytes == pytest.approx(last.gpu_kv_bytes, rel=0.05)

    def test_vllm_single_wave_matches_gpu_only_speed(self, small_workload):
        vllm = VLLMSystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        gpu = GPUOnlySystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        assert vllm.throughput == pytest.approx(gpu.throughput, rel=0.05)

    def test_vllm_waves_for_large_batch(self):
        workload = Workload(64, 128, 256, "big")
        system = VLLMSystem("opt-6.7b", V100_16GB_NODE)
        trace = system.run(workload)
        assert trace.metadata.get("waves", 1) > 1
        assert not trace.oom

    def test_alisa_faster_than_flexgen_at_large_batch(self):
        workload = Workload(32, 128, 128, "large")
        flexgen = FlexGenSystem("opt-6.7b", V100_16GB_NODE).run(workload)
        alisa = AlisaSystem("opt-6.7b", V100_16GB_NODE,
                            kv_sparsity=0.8).run(workload)
        assert alisa.throughput > flexgen.throughput

    def test_alisa_compression_reduces_kv_footprint(self):
        workload = Workload(32, 128, 64, "w")
        compressed = AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                                 use_compression=True).run(workload)
        uncompressed = AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                                   use_compression=False).run(workload)
        assert (compressed.steps[-1].gpu_kv_bytes + compressed.steps[-1].cpu_kv_bytes
                < uncompressed.steps[-1].gpu_kv_bytes
                + uncompressed.steps[-1].cpu_kv_bytes)

    def test_alisa_phases_progress_on_h100(self):
        workload = Workload(64, 128, 256, "fig12")
        trace = AlisaSystem("opt-30b", H100_80GB_NODE, kv_sparsity=0.8,
                            use_compression=False).run(workload)
        assert PHASE_GPU in trace.time_by_phase()
        assert not trace.oom

    def test_trace_summary_keys(self, small_workload):
        trace = FlexGenSystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        summary = trace.summary()
        for key in ("system", "throughput_tokens_per_s", "peak_gpu_gb",
                    "time_compute_s", "time_transfer_s"):
            assert key in summary

    def test_trace_time_components_sum(self, small_workload):
        trace = FlexGenSystem("opt-6.7b", V100_16GB_NODE).run(small_workload)
        components = trace.time_by_component()
        assert sum(components.values()) == pytest.approx(trace.total_time)


class TestCostAccountingRegressions:
    """Pin the prefill-quantization and static-offload cost accounting."""

    #: Static-ablation workload whose KV cache overflows the V100-16GB GPU
    #: (max_seq_len exceeds the KV budget), forcing prefill-time offloading.
    OFFLOAD_WORKLOAD = Workload(16, 256, 256, "offload")

    @pytest.mark.parametrize("use_dynamic_scheduling", [False, True])
    def test_prefill_pays_quantization_when_offloading(self,
                                                       use_dynamic_scheduling):
        # kv_dtype is pinned to fp16 on both sides so the *only* difference
        # is the (de)quantization overhead, not the transfer volume.
        workload = (self.OFFLOAD_WORKLOAD if not use_dynamic_scheduling
                    else Workload(16, 512, 32, "offload-dyn"))
        compressed = AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                                 use_dynamic_scheduling=use_dynamic_scheduling,
                                 use_compression=True, kv_dtype="fp16")
        plain = AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                            use_dynamic_scheduling=use_dynamic_scheduling,
                            use_compression=False)
        assert compressed.gpu_kv_budget_tokens(workload) < workload.max_seq_len
        compressed_trace = compressed.run(workload)
        plain_trace = plain.run(workload)
        assert not compressed_trace.oom and not plain_trace.oom
        assert compressed_trace.prefill_time > plain_trace.prefill_time

    def test_static_ablation_offloads_per_step_delta(self):
        workload = self.OFFLOAD_WORKLOAD
        system = AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                             use_dynamic_scheduling=False,
                             use_compression=False)
        budget = system.gpu_kv_budget_tokens(workload)
        fraction = 1.0 - budget / workload.max_seq_len
        assert fraction > 0
        trace = system.run(workload)
        assert not trace.oom
        per_token = system.kv_token_bytes(workload)
        # Each decode step grows the CPU share by exactly `fraction` tokens;
        # only that delta crosses PCIe.
        for step in trace.steps:
            assert step.bytes_offloaded == pytest.approx(fraction * per_token)
        # Plan-level invariant: every step's offload equals the growth of
        # the CPU-resident share over the preceding plan, regardless of
        # where in the sequence the step sits, so cumulative offloads
        # reconstruct the resident share exactly.
        system.prepare(workload)
        previous = system.plan_prefill(workload)
        for step in range(4):
            plan = system.plan_decode_step(step, workload)
            assert plan.offload_kv_tokens == pytest.approx(
                plan.kv_cpu_tokens - previous.kv_cpu_tokens)
            previous = plan
