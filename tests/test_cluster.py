"""Tests for repro.cluster: layouts, routing, replica groups, cluster sweep."""

import pytest

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem
from repro.cluster import (
    ROUTING_POLICIES,
    ClusterLayout,
    ClusterSpec,
    ReplicaGroup,
    Router,
    cluster_of,
    validate_equal_gpu_count,
)
from repro.core.engine import AlisaSystem
from repro.experiments import run_experiment
from repro.experiments.serving import max_sustained_rate
from repro.hardware.presets import V100_16GB_NODE, V100_16GB_X2_NODE, multi_gpu
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import ParallelismSpec
from repro.workloads.arrivals import generate_requests

MODEL = "opt-6.7b"


def alisa_factory(node, parallelism):
    return AlisaSystem(MODEL, node, kv_sparsity=0.8, parallelism=parallelism)


def flexgen_factory(node, parallelism):
    return FlexGenSystem(MODEL, node, parallelism=parallelism)


def group(layout="2x(none)", factory=alisa_factory, **kwargs):
    return ReplicaGroup.from_layout(factory, layout, V100_16GB_NODE, **kwargs)


class TestClusterSpec:
    def test_totals_aggregate_over_replicas(self):
        spec = cluster_of(V100_16GB_X2_NODE, 3)
        assert spec.num_replicas == 3
        assert spec.total_gpus == 6
        assert spec.total_gpu_memory_bytes == \
            3 * V100_16GB_X2_NODE.node_gpu_memory_bytes
        assert spec.name == "v100-16gb-node-x2-nvlink-dp3"

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec("bad", V100_16GB_NODE, num_replicas=0)

    def test_equal_gpu_count_validation(self):
        tp4 = cluster_of(multi_gpu(V100_16GB_NODE, 4), 1)
        dp2_tp2 = cluster_of(V100_16GB_X2_NODE, 2)
        dp4 = cluster_of(V100_16GB_NODE, 4)
        assert validate_equal_gpu_count(tp4, dp2_tp2, dp4) == 4
        with pytest.raises(ConfigurationError, match="unequal GPU counts"):
            validate_equal_gpu_count(tp4, cluster_of(V100_16GB_NODE, 2))
        with pytest.raises(ConfigurationError):
            validate_equal_gpu_count()


class TestMultiGPUCompounding:
    def test_multi_gpu_rejects_multi_gpu_base(self):
        # Deriving x2 from an x2 node used to silently yield gpu_count=2
        # with a doubled name; it must fail loudly instead.
        with pytest.raises(ConfigurationError, match="single-GPU base"):
            multi_gpu(V100_16GB_X2_NODE, 2)
        with pytest.raises(ValueError):  # ConfigurationError is a ValueError
            multi_gpu(multi_gpu(V100_16GB_NODE, 4), 2)

    def test_multi_gpu_still_accepts_single_gpu_base(self):
        assert multi_gpu(V100_16GB_NODE, 2).gpu_count == 2
        assert multi_gpu(V100_16GB_NODE, 1) is V100_16GB_NODE


class TestClusterLayout:
    def test_parse_round_trips_labels(self):
        for spec, replicas, mode, degree, label in (
                ("tp-4", 1, "tp", 4, "tp-4"),
                ("2x(tp-2)", 2, "tp", 2, "2x(tp-2)"),
                ("4x(tp-1)", 4, "none", 1, "4x(none)"),
                ("4 x (pp-2)", 4, "pp", 2, "4x(pp-2)"),
                ("none", 1, "none", 1, "none"),
                ("2x(none)", 2, "none", 1, "2x(none)")):
            layout = ClusterLayout.parse(spec)
            assert layout.num_replicas == replicas
            assert (layout.parallelism.mode,
                    layout.parallelism.degree) == (mode, degree)
            assert layout.label == label
            assert ClusterLayout.parse(layout.label) == layout

    def test_total_gpus(self):
        assert ClusterLayout.parse("2x(tp-2)").total_gpus == 4
        assert ClusterLayout.parse("4x(tp-1)").total_gpus == 4
        assert ClusterLayout.parse("tp-4").total_gpus == 4

    def test_parse_rejects_garbage(self):
        for bad in ("2x(tp-2", "x(tp-2)", "2x()", "2x(dp-2)", "0x(tp-2)",
                    "2x(2x(none))", ""):
            with pytest.raises(ConfigurationError):
                ClusterLayout.parse(bad)

    def test_cluster_spec_materializes_nodes(self):
        spec = ClusterLayout.parse("2x(tp-2)").cluster_spec(V100_16GB_NODE)
        assert spec.num_replicas == 2
        assert spec.node.gpu_count == 2
        assert spec.total_gpus == 4


class TestRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="routing policy"):
            Router(2, policy="random")

    def test_round_robin_cycles(self):
        router = Router(3, policy="round-robin")
        requests = generate_requests(6, rate=4.0, input_len=8, output_len=8)
        picks = [router.assign(r, [1.0, 1.0, 1.0]) for r in requests]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert router.dispatch_counts == [2, 2, 2]

    def test_jsq_prefers_lighter_kv_footprint(self):
        router = Router(2, policy="jsq", seed=0)
        heavy = generate_requests(1, rate=1.0, input_len=512,
                                  output_len=512)[0]
        first = router.assign(heavy, [100.0, 100.0])
        light = generate_requests(2, rate=1000.0, input_len=8,
                                  output_len=8)[1]
        # The heavy request is still in flight, so the light one must go
        # to the other replica.
        assert router.assign(light, [100.0, 100.0]) == 1 - first

    def test_least_loaded_prefers_earliest_completion(self):
        router = Router(2, policy="least-loaded", seed=0)
        requests = generate_requests(3, rate=1000.0, input_len=8,
                                     output_len=8)
        # Replica 1 serves twice as fast: it absorbs two requests (backlog
        # finishing at ~1 then ~2) before replica 0's first slot (~2)
        # becomes the earlier completion.
        assert router.assign(requests[0], [2.0, 1.0]) == 1
        assert router.assign(requests[1], [2.0, 1.0]) == 1
        assert router.assign(requests[2], [2.0, 1.0]) == 0

    def test_service_estimate_arity_checked(self):
        router = Router(2, policy="jsq")
        request = generate_requests(1, rate=1.0, input_len=8, output_len=8)[0]
        with pytest.raises(ConfigurationError):
            router.assign(request, [1.0])

    def test_tie_breaking_is_seed_deterministic(self):
        requests = generate_requests(12, rate=8.0, input_len=64,
                                     output_len=32, seed=3)

        def split(seed):
            router = Router(4, policy="jsq", seed=seed)
            return [router.assign(r, [1.0] * 4) for r in requests]

        assert split(7) == split(7)
        seeds = {tuple(split(seed)) for seed in range(8)}
        assert len(seeds) > 1  # ties genuinely resolve by the seed


class TestReplicaGroup:
    def test_needs_engines_and_homogeneous_system(self):
        with pytest.raises(ConfigurationError):
            ReplicaGroup([])
        mixed = [
            ContinuousBatchingEngine(alisa_factory(V100_16GB_NODE,
                                                   ParallelismSpec())),
            ContinuousBatchingEngine(flexgen_factory(V100_16GB_NODE,
                                                     ParallelismSpec())),
        ]
        with pytest.raises(ConfigurationError, match="one system"):
            ReplicaGroup(mixed)

    def test_from_layout_builds_independent_replicas(self):
        quad = group("4x(tp-1)")
        assert quad.num_replicas == 4
        assert quad.total_gpus == 4
        simulators = {id(engine.simulator) for engine in quad.engines}
        assert len(simulators) == 4
        caches = {id(engine.simulator.schedule_cache)
                  for engine in quad.engines}
        assert len(caches) == 4  # per-replica schedule caches

    def test_single_replica_round_robin_is_bit_identical_to_direct_serve(self):
        requests = generate_requests(12, rate=16.0, input_len=256,
                                     output_len=128, seed=5)
        cluster_trace = group("none", policy="round-robin").serve(requests)
        direct = ContinuousBatchingEngine(
            alisa_factory(V100_16GB_NODE, ParallelismSpec())).serve(requests)
        assert cluster_trace.records == direct.records
        direct_summary = direct.summary()
        cluster_summary = cluster_trace.summary()
        assert all(cluster_summary[key] == value
                   for key, value in direct_summary.items())
        assert cluster_trace.metadata["routing"]["dispatch_counts"] == [12]
        assert cluster_trace.tokens_imbalance == 1.0

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_bursty_trace_completes_under_every_policy(self, policy):
        requests = generate_requests(24, rate=16.0, pattern="bursty",
                                     seed=1)  # ShareGPT-style lengths
        trace = group("2x(none)", policy=policy).serve(requests)
        assert trace.num_requests == len(requests)
        assert sorted(r.request_id for r in trace.records) == list(range(24))
        counts = trace.metadata["routing"]["dispatch_counts"]
        assert sum(counts) == 24
        assert all(count > 0 for count in counts)  # no starved replica
        assert trace.metadata["routing"]["policy"] == policy
        assert len(trace.metadata["replicas"]) == 2
        completions = [r.completion_time for r in trace.records]
        assert completions == sorted(completions)

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_serve_is_deterministic_run_to_run(self, policy):
        requests = generate_requests(16, rate=32.0, pattern="bursty", seed=2)
        first = group("2x(none)", policy=policy, seed=2).serve(requests)
        second = group("2x(none)", policy=policy, seed=2).serve(requests)
        assert first.records == second.records
        assert (first.metadata["routing"]
                == second.metadata["routing"])

    def test_sharded_replicas_serve(self):
        requests = generate_requests(8, rate=8.0, input_len=128,
                                     output_len=64, seed=1)
        duo = group("2x(tp-2)", factory=flexgen_factory, policy="jsq")
        trace = duo.serve(requests)
        assert trace.num_requests == 8
        assert trace.metadata["total_gpus"] == 4
        for replica in trace.replica_traces:
            assert replica.metadata["parallelism"]["label"] == "tp-2"

    def test_cluster_kv_budget_aggregates_replicas(self):
        requests = generate_requests(8, rate=8.0, input_len=64,
                                     output_len=32, seed=0)
        duo = group("2x(none)")
        trace = duo.serve(requests)
        expected = sum(engine.kv_budget_tokens(requests)
                       for engine in duo.engines)
        assert trace.metadata["kv_budget_tokens"] == expected

    def test_cluster_kv_budget_independent_of_routing_split(self):
        # Two requests on four replicas: round-robin starves two replicas,
        # but the reported cluster budget is a hardware fact and must not
        # shrink with the split.
        requests = generate_requests(2, rate=8.0, input_len=64,
                                     output_len=32, seed=0)
        quad = group("4x(none)")
        trace = quad.serve(requests, policy="round-robin")
        assert trace.metadata["routing"]["dispatch_counts"] == [1, 1, 0, 0]
        expected = sum(engine.kv_budget_tokens(requests)
                       for engine in quad.engines)
        assert trace.metadata["kv_budget_tokens"] == expected

    def test_scheduler_stats_summed_across_replicas(self):
        requests = generate_requests(12, rate=16.0, input_len=128,
                                     output_len=64, seed=4)
        trace = group("2x(none)").serve(requests)
        stats = trace.metadata["scheduler"]
        assert stats["full_solves"] >= 1
        per_replica = [replica.metadata["scheduler"]["full_solves"]
                       for replica in trace.replica_traces]
        assert stats["full_solves"] == sum(per_replica)


class TestClusterSweep:
    @pytest.fixture(scope="class")
    def result(self):
        # A bursty ShareGPT-style trace on two single-GPU replicas: at 16
        # req/s both routers keep up; at 32 req/s round-robin's blind split
        # parks long conversations behind each other while JSQ's KV-token
        # queue view keeps the replicas drained.
        return run_experiment(
            "serving_rate_sweep", rates=(16.0, 32.0), num_requests=40,
            pattern="bursty", input_len=None, output_len=None, seed=0,
            cluster=("2x(tp-1)",), routing=("round-robin", "jsq"))

    def test_one_invocation_compares_equal_gpu_layouts(self):
        result = run_experiment(
            "serving_rate_sweep", rates=(8.0,), num_requests=8,
            input_len=64, output_len=32,
            cluster=("tp-4", "2x(tp-2)", "4x(tp-1)"), routing="jsq")
        combos = {(row["cluster"], row["num_replicas"], row["gpu_count"])
                  for row in result.rows}
        assert combos == {("tp-4", 1, 4), ("2x(tp-2)", 2, 4),
                          ("4x(none)", 4, 4)}
        assert len(result.rows) == 3 * 3  # layouts x systems
        assert result.notes["cluster"] == ("tp-4", "2x(tp-2)", "4x(none)")

    def test_unequal_gpu_layouts_rejected_by_default(self):
        with pytest.raises(ConfigurationError, match="unequal GPU counts"):
            run_experiment("serving_rate_sweep", rates=(8.0,),
                           num_requests=4, input_len=64, output_len=32,
                           cluster=("tp-2", "4x(tp-1)"))
        result = run_experiment("serving_rate_sweep", rates=(8.0,),
                                num_requests=4, input_len=64, output_len=32,
                                cluster=("tp-2", "4x(tp-1)"),
                                require_equal_gpus=False)
        assert {row["gpu_count"] for row in result.rows} == {2, 4}

    def test_cluster_and_parallelism_axes_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            run_experiment("serving_rate_sweep", rates=(8.0,),
                           num_requests=4, input_len=64, output_len=32,
                           cluster=("2x(tp-1)",), parallelism=("tp-2",))

    def test_routing_without_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="cluster axis"):
            run_experiment("serving_rate_sweep", rates=(8.0,),
                           num_requests=4, input_len=64, output_len=32,
                           routing="jsq")

    def test_jsq_sustains_strictly_higher_rate_than_round_robin(self, result):
        round_robin = max_sustained_rate(result, system="alisa",
                                         cluster="2x(tp-1)",
                                         routing="round-robin",
                                         max_queueing_delay_s=0.13)
        jsq = max_sustained_rate(result, system="alisa", cluster="2x(tp-1)",
                                 routing="jsq", max_queueing_delay_s=0.13)
        assert jsq > round_robin
        assert round_robin > 0.0

    def test_rows_carry_cluster_columns(self, result):
        for row in result.rows:
            assert row["cluster"] == "2x(none)"
            assert row["num_replicas"] == 2
            assert row["routing"] in ("round-robin", "jsq")
            assert sum(row["dispatch_counts"]) == 40
            assert row["tokens_imbalance"] >= 1.0
        assert result.notes["routing"] == ("round-robin", "jsq")
        assert result.notes["seed"] == 0

    def test_sweep_is_deterministic(self):
        kwargs = dict(rates=(16.0,), num_requests=12, pattern="bursty",
                      input_len=None, output_len=None, seed=3,
                      cluster=("2x(tp-1)",), routing="jsq")
        first = run_experiment("serving_rate_sweep", **kwargs)
        second = run_experiment("serving_rate_sweep", **kwargs)
        assert first.rows == second.rows
