"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.presets import H100_80GB_NODE, V100_16GB_NODE
from repro.model.builder import build_random_model
from repro.model.config import get_config
from repro.model.constructed import build_recall_model
from repro.systems.cost import LLMCostModel
from repro.workloads.descriptors import Workload
from repro.workloads.recall import QA_DATASETS, generate_recall_dataset


@pytest.fixture(scope="session")
def tiny_random_model():
    """A small randomly initialized executable model."""
    return build_random_model("opt-tiny", seed=0)


@pytest.fixture(scope="session")
def recall_model():
    """The constructed retrieval model (mid-size stand-in)."""
    return build_recall_model("opt-13b", seed=0)


@pytest.fixture(scope="session")
def small_recall_dataset():
    """A small QA recall dataset (2 sequences of the COPA stand-in)."""
    return generate_recall_dataset(QA_DATASETS["copa"].with_sequences(2), seed=0)


@pytest.fixture(scope="session")
def opt_cost_model():
    """Cost model for OPT-6.7B on a V100-16GB node."""
    return LLMCostModel(get_config("opt-6.7b"), V100_16GB_NODE)


@pytest.fixture(scope="session")
def opt30b_cost_model():
    """Cost model for OPT-30B on an H100-80GB node."""
    return LLMCostModel(get_config("opt-30b"), H100_80GB_NODE)


@pytest.fixture
def small_workload():
    """A short workload that keeps simulator tests fast."""
    return Workload(batch_size=8, input_len=64, output_len=32, name="test")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
