"""Bit-identity of the vectorized epoch pricing fast path.

The fast path (``InferenceSimulator.epoch_timings`` +
``ContinuousBatchingEngine._price_epoch_fast``) must be a pure
re-expression of the per-step loop: same plans, same prices, same traces,
bit for bit.  These tests pin that across systems, KV dtypes, shard
shapes, and random workloads (hypothesis), and pin the serving/offline
traces against the ``exact_stepping=True`` escape hatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AccelerateSystem,
    DeepSpeedZeroSystem,
    FlexGenSystem,
    GPUOnlySystem,
    VLLMSystem,
)
from repro.core.engine import AlisaSystem
from repro.core.scheduler import DynamicScheduler, SchedulerConfig
from repro.core.swa import SWAConfig
from repro.hardware.presets import V100_16GB_NODE, multi_gpu
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import ParallelismSpec
from repro.systems.memory import MemoryHierarchy
from repro.workloads.arrivals import generate_requests
from repro.workloads.descriptors import Workload

MODEL = "opt-6.7b"

SYSTEM_BUILDERS = {
    "gpu-only": lambda hw, **kw: GPUOnlySystem(MODEL, hw, **kw),
    "accelerate": lambda hw, **kw: AccelerateSystem(MODEL, hw, **kw),
    "deepspeed-zero": lambda hw, **kw: DeepSpeedZeroSystem(MODEL, hw, **kw),
    "flexgen": lambda hw, **kw: FlexGenSystem(MODEL, hw, **kw),
    "vllm": lambda hw, **kw: VLLMSystem(MODEL, hw, **kw),
    "alisa": lambda hw, **kw: AlisaSystem(MODEL, hw, kv_sparsity=0.8, **kw),
    "alisa-static": lambda hw, **kw: AlisaSystem(
        MODEL, hw, kv_sparsity=0.8, use_dynamic_scheduling=False, **kw),
}

SHARD_SHAPES = {
    "none": (1, None),
    "tp-2": (2, ParallelismSpec("tp", 2)),
    "pp-2": (2, ParallelismSpec("pp", 2)),
}


def build_system(system: str, shard: str = "none", **kwargs):
    gpu_count, parallelism = SHARD_SHAPES[shard]
    hardware = multi_gpu(V100_16GB_NODE, gpu_count)
    if parallelism is not None:
        kwargs["parallelism"] = parallelism
    return SYSTEM_BUILDERS[system](hardware, **kwargs)


def stepwise_reference(system, workload):
    """Price the epoch with the per-step loop (the legacy hot path)."""
    system.prepare(workload)
    system.plan_prefill(workload)
    memory = MemoryHierarchy.from_hardware(system.hardware)
    timings = [
        system.step_timing(system.plan_decode_step(step, workload), step,
                           workload, memory)
        for step in range(workload.output_len)
    ]
    return timings, memory.link


class TestEpochTimingsMatchStepLoop:
    """``epoch_timings`` is element-wise identical to the step loop."""

    @settings(max_examples=12, deadline=None)
    @given(
        system=st.sampled_from(sorted(SYSTEM_BUILDERS)),
        shard=st.sampled_from(sorted(SHARD_SHAPES)),
        kv_dtype=st.sampled_from(["fp16", "int8"]),
        batch_size=st.integers(min_value=1, max_value=8),
        input_len=st.integers(min_value=1, max_value=192),
        output_len=st.integers(min_value=1, max_value=96),
    )
    def test_property_random_workloads(self, system, shard, kv_dtype,
                                       batch_size, input_len, output_len):
        workload = Workload(batch_size, input_len, output_len, "prop")
        simulator = build_system(system, shard, kv_dtype=kv_dtype)
        reference, link = stepwise_reference(simulator, workload)
        simulator = build_system(system, shard, kv_dtype=kv_dtype)
        simulator.prepare(workload)
        simulator.plan_prefill(workload)
        epoch = simulator.epoch_timings(workload)

        assert epoch.num_steps == len(reference)
        assert epoch.phases == tuple(t.phase for t in reference)
        for field, values in (
                ("compute_time", epoch.compute_times),
                ("transfer_time", epoch.transfer_times),
                ("recompute_time", epoch.recompute_times),
                ("overhead_time", epoch.overhead_times),
                ("gpu_kv_bytes", epoch.gpu_kv_bytes),
                ("cpu_kv_bytes", epoch.cpu_kv_bytes),
                ("bytes_offloaded", epoch.bytes_offloaded),
                ("bytes_reloaded", epoch.bytes_reloaded),
                ("sequence_length", epoch.sequence_lengths),
        ):
            expected = np.array([getattr(t, field) for t in reference])
            assert np.array_equal(values, expected), (system, field)
        totals = np.array([t.total_time for t in reference])
        assert np.array_equal(epoch.total_times, totals)
        # The per-step PCIe traffic matches what the loop recorded.
        assert float(np.sum(epoch.h2d_bytes)) == pytest.approx(
            link.bytes_host_to_device)
        assert float(np.sum(epoch.d2h_bytes)) == pytest.approx(
            link.bytes_device_to_host)

    def test_scheduler_plan_epoch_matches_plan_step(self):
        # Direct pin of the vectorized Algorithm 2 (all three phases).
        config = SchedulerConfig(offload_ratio=0.5, recompute_ratio=0.4,
                                 phase2_step=20, phase3_step=60)
        swa = SWAConfig.from_sparsity(0.8)
        reference = DynamicScheduler(config, swa, gpu_budget_tokens=200,
                                     prompt_len=128)
        reference.plan_prefill()
        plans = [reference.plan_step(j) for j in range(150)]

        vectorized = DynamicScheduler(config, swa, gpu_budget_tokens=200,
                                      prompt_len=128)
        vectorized.plan_prefill()
        epoch = vectorized.plan_epoch(150)
        assert epoch.phases == tuple(p.phase for p in plans)
        for field, values in (
                ("tokens_gpu", epoch.tokens_gpu),
                ("tokens_cpu", epoch.tokens_cpu),
                ("tokens_deleted", epoch.tokens_deleted),
                ("load_tokens", epoch.load_tokens),
                ("offload_tokens", epoch.offload_tokens),
                ("recompute_tokens", epoch.recompute_tokens),
                ("kept_local", epoch.kept_local),
                ("kept_global", epoch.kept_global),
        ):
            expected = np.array([getattr(p, field) for p in plans])
            assert np.array_equal(values, expected), field

    def test_split_budget_batch_matches_scalar(self):
        swa = SWAConfig.from_sparsity(0.8)
        seq = np.arange(1, 2000)
        local, global_ = swa.split_budget_batch(seq)
        for j in (0, 1, 5, 123, 998, 1998):
            assert (local[j], global_[j]) == swa.split_budget(int(seq[j]))


class TestServingFastPathGoldenPins:
    """serve()/run() with the fast path are bit-identical to exact stepping."""

    REQUESTS = dict(rate=16.0, input_len=256, output_len=128, seed=5)

    @pytest.mark.parametrize("system,shard", [
        ("alisa", "none"), ("flexgen", "none"), ("vllm", "none"),
        ("alisa", "tp-2"), ("alisa", "pp-2"),
    ])
    def test_serve_traces_bit_identical(self, system, shard):
        requests = generate_requests(12, **self.REQUESTS)
        fast = ContinuousBatchingEngine(
            build_system(system, shard)).serve(requests)
        exact = ContinuousBatchingEngine(
            build_system(system, shard, exact_stepping=True)).serve(requests)
        assert fast.records == exact.records
        assert fast.summary() == exact.summary()
        for key in ("kv_budget_tokens", "peak_reserved_tokens", "num_epochs",
                    "num_decode_steps", "pcie_bytes", "comm_time_s",
                    "comm_time_share", "shards"):
            assert fast.metadata[key] == exact.metadata[key], key

    def test_serve_fast_path_is_default_and_memoizes(self):
        requests = generate_requests(12, **self.REQUESTS)
        engine = ContinuousBatchingEngine(build_system("alisa"))
        first = engine.serve(requests)
        assert first.metadata["epoch_cache"]["misses"] >= 1
        # Identical trace again: every epoch shape is already priced.
        second = engine.serve(requests)
        assert second.metadata["epoch_cache"]["misses"] == 0
        assert (second.metadata["epoch_cache"]["hits"]
                == second.metadata["num_epochs"])
        assert second.records == first.records
        # The exact path reports no epoch cache (it never consults one).
        exact = ContinuousBatchingEngine(
            build_system("alisa", exact_stepping=True)).serve(requests)
        assert "epoch_cache" not in exact.metadata

    @pytest.mark.parametrize("system", ["alisa", "alisa-static", "flexgen",
                                        "accelerate", "vllm"])
    def test_offline_run_bit_identical(self, system):
        workload = Workload(16, 256, 200, "offline")
        fast = build_system(system).run(workload)
        exact = build_system(system, exact_stepping=True).run(workload)
        assert fast.prefill_time == exact.prefill_time
        assert fast.steps == exact.steps
        assert fast.summary() == exact.summary()

    def test_cluster_serve_bit_identical_to_exact_stepping(self):
        # The replica-group fast path (per-replica epoch memos, shared
        # prefill plans) must reproduce the exact-stepping cluster trace
        # bit for bit, including with ALISA's history-dependent default
        # schedule policy.
        from repro.cluster import ReplicaGroup

        def factory(exact_stepping):
            def build(node, parallelism):
                return AlisaSystem(MODEL, node, kv_sparsity=0.8,
                                   parallelism=parallelism,
                                   exact_stepping=exact_stepping)
            return build

        requests = generate_requests(16, rate=32.0, pattern="bursty", seed=3)
        fast = ReplicaGroup.from_layout(factory(False), "2x(none)",
                                        V100_16GB_NODE, policy="jsq",
                                        seed=3).serve(requests)
        exact = ReplicaGroup.from_layout(factory(True), "2x(none)",
                                         V100_16GB_NODE, policy="jsq",
                                         seed=3).serve(requests)
        assert fast.records == exact.records
        assert fast.summary() == exact.summary()

    def test_prefill_plan_cache_is_engine_state(self):
        requests = generate_requests(8, **self.REQUESTS)
        engine = ContinuousBatchingEngine(build_system("alisa"))
        engine.serve(requests)
        cached_shapes = set(engine._prefill_plans)
        assert cached_shapes  # plans survived the serve() call
        engine.serve(requests)
        assert set(engine._prefill_plans) == cached_shapes

    def test_replica_group_shares_pricing_caches(self):
        from repro.cluster import ReplicaGroup
        from repro.core.schedule_cache import SchedulePolicy

        def factory(node, parallelism):
            return AlisaSystem(MODEL, node, kv_sparsity=0.8,
                               parallelism=parallelism)

        group = ReplicaGroup.from_layout(factory, "2x(none)",
                                         V100_16GB_NODE, policy="jsq")
        first, second = group.engines
        # Prefill plans are shape-pure for every system: always shared.
        assert first._prefill_plans is second._prefill_plans
        # ALISA's default warm-started schedules depend on replica-local
        # solver history, so its priced epochs are NOT shared...
        assert not first.simulator.pricing_is_shape_pure()
        assert first._epoch_cache is not second._epoch_cache
        # Schedule caches stay per replica (solver state is not shared).
        assert (first.simulator.schedule_cache
                is not second.simulator.schedule_cache)
        requests = generate_requests(12, **self.REQUESTS)
        trace = group.serve(requests)
        assert trace.num_requests == 12

        # ...but shape-pure pricing (exact schedules, stateless baselines)
        # shares epochs cluster-wide.
        def exact_factory(node, parallelism):
            return AlisaSystem(MODEL, node, kv_sparsity=0.8,
                               parallelism=parallelism,
                               schedule_policy=SchedulePolicy(exact=True))

        exact_group = ReplicaGroup.from_layout(exact_factory, "2x(none)",
                                               V100_16GB_NODE)
        assert exact_group.engines[0].simulator.pricing_is_shape_pure()
        assert (exact_group.engines[0]._epoch_cache
                is exact_group.engines[1]._epoch_cache)
        flexgen_group = ReplicaGroup.from_layout(
            lambda node, parallelism: FlexGenSystem(
                MODEL, node, parallelism=parallelism),
            "2x(none)", V100_16GB_NODE)
        assert (flexgen_group.engines[0]._epoch_cache
                is flexgen_group.engines[1]._epoch_cache)

        # Mixed pricing signatures must not share anything.
        tp_group = ReplicaGroup(
            [ContinuousBatchingEngine(build_system("alisa")),
             ContinuousBatchingEngine(build_system("alisa", "tp-2"))])
        a, b = tp_group.engines
        assert a._epoch_cache is not b._epoch_cache
        assert a._prefill_plans is not b._prefill_plans
