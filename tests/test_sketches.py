"""Tests for repro.serving.sketches: P² quantiles and streaming traces."""

import numpy as np
import pytest

from repro._common import ConfigurationError
from repro.serving.sketches import (
    DEFAULT_QUANTILES,
    P2Quantile,
    StreamingGoodput,
    StreamingMean,
    StreamingPercentiles,
    StreamingTrace,
)
from repro.serving.trace import RequestRecord, ServingTrace


def record(request_id, arrival, admission, first, completion,
           input_len=64, output_len=32):
    return RequestRecord(request_id=request_id, arrival_time=arrival,
                         admission_time=admission, first_token_time=first,
                         completion_time=completion, input_len=input_len,
                         output_len=output_len)


class TestP2Quantile:
    def test_validates_quantile_range(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                P2Quantile(bad)

    def test_empty_estimator_raises(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.5).value

    def test_small_samples_are_exact(self):
        # Below five observations the estimator holds the raw values, so it
        # must agree with numpy's linear-interpolation percentile exactly.
        values = [3.0, 1.0, 4.0, 1.5]
        estimator = P2Quantile(0.9)
        for index, value in enumerate(values):
            estimator.observe(value)
            expected = np.percentile(values[:index + 1], 90)
            assert estimator.value == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_below_five_samples_matches_numpy_exactly(self, q, n):
        # The marker phase has not started yet: the estimator is holding
        # the raw sorted values and must reproduce np.percentile bit for
        # bit, for every sample count below the five-marker threshold.
        rng = np.random.default_rng(41)
        values = list(rng.exponential(2.0, n))
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        assert estimator.count == n
        assert estimator.value == float(np.percentile(values, q * 100.0))

    @pytest.mark.parametrize("n", [3, 5, 50])
    def test_all_equal_samples_collapse_to_that_value(self, n):
        # Degenerate stream: every marker gap is zero, which exercises the
        # parabolic/linear fallback divisions — the estimate must stay the
        # constant without a ZeroDivisionError or drift.
        estimator = P2Quantile(0.9)
        for _ in range(n):
            estimator.observe(7.25)
        assert estimator.value == 7.25

    def test_nan_observation_is_rejected(self):
        # NaN makes every marker comparison False, silently corrupting the
        # sketch; observe() must refuse it and leave the state untouched.
        estimator = P2Quantile(0.5)
        for value in (1.0, 2.0, 3.0):
            estimator.observe(value)
        with pytest.raises(ConfigurationError):
            estimator.observe(float("nan"))
        assert estimator.count == 3
        assert estimator.value == 2.0
        # Also after the marker phase begins (>= 5 observations).
        for value in (4.0, 5.0, 6.0):
            estimator.observe(value)
        with pytest.raises(ConfigurationError):
            estimator.observe(float("nan"))
        assert estimator.count == 6

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("seed,sampler", [
        (0, lambda rng, n: rng.normal(10.0, 2.0, n)),
        (1, lambda rng, n: rng.exponential(3.0, n)),
        (2, lambda rng, n: rng.lognormal(0.0, 1.0, n)),
    ])
    def test_tracks_numpy_percentile_on_large_samples(self, q, seed, sampler):
        rng = np.random.default_rng(seed)
        values = sampler(rng, 5000)
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(float(value))
        exact = np.percentile(values, q * 100)
        spread = np.percentile(values, 99) - np.percentile(values, 1)
        # P² is an approximation; a few percent of the distribution's
        # spread is the accuracy class the original paper reports.
        assert abs(estimator.value - exact) < 0.05 * spread

    def test_monotone_input_is_tracked_closely(self):
        estimator = P2Quantile(0.5)
        for value in range(1, 1001):
            estimator.observe(float(value))
        assert estimator.value == pytest.approx(500.5, rel=0.02)


class TestStreamingPercentiles:
    def test_values_keys_are_floats(self):
        bank = StreamingPercentiles((50, 90, 99))
        assert bank.values() == {}
        for value in (1.0, 2.0, 3.0):
            bank.observe(value)
        assert set(bank.values()) == {50.0, 90.0, 99.0}

    def test_rejects_out_of_range_ranks(self):
        with pytest.raises(ConfigurationError):
            StreamingPercentiles((0,))
        with pytest.raises(ConfigurationError):
            StreamingPercentiles((100,))


class TestStreamingMeanAndGoodput:
    def test_mean_matches_running_average(self):
        mean = StreamingMean()
        assert mean.mean == 0.0
        values = [2.0, 4.0, 9.0]
        for value in values:
            mean.observe(value)
        assert mean.mean == pytest.approx(np.mean(values))
        assert mean.count == 3

    def test_goodput_counts_only_compliant_tokens(self):
        goodput = StreamingGoodput(ttft_slo_s=1.0, tpot_slo_s=0.1)
        # Compliant: ttft 0.5 <= 1.0, tpot (2.0-0.5)/(31) ~ 0.048 <= 0.1.
        goodput.observe(record(0, 0.0, 0.0, 0.5, 2.0, output_len=32))
        # TTFT violation: first token 5s after arrival.
        goodput.observe(record(1, 0.0, 0.0, 5.0, 6.0, output_len=32))
        assert goodput.goodput(10.0) == pytest.approx(32 / 10.0)
        assert goodput.goodput(0.0) == 0.0


class TestStreamingTrace:
    def serve_records(self):
        return [record(i, float(i), float(i), float(i) + 0.5,
                       float(i) + 2.0, output_len=16 + i)
                for i in range(50)]

    def full_and_streaming(self, **kwargs):
        full = ServingTrace(system="sys", model="m")
        stream = StreamingTrace(system="sys", model="m", **kwargs)
        for rec in self.serve_records():
            full.observe(rec)
            stream.observe(rec)
        return full, stream

    def test_exact_aggregates_match_retained_trace(self):
        full, stream = self.full_and_streaming()
        assert stream.num_requests == full.num_requests
        assert stream.generated_tokens == full.generated_tokens
        assert stream.duration == full.duration
        assert stream.throughput == full.throughput
        assert stream.mean_queueing_delay == full.mean_queueing_delay
        assert stream.goodput() == full.goodput()

    def test_summary_has_identical_keys(self):
        full, stream = self.full_and_streaming()
        assert set(stream.summary()) == set(full.summary())

    def test_percentiles_are_close_on_modest_traces(self):
        full, stream = self.full_and_streaming()
        for key in ("p50_ttft_s", "p99_latency_s", "p50_tpot_s"):
            assert stream.summary()[key] == \
                pytest.approx(full.summary()[key], rel=0.15, abs=1e-3)

    def test_quantiles_disabled_returns_empty(self):
        _, stream = self.full_and_streaming(quantiles=())
        assert stream.ttft_percentiles() == {}
        assert stream.tpot_percentiles() == {}
        assert stream.latency_percentiles() == {}
        summary = stream.summary()
        assert summary["p50_ttft_s"] == 0.0
        assert summary["num_requests"] == 50

    def test_unconfigured_percentile_rank_raises(self):
        _, stream = self.full_and_streaming()
        assert set(stream.ttft_percentiles()) == \
            {float(q) for q in DEFAULT_QUANTILES}
        with pytest.raises(ConfigurationError):
            stream.ttft_percentiles(qs=(75,))

    def test_goodput_slos_fixed_at_construction(self):
        _, stream = self.full_and_streaming(ttft_slo_s=1.0, tpot_slo_s=0.5)
        assert stream.goodput(ttft_slo_s=1.0, tpot_slo_s=0.5) >= 0.0
        assert stream.goodput() == stream.throughput
        with pytest.raises(ConfigurationError):
            stream.goodput(ttft_slo_s=2.0, tpot_slo_s=0.5)

    def test_goodput_without_slos_configured_raises(self):
        _, stream = self.full_and_streaming()
        with pytest.raises(ConfigurationError):
            stream.goodput(ttft_slo_s=1.0, tpot_slo_s=0.5)

    def test_empty_streaming_trace_is_safe(self):
        stream = StreamingTrace(system="sys", model="m")
        assert stream.num_requests == 0
        assert stream.duration == 0.0
        assert stream.throughput == 0.0
        assert stream.mean_queueing_delay == 0.0
        assert stream.goodput() == 0.0
        assert stream.ttft_percentiles() == {}
        summary = stream.summary()
        assert summary["num_requests"] == 0
        assert summary["p99_ttft_s"] == 0.0
