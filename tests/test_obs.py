"""Tests for the simulated-time observability layer (repro.obs).

Pins the tentpole contracts: serves with no observers stay bit-identical
to the golden journal pins, observed serves change nothing about the
trace, SpanTracer's Chrome export validates against the trace-event
schema, span boundaries reconcile exactly with RequestRecord timings, and
each violating request's SLO attribution components sum exactly to its
end-to-end latency (property-tested).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem, VLLMSystem
from repro.cluster import ReplicaGroup
from repro.experiments import run_experiment
from repro.obs import (
    MetricsTimeline,
    Observer,
    SpanTracer,
    blame_table,
    format_blame_table,
    request_components,
    validate_observers,
)
from repro.obs.attribution import COMPONENTS
from repro.obs.report import main as report_main
from repro.obs.report import render
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine
from repro.serving.events import ARRIVAL, COMPLETION, check_observers, drive
from repro.workloads.arrivals import Request, generate_requests
from repro.workloads.sessions import sessions

MODEL = "opt-6.7b"

CLASS_SLOS = {"interactive": (0.5, 0.05), "batch": (30.0, 2.0)}


def engine(system=FlexGenSystem, *, max_batch_size=None, preemption=None,
           chunk=None, **kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(
        system(MODEL, V100_16GB_NODE, **kwargs),
        max_batch_size=max_batch_size, preemption=preemption,
        prefill_chunk_tokens=chunk)


def requests(n=16, rate=4.0, seed=3, **kwargs):
    return generate_requests(n, rate, pattern="bursty", seed=seed,
                             max_len=512, **kwargs)


def contended_mix():
    """Long batch prompts plus interactive preemptors (see
    tests/test_chunked_prefill.py)."""
    reqs = [Request(request_id=i, arrival_time=0.0, input_len=480,
                    output_len=48, slo_class="batch") for i in range(4)]
    for j, arrival in enumerate((0.03, 0.12, 0.25, 0.40)):
        reqs.append(Request(request_id=4 + j, arrival_time=arrival,
                            input_len=48, output_len=24,
                            slo_class="interactive"))
    return reqs


def group(**engine_kwargs) -> ReplicaGroup:
    def build(node, parallelism):
        return FlexGenSystem(MODEL, node, parallelism=parallelism)
    return ReplicaGroup.from_layout(build, "2x(none)", V100_16GB_NODE,
                                    policy="least-loaded", seed=3,
                                    **engine_kwargs)


# --------------------------------------------------------------------- #
# Bit-identity: observation never perturbs the simulation
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_no_observers_reproduces_golden_pin(self):
        # The PR 8 golden numbers (tests/test_serving_events.py) with the
        # observer plumbing merged but no observers registered.
        trace = engine().serve(requests())
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.metadata["num_epochs"] == 24
        assert trace.metadata["num_decode_steps"] == 605

    def test_observed_serve_reproduces_golden_pin(self):
        trace = engine().serve(requests(),
                               observers=[SpanTracer(), MetricsTimeline()])
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.metadata["num_epochs"] == 24
        assert trace.metadata["num_decode_steps"] == 605

    @pytest.mark.parametrize("system", [FlexGenSystem, VLLMSystem])
    def test_records_identical_with_and_without_observers(self, system):
        base = engine(system).serve(requests())
        observed = engine(system).serve(
            requests(), observers=[SpanTracer(), MetricsTimeline()],
            class_slos=CLASS_SLOS)
        assert observed.records == base.records
        assert observed.summary() == base.summary()

    @pytest.mark.parametrize("mode", ["retain", "recompute"])
    def test_preempting_chunked_serve_identical(self, mode):
        mix = contended_mix()
        base = engine(chunk=32, max_batch_size=4, preemption=mode).serve(mix)
        observed = engine(chunk=32, max_batch_size=4,
                          preemption=mode).serve(
            mix, observers=[SpanTracer()], class_slos=CLASS_SLOS)
        assert base.num_preemptions > 0
        assert observed.records == base.records

    def test_cluster_serve_identical_and_journal_equal(self):
        base_journal, observed_journal = [], []
        base = group().serve(requests(n=24), event_journal=base_journal)
        observed = group().serve(requests(n=24),
                                 event_journal=observed_journal,
                                 observers=[SpanTracer(),
                                            MetricsTimeline()],
                                 class_slos=CLASS_SLOS)
        assert observed_journal == base_journal
        assert sorted(r.request_id for r in observed.records) == \
            sorted(r.request_id for r in base.records)
        assert observed.summary() == base.summary()

    def test_on_event_stream_equals_event_journal(self):
        class Recorder(Observer):
            def __init__(self):
                self.events = []

            def on_event(self, time, kind, replica):
                self.events.append((time, kind, replica))

        journal = []
        recorder = Recorder()
        group().serve(requests(n=24), event_journal=journal,
                      observers=[recorder])
        assert recorder.events == journal
        kinds = {kind for _, kind, _ in recorder.events}
        assert ARRIVAL in kinds and COMPLETION in kinds


# --------------------------------------------------------------------- #
# Observer argument validation
# --------------------------------------------------------------------- #
class TestObserverValidation:
    def test_bare_observer_rejected(self):
        with pytest.raises(ConfigurationError):
            engine().serve(requests(n=4), observers=SpanTracer())

    def test_non_observer_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            engine().serve(requests(n=4), observers=[object()])

    def test_exact_stepping_rejected(self):
        with pytest.raises(ConfigurationError):
            engine(exact_stepping=True).serve(requests(n=4),
                                              observers=[SpanTracer()])

    def test_cluster_exact_stepping_rejected(self):
        def build(node, parallelism):
            return FlexGenSystem(MODEL, node, parallelism=parallelism,
                                 exact_stepping=True)
        bad = ReplicaGroup.from_layout(build, "2x(none)", V100_16GB_NODE)
        with pytest.raises(ConfigurationError):
            bad.serve(requests(n=4), observers=[SpanTracer()])

    def test_check_observers_canonicalises(self):
        assert check_observers(None) == ()
        assert check_observers([]) == ()
        tracer = SpanTracer()
        assert check_observers([tracer]) == (tracer,)
        assert validate_observers(None) == []
        assert validate_observers([tracer]) == [tracer]


# --------------------------------------------------------------------- #
# Span / record reconciliation
# --------------------------------------------------------------------- #
class TestSpanReconciliation:
    def test_queue_span_is_arrival_to_admission(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(), observers=[tracer])
        for record in trace.records:
            spans = tracer.spans_for(record.request_id)
            category, start, end = spans[0]
            assert category == "queue"
            assert start == record.arrival_time
            assert end == record.admission_time

    def test_last_span_ends_at_completion(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(), observers=[tracer])
        for record in trace.records:
            spans = tracer.spans_for(record.request_id)
            assert spans[-1][2] == record.completion_time

    def test_first_decode_epoch_carries_first_token_time(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(), observers=[tracer])
        for record in trace.records:
            state = tracer._states[record.request_id]
            assert state.first_token == record.first_token_time

    def test_spans_are_chronological_and_within_lifetime(self):
        tracer = SpanTracer()
        trace = engine(chunk=48, max_batch_size=4,
                       preemption="retain").serve(
            contended_mix(), observers=[tracer])
        for record in trace.records:
            cursor = record.arrival_time
            for category, start, end in tracer.spans_for(record.request_id):
                assert category in ("queue", "prefill", "decode",
                                    "preempted")
                assert start >= cursor or start == pytest.approx(cursor)
                assert end >= start
                cursor = end
            assert cursor == record.completion_time

    def test_unknown_request_raises(self):
        tracer = SpanTracer()
        engine().serve(requests(n=4), observers=[tracer])
        with pytest.raises(ConfigurationError):
            tracer.spans_for(99999)


# --------------------------------------------------------------------- #
# SLO-violation attribution
# --------------------------------------------------------------------- #
class TestAttribution:
    def test_components_sum_exactly_to_e2e(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(), observers=[tracer],
                               class_slos=CLASS_SLOS)
        for record in trace.records:
            components = tracer.components[record.request_id]
            total = (components["queueing_s"] + components["prefill_s"]
                     + components["preemption_s"] + components["decode_s"])
            # decode is the remainder, so the sum reconstructs the e2e
            # latency up to float re-association (a few ulps).
            assert components["total_s"] == record.e2e_latency
            assert total == pytest.approx(record.e2e_latency, rel=1e-12)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(4, 16),
           rate=st.sampled_from([1.0, 4.0, 16.0]),
           mode=st.sampled_from([None, "retain", "recompute"]))
    def test_property_components_sum_and_are_nonnegative(self, seed, n,
                                                         rate, mode):
        tracer = SpanTracer()
        trace = engine(max_batch_size=4, preemption=mode).serve(
            generate_requests(n, rate, pattern="bursty", seed=seed,
                              max_len=256),
            observers=[tracer], class_slos=CLASS_SLOS)
        assert trace.num_requests == n
        for record in trace.records:
            components = tracer.components[record.request_id]
            assert sum(components[key] for key in COMPONENTS) == \
                pytest.approx(record.e2e_latency, rel=1e-12)
            for key in COMPONENTS:
                assert components[key] >= -1e-12, (key, components)

    def test_preempted_requests_blame_preemption(self):
        tracer = SpanTracer()
        trace = engine(chunk=32, max_batch_size=4,
                       preemption="retain").serve(
            contended_mix(), observers=[tracer], class_slos=CLASS_SLOS)
        preempted = [r for r in trace.records if r.preemptions > 0]
        assert preempted
        assert any(tracer.components[r.request_id]["preemption_s"] > 0
                   for r in preempted)

    def test_blame_table_attached_to_trace_metadata(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(), observers=[tracer],
                               class_slos=CLASS_SLOS)
        table = trace.metadata["slo_attribution"]
        assert table is tracer.attribution
        assert table["violations"] == sum(
            row["violations"] for row in table["classes"].values())
        for row in table["classes"].values():
            if row["violations"]:
                assert row["dominant"] in COMPONENTS
                assert row["total_s"] == pytest.approx(
                    sum(row[key] for key in COMPONENTS))
            else:
                assert row["dominant"] is None

    def test_no_class_slos_means_no_metadata_entry(self):
        tracer = SpanTracer()
        trace = engine().serve(requests(n=8), observers=[tracer])
        assert "slo_attribution" not in trace.metadata
        # Components are still computed for every completed request.
        assert len(tracer.components) == 8

    def test_blame_table_only_counts_violators(self):
        # A generous SLO admits everything: zero violations, zero blame.
        tracer = SpanTracer()
        trace = engine().serve(
            requests(n=8), observers=[tracer],
            class_slos={"interactive": (1e6, 1e6), "batch": (1e6, 1e6)})
        table = trace.metadata["slo_attribution"]
        assert table["violations"] == 0
        for row in table["classes"].values():
            assert row[COMPONENTS[0]] == 0.0

    def test_format_blame_table_renders_all_classes(self):
        entries = []
        for record_id in range(3):
            record = engine().serve(requests(n=4)).records[record_id]
            entries.append((record, request_components(record, [])))
        table = blame_table(entries, CLASS_SLOS)
        text = format_blame_table(table)
        assert "SLO violations" in text
        for name in table["classes"]:
            assert name in text


# --------------------------------------------------------------------- #
# Chrome trace export
# --------------------------------------------------------------------- #
class TestChromeTrace:
    def serve_traced(self, **kwargs):
        tracer = SpanTracer()
        trace = engine(**kwargs).serve(requests(), observers=[tracer],
                                       class_slos=CLASS_SLOS)
        return tracer, trace

    def test_schema_valid(self):
        tracer, _ = self.serve_traced()
        payload = tracer.to_chrome_trace()
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        for event in payload["traceEvents"]:
            assert event["ph"] in ("M", "X", "b", "e")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]
            else:
                assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] in ("b", "e"):
                assert isinstance(event["id"], str)
                assert event["cat"] == "request"

    def test_async_begin_end_pairs_balance(self):
        tracer, _ = self.serve_traced()
        open_spans = {}
        for event in tracer.to_chrome_trace()["traceEvents"]:
            if event["ph"] not in ("b", "e"):
                continue
            key = (event["id"], event["name"])
            if event["ph"] == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                open_spans[key] = open_spans.get(key, 0) - 1
        assert all(count == 0 for count in open_spans.values())

    def test_span_times_scale_to_microseconds(self):
        tracer, trace = self.serve_traced()
        record = trace.records[0]
        begins = [event for event in tracer.to_chrome_trace()["traceEvents"]
                  if event["ph"] == "b"
                  and event["name"] == f"request-{record.request_id}"]
        assert len(begins) == 1
        assert begins[0]["ts"] == record.arrival_time * 1e6

    def test_export_roundtrips_and_is_json(self, tmp_path):
        tracer, trace = self.serve_traced()
        path = tracer.export(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["otherData"]["slo_attribution"] == \
            json.loads(json.dumps(trace.metadata["slo_attribution"]))
        requests_payload = payload["otherData"]["requests"]
        assert len(requests_payload) == trace.num_requests
        for entry in requests_payload.values():
            assert sum(entry["components"][key] for key in COMPONENTS) == \
                pytest.approx(entry["e2e_s"], abs=1e-12)

    def test_one_process_per_replica_in_cluster_serve(self):
        tracer = SpanTracer()
        group().serve(requests(n=24), observers=[tracer],
                      class_slos=CLASS_SLOS)
        payload = tracer.to_chrome_trace()
        process_names = {event["pid"]: event["args"]["name"]
                         for event in payload["traceEvents"]
                         if event["ph"] == "M"
                         and event["name"] == "process_name"}
        assert process_names == {0: "replica-0", 1: "replica-1"}


# --------------------------------------------------------------------- #
# Metrics timeline
# --------------------------------------------------------------------- #
class TestMetricsTimeline:
    def test_rows_are_tidy_and_cover_makespan(self):
        timeline = MetricsTimeline(interval_s=1.0)
        trace = engine().serve(requests(), observers=[timeline])
        rows = timeline.rows()
        assert rows
        assert set(rows[0]) == {"time_s", "replica", "metric", "value"}
        times = sorted({row["time_s"] for row in rows})
        assert times[0] == 1.0
        assert times[-1] == pytest.approx(trace.duration)
        metrics = {row["metric"] for row in rows}
        assert {"batch_size", "queue_depth", "kv_occupancy",
                "prefix_hit_rate", "preemption_rate"} <= metrics

    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            MetricsTimeline(interval_s=0.0)

    def test_kv_occupancy_bounded_and_batch_nonnegative(self):
        timeline = MetricsTimeline(interval_s=0.5)
        engine().serve(requests(), observers=[timeline])
        for row in timeline.rows():
            if row["metric"].startswith("kv_occupancy"):
                assert 0.0 <= row["value"] <= 1.0
            if row["metric"] == "batch_size":
                assert row["value"] >= 0.0

    def test_queue_depth_by_class_with_priority_engine(self):
        timeline = MetricsTimeline(interval_s=0.25)
        engine(max_batch_size=4, preemption="retain").serve(
            contended_mix(), observers=[timeline])
        metrics = {row["metric"] for row in timeline.rows()}
        assert "queue_depth:interactive" in metrics
        assert "queue_depth:batch" in metrics

    def test_csv_and_json_roundtrip(self, tmp_path):
        timeline = MetricsTimeline(interval_s=1.0)
        engine().serve(requests(n=8), observers=[timeline])
        csv_path = timeline.to_csv(tmp_path / "timeline.csv")
        json_path = timeline.to_json(tmp_path / "timeline.json")
        header = csv_path.read_text().splitlines()[0]
        assert header == "time_s,replica,metric,value"
        rows = json.loads(json_path.read_text())
        assert rows == timeline.rows()

    def test_cluster_timeline_samples_every_replica(self):
        timeline = MetricsTimeline(interval_s=1.0)
        group().serve(requests(n=24), observers=[timeline])
        assert {row["replica"] for row in timeline.rows()} == {0, 1}


# --------------------------------------------------------------------- #
# Report CLI
# --------------------------------------------------------------------- #
class TestReportCli:
    def test_cli_renders_exported_trace(self, tmp_path, capsys):
        tracer = SpanTracer()
        engine().serve(requests(), observers=[tracer],
                       class_slos=CLASS_SLOS)
        path = tracer.export(tmp_path / "trace.json")
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO violations" in out
        assert "total seconds by component" in out

    def test_cli_rejects_missing_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_cli_rejects_non_export(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert report_main([str(path)]) == 1
        assert "not an observability export" in capsys.readouterr().err

    def test_render_without_slos_reports_components(self):
        tracer = SpanTracer()
        engine().serve(requests(n=4), observers=[tracer])
        text = render(tracer.to_chrome_trace())
        assert "without" in text and "components" in text


# --------------------------------------------------------------------- #
# Satellites: cluster metadata, wall clock, sweep columns
# --------------------------------------------------------------------- #
class TestClusterMetadata:
    def test_epoch_cache_aggregate_sums_replica_deltas(self):
        trace = group().serve(requests(n=24))
        aggregate = trace.metadata["epoch_cache"]
        replica_totals = {"hits": 0, "misses": 0}
        for replica_trace in trace.replica_traces:
            cache = replica_trace.metadata.get("epoch_cache")
            if cache:
                replica_totals["hits"] += cache["hits"]
                replica_totals["misses"] += cache["misses"]
        assert aggregate == replica_totals
        assert aggregate["misses"] > 0

    def test_wall_clock_metadata_on_every_serve_surface(self):
        single = engine().serve(requests(n=8))
        cluster = group().serve(requests(n=8))
        streaming = engine().serve(requests(n=8), record_mode="streaming")
        for trace in (single, cluster, streaming):
            assert trace.metadata["wall_clock_s"] > 0.0

    def test_cluster_attribution_spans_replicas(self):
        tracer = SpanTracer()
        trace = group().serve(requests(n=24), observers=[tracer],
                              class_slos=CLASS_SLOS)
        table = trace.metadata["slo_attribution"]
        assert sum(row["requests"] for row in table["classes"].values()) \
            == trace.num_requests
        replicas = {tracer._states[r.request_id].replica
                    for r in trace.records}
        assert replicas == {0, 1}

    def test_closed_loop_cluster_with_observers(self):
        spec = sessions(8, 2.0, seed=3)
        tracer = SpanTracer()
        trace = group().serve(spec.closed_loop(), observers=[tracer],
                              class_slos=CLASS_SLOS)
        base = group().serve(spec.closed_loop())
        assert sorted(r.request_id for r in trace.records) == \
            sorted(r.request_id for r in base.records)
        for record in trace.records:
            components = tracer.components[record.request_id]
            assert sum(components[key] for key in COMPONENTS) == \
                pytest.approx(record.e2e_latency, rel=1e-12)


class TestSweepObservers:
    def test_observers_factory_adds_attribution_columns(self):
        result = run_experiment(
            "serving_rate_sweep", rates=(4.0,), num_requests=12,
            slo_classes={"interactive": (0.5, 0.05)},
            observers=lambda: [SpanTracer()])
        for row in result.rows:
            assert "slo_violations" in row
            for key in COMPONENTS:
                assert f"blame_{key}" in row
        assert any(row["slo_violations"] > 0 for row in result.rows)

    def test_rows_rectangular_without_observers(self):
        result = run_experiment("serving_rate_sweep", rates=(4.0,),
                                num_requests=8)
        for row in result.rows:
            assert row["slo_violations"] == 0
            assert row["blame_queueing_s"] == 0.0

    def test_non_callable_observers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("serving_rate_sweep", rates=(4.0,),
                           num_requests=8, observers=[SpanTracer()])


# --------------------------------------------------------------------- #
# Prefix-cache observation
# --------------------------------------------------------------------- #
class TestPrefixObservation:
    def test_session_serve_reports_hits_and_misses(self):
        spec = sessions(8, 2.0, seed=3)

        class PrefixCounter(Observer):
            def __init__(self):
                self.counts = {"hit": 0, "miss": 0, "evict": 0}

            def on_prefix(self, replica, time, event, session_id, tokens):
                self.counts[event] += 1

        counter = PrefixCounter()
        trace = engine().serve(spec.requests(), observers=[counter])
        prefix_bearing = sum(1 for r in trace.records if r.prefix_len > 0)
        assert counter.counts["hit"] + counter.counts["miss"] == \
            prefix_bearing
        assert counter.counts["hit"] > 0
