"""Tests for the ALISA core algorithm: SWA, compression, attention policies."""

import numpy as np
import pytest

from repro._common import ConfigurationError, softmax
from repro.attention.base import SelectionBudget, ensure_last_token
from repro.attention.variants import (
    BeladyOraclePolicy,
    DenseAttentionPolicy,
    H2OAttentionPolicy,
    LocalAttentionPolicy,
    StridedAttentionPolicy,
    SWAAttentionPolicy,
    make_policy,
)
from repro.core.compression import (
    QuantizationSpec,
    dequantize,
    quantization_error,
    quantize,
    roundtrip_kv,
)
from repro.core.swa import (
    SWAConfig,
    local_attention_window,
    select_sparse_tokens,
    sparse_window_attention,
)


class TestSWAConfig:
    def test_sparsity_complement(self):
        assert SWAConfig.from_sparsity(0.8).caching_ratio == pytest.approx(0.2)
        assert SWAConfig(0.3).kv_sparsity == pytest.approx(0.7)

    @pytest.mark.parametrize("seq_len", [4, 10, 100, 500])
    def test_split_budget_within_bounds(self, seq_len):
        config = SWAConfig.from_sparsity(0.8)
        local, global_ = config.split_budget(seq_len)
        assert local >= 1
        assert global_ >= 0
        assert local + global_ <= seq_len

    def test_split_budget_even_split(self):
        local, global_ = SWAConfig(caching_ratio=0.5).split_budget(100)
        assert local == global_ == 25

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            SWAConfig(caching_ratio=1.5)

    def test_local_attention_window_equals_local_budget(self):
        config = SWAConfig.from_sparsity(0.6)
        assert local_attention_window(200, config) == config.split_budget(200)[0]


class TestSWASelection:
    def test_local_indices_are_most_recent(self):
        config = SWAConfig(caching_ratio=0.2)
        selection = select_sparse_tokens(np.zeros(100), 100, config)
        assert selection.local_indices.tolist() == list(range(90, 100))

    def test_global_indices_pick_highest_local_sum(self):
        config = SWAConfig(caching_ratio=0.2)
        sums = np.zeros(100)
        sums[[3, 7, 42]] = [5.0, 4.0, 3.0]
        selection = select_sparse_tokens(sums, 100, config)
        for idx in (3, 7, 42):
            assert idx in selection.global_indices

    def test_groups_are_disjoint(self):
        config = SWAConfig(caching_ratio=0.5)
        sums = np.arange(40, dtype=float)
        selection = select_sparse_tokens(sums, 40, config)
        assert not set(selection.local_indices) & set(selection.global_indices)

    def test_total_respects_caching_ratio(self):
        config = SWAConfig(caching_ratio=0.2)
        selection = select_sparse_tokens(np.random.default_rng(0).random(200),
                                         200, config)
        assert selection.num_kept == pytest.approx(40, abs=2)

    def test_short_sequence_keeps_everything(self):
        selection = select_sparse_tokens(np.zeros(2), 2, SWAConfig(0.5))
        assert selection.num_kept == 2

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigurationError):
            select_sparse_tokens(np.zeros(1), 0, SWAConfig(0.5))


class TestSparseWindowAttention:
    def test_full_ratio_matches_dense_attention(self, rng):
        keys = rng.normal(size=(12, 8))
        values = rng.normal(size=(12, 8))
        query = rng.normal(size=8)
        prev = rng.random(size=(4, 12))
        scores, weights, selection = sparse_window_attention(
            prev, query, keys, values, SWAConfig(caching_ratio=1.0))
        dense_weights = softmax(query @ keys.T / np.sqrt(8))
        assert selection.num_kept == 12
        assert np.allclose(scores, dense_weights @ values)

    def test_weights_normalized_over_kept_tokens(self, rng):
        keys = rng.normal(size=(30, 4))
        values = rng.normal(size=(30, 4))
        query = rng.normal(size=4)
        scores, weights, selection = sparse_window_attention(
            np.zeros((0, 30)), query, keys, values, SWAConfig(0.2))
        assert weights.shape[-1] == selection.num_kept
        assert np.isclose(weights.sum(), 1.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sparse_window_attention(np.zeros((1, 3)), rng.normal(size=4),
                                    rng.normal(size=(3, 4)),
                                    rng.normal(size=(4, 3)), SWAConfig(0.5))


class TestSelectionBudget:
    def test_num_kept_at_least_one(self):
        assert SelectionBudget(0.01).num_kept(5) == 1

    def test_num_kept_capped_at_seq_len(self):
        assert SelectionBudget(1.0).num_kept(7) == 7

    def test_from_sparsity(self):
        assert SelectionBudget.from_sparsity(0.8).keep_ratio == pytest.approx(0.2)

    def test_ensure_last_token(self):
        out = ensure_last_token(np.array([0, 2]), 10)
        assert 9 in out
        assert sorted(out) == out.tolist()


class TestPolicies:
    def _observe_uniform(self, policy, layer, seq_len):
        positions = np.arange(seq_len)
        weights = np.full((1, 2, 1, seq_len), 1.0 / seq_len)
        policy.observe(layer, positions, weights)

    def test_dense_returns_none(self):
        policy = DenseAttentionPolicy()
        policy.reset(2)
        assert policy.select(0, 50) is None

    def test_dense_rejects_unknown_layer(self):
        policy = DenseAttentionPolicy()
        policy.reset(2)
        with pytest.raises(ConfigurationError):
            policy.select(5, 10)

    def test_policy_requires_reset(self):
        policy = LocalAttentionPolicy(SelectionBudget(0.5))
        with pytest.raises(ConfigurationError):
            policy.select(0, 10)

    def test_local_keeps_most_recent(self):
        policy = LocalAttentionPolicy(SelectionBudget(0.25))
        policy.reset(1)
        assert policy.select(0, 40).tolist() == list(range(30, 40))

    def test_strided_budget_and_last_token(self):
        policy = StridedAttentionPolicy(SelectionBudget(0.25))
        policy.reset(1)
        selected = policy.select(0, 40)
        assert len(selected) <= 11
        assert 39 in selected

    @pytest.mark.parametrize("name", ["dense", "local", "strided", "h2o", "swa"])
    def test_factory_builds_each_policy(self, name):
        policy = make_policy(name, kv_sparsity=0.5)
        policy.reset(3)
        assert policy.name == name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("belady-magic")

    def test_h2o_keeps_heavy_hitters(self):
        policy = H2OAttentionPolicy(SelectionBudget(0.2))
        policy.reset(1)
        seq_len = 50
        weights = np.zeros((1, 1, 1, seq_len))
        weights[..., 5] = 0.9  # heavy hitter at position 5
        weights[..., -1] = 0.1
        for _ in range(3):
            policy.observe(0, np.arange(seq_len), weights)
        assert 5 in policy.select(0, seq_len)

    def test_swa_keeps_recently_attended_global_token(self):
        policy = SWAAttentionPolicy(SWAConfig(caching_ratio=0.2))
        policy.reset(1)
        seq_len = 100
        weights = np.zeros((1, 1, 1, seq_len))
        weights[..., 7] = 0.8
        policy.observe(0, np.arange(seq_len), weights)
        assert 7 in policy.select(0, seq_len)

    def test_swa_selection_size_tracks_ratio(self):
        policy = SWAAttentionPolicy(SWAConfig(caching_ratio=0.2))
        policy.reset(1)
        self._observe_uniform(policy, 0, 200)
        assert len(policy.select(0, 200)) <= 0.25 * 200

    def test_observing_policy_validates_shapes(self):
        policy = H2OAttentionPolicy(SelectionBudget(0.5))
        policy.reset(1)
        with pytest.raises(ConfigurationError):
            policy.observe(0, np.arange(3), np.zeros((1, 1, 3)))

    def test_belady_uses_future_attention(self):
        future = {0: np.zeros((20, 20))}
        future[0][15:, 3] = 1.0  # position 3 heavily used in the future
        policy = BeladyOraclePolicy(SelectionBudget(0.2), future)
        policy.reset(1)
        assert 3 in policy.select(0, 10)


class TestCompression:
    def test_roundtrip_error_small_for_int8(self, rng):
        x = rng.normal(size=(32, 16))
        assert quantization_error(x, QuantizationSpec(8)) < 0.01

    def test_int4_worse_than_int8(self, rng):
        x = rng.normal(size=(64, 8))
        assert (quantization_error(x, QuantizationSpec(4))
                > quantization_error(x, QuantizationSpec(8)))

    def test_codes_within_level_range(self, rng):
        q = quantize(rng.normal(size=(10, 4)), QuantizationSpec(8))
        assert q.codes.max() <= 255 and q.codes.min() >= 0

    def test_compression_ratio(self):
        assert QuantizationSpec(8).compression_ratio(2.0) == 2.0
        assert QuantizationSpec(4).compression_ratio(2.0) == 4.0

    def test_dequantize_restores_shape(self, rng):
        x = rng.normal(size=(3, 5, 7))
        assert dequantize(quantize(x)).shape == x.shape

    def test_channel_axis_handling(self, rng):
        # Columns span four orders of magnitude: per-column (axis=-1) scales
        # must beat per-row (axis=0) scales, which mix the magnitudes.
        x = rng.normal(size=(6, 4)) * np.array([1.0, 10.0, 100.0, 1000.0])
        err_per_column = quantization_error(x, QuantizationSpec(8, channel_axis=-1))
        err_per_row = quantization_error(x, QuantizationSpec(8, channel_axis=0))
        assert err_per_column < err_per_row

    def test_constant_channel_error_within_one_step(self):
        x = np.full((4, 3), 2.5)
        assert np.allclose(dequantize(quantize(x)), x, atol=1.0 / 255)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizationSpec(num_bits=3)

    def test_roundtrip_kv_returns_pair(self, rng):
        keys = rng.normal(size=(1, 4, 2, 8))
        values = rng.normal(size=(1, 4, 2, 8))
        dk, dv = roundtrip_kv(keys, values)
        assert dk.shape == keys.shape and dv.shape == values.shape
        assert np.allclose(dk, keys, atol=0.05)
