"""Tests for the event-driven serving core (repro.serving.events).

Covers the tentpole contracts: the event heap reproduces the retained
clock-stepped loop bit-identically in ``record_mode="full"``, streaming
traces agree on every exact aggregate, request streams are byte-identical
to materialized traces, and the merged cluster event stream matches
serving the routed shares directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.baselines import FlexGenSystem, VLLMSystem
from repro.cluster import ReplicaGroup, StreamingClusterTrace
from repro.core.engine import AlisaSystem
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine, ServingTrace, StreamingTrace
from repro.serving.events import (
    ADMISSION,
    ARRIVAL,
    COMPLETION,
    EPOCH_BOUNDARY,
    drive,
)
from repro.workloads.arrivals import RequestStream, generate_requests

MODEL = "opt-6.7b"

#: Exact aggregates both record modes must agree on (same float op order).
EXACT_KEYS = ("num_requests", "generated_tokens", "duration_s",
              "throughput_tokens_per_s", "mean_queueing_delay_s")


def engine(system=FlexGenSystem, **kwargs) -> ContinuousBatchingEngine:
    return ContinuousBatchingEngine(system(MODEL, V100_16GB_NODE, **kwargs))


def requests(n=24, rate=4.0, seed=3, **kwargs):
    return generate_requests(n, rate, pattern="bursty", seed=seed,
                             max_len=512, **kwargs)


class TestEventLoopBitIdentity:
    @pytest.mark.parametrize("system", [FlexGenSystem, VLLMSystem])
    def test_event_serve_matches_clock_loop_exactly(self, system):
        trace_event = engine(system).serve(requests())
        trace_clock = engine(system, exact_stepping=True).serve(requests())
        assert trace_event.records == trace_clock.records
        assert trace_event.summary() == trace_clock.summary()
        for key in ("kv_budget_tokens", "peak_reserved_tokens", "num_epochs",
                    "num_decode_steps", "pcie_bytes", "comm_time_s",
                    "comm_time_share", "shards"):
            assert trace_event.metadata[key] == trace_clock.metadata[key], key

    def test_alisa_event_serve_matches_clock_loop(self):
        def build(model, node, **kwargs):
            return AlisaSystem(model, node, kv_sparsity=0.8, **kwargs)
        trace_event = engine(build).serve(requests(n=12))
        trace_clock = engine(build, exact_stepping=True).serve(requests(n=12))
        assert trace_event.records == trace_clock.records

    def test_full_mode_golden_pin(self):
        # Frozen observable outputs of one event-driven serve: any change
        # to admission order, epoch cuts, or pricing shows up here first.
        trace = engine().serve(requests(n=16))
        assert trace.num_requests == 16
        assert trace.generated_tokens == 2937
        assert trace.duration == pytest.approx(12.026624695478137, abs=1e-12)
        assert trace.metadata["kv_budget_tokens"] == 4946
        assert trace.metadata["peak_reserved_tokens"] == 4896
        assert trace.metadata["num_epochs"] == 24
        assert trace.metadata["num_decode_steps"] == 605
        first = trace.records[0]
        assert first.request_id == 0
        assert first.completion_time == \
            pytest.approx(1.0687576079965968, abs=1e-12)
        last = trace.records[-1]
        assert last.request_id == 8
        assert last.completion_time == \
            pytest.approx(12.026624695478137, abs=1e-12)


class TestSeedDeterminism:
    @pytest.mark.parametrize("record_mode", ["full", "streaming"])
    def test_identical_runs_are_identical(self, record_mode):
        summaries, journals = [], []
        for _ in range(2):
            group = ReplicaGroup.from_layout(
                lambda node, parallelism: FlexGenSystem(
                    MODEL, node, parallelism=parallelism),
                "2x(none)", V100_16GB_NODE, policy="least-loaded")
            journal = []
            trace = group.serve(requests(), record_mode=record_mode,
                                ttft_slo_s=5.0, tpot_slo_s=0.5,
                                event_journal=journal)
            summaries.append(trace.summary())
            journals.append(journal)
        assert summaries[0] == summaries[1]
        # Event ordering is part of the contract: the merged heap pops the
        # same (time, kind, replica) sequence run-to-run.
        assert journals[0] == journals[1]
        kinds = {kind for _, kind, _ in journals[0]}
        assert kinds == {ARRIVAL, ADMISSION, EPOCH_BOUNDARY, COMPLETION}


class TestStreamingEquivalence:
    def test_streaming_engine_serve_matches_full(self):
        full = engine().serve(requests())
        stream = engine().serve(requests(), record_mode="streaming",
                                ttft_slo_s=5.0, tpot_slo_s=0.5)
        assert isinstance(stream, StreamingTrace)
        full_summary, stream_summary = full.summary(), stream.summary()
        for key in EXACT_KEYS:
            assert stream_summary[key] == full_summary[key], key
        assert stream.goodput(ttft_slo_s=5.0, tpot_slo_s=0.5) == \
            full.goodput(ttft_slo_s=5.0, tpot_slo_s=0.5)
        for key in ("p50_ttft_s", "p99_latency_s", "p50_tpot_s"):
            assert stream_summary[key] == \
                pytest.approx(full_summary[key], rel=0.3, abs=1e-3)
        assert stream.metadata["record_mode"] == "streaming"
        assert stream.metadata["kv_budget_tokens"] == \
            full.metadata["kv_budget_tokens"]

    def test_streaming_cluster_matches_full(self):
        def factory(node, parallelism):
            return VLLMSystem(MODEL, node, parallelism=parallelism)
        group = ReplicaGroup.from_layout(factory, "2x(none)",
                                         V100_16GB_NODE, policy="jsq")
        full = group.serve(requests())
        stream = group.serve(requests(), record_mode="streaming",
                             ttft_slo_s=5.0, tpot_slo_s=0.5)
        assert isinstance(stream, StreamingClusterTrace)
        full_summary, stream_summary = full.summary(), stream.summary()
        for key in EXACT_KEYS + ("num_replicas", "tokens_imbalance"):
            assert stream_summary[key] == full_summary[key], key
        assert stream.metadata["routing"] == full.metadata["routing"]
        replicas = stream.metadata["replicas"]
        assert [r["num_requests"] for r in replicas] == \
            [r["num_requests"] for r in full.metadata["replicas"]]

    def test_unknown_record_mode_raises(self):
        with pytest.raises(ConfigurationError, match="record_mode"):
            engine().serve(requests(n=2), record_mode="sampled")

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=50),
           st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=15, deadline=None)
    def test_property_event_loop_matches_step_loop(self, n, seed, rate):
        # For any workload: the event-driven serve is bit-identical to the
        # retained clock-stepped loop in full mode, the streaming sketch
        # trace agrees with both on every exact aggregate, and its
        # percentile estimates sit within the observed value range (P²
        # estimates never extrapolate).
        trace_requests = generate_requests(n, rate, pattern="poisson",
                                           seed=seed, max_len=256)
        full = engine().serve(trace_requests)
        stepped = engine(exact_stepping=True).serve(trace_requests)
        assert full.records == stepped.records
        stream = engine().serve(trace_requests, record_mode="streaming")
        for key in EXACT_KEYS:
            assert stream.summary()[key] == stepped.summary()[key], key
        ttfts = [record.ttft for record in full.records]
        for estimate in stream.ttft_percentiles().values():
            assert min(ttfts) <= estimate <= max(ttfts)


class TestEmptyTraces:
    @pytest.mark.parametrize("record_mode", ["full", "streaming"])
    def test_engine_serves_empty_list(self, record_mode):
        trace = engine().serve([], record_mode=record_mode)
        assert trace.num_requests == 0
        assert trace.duration == 0.0
        assert trace.throughput == 0.0
        assert trace.goodput() == 0.0
        assert trace.summary()["p99_ttft_s"] == 0.0
        assert trace.metadata["kv_budget_tokens"] == 0
        assert trace.metadata["shards"] == []

    @pytest.mark.parametrize("record_mode", ["full", "streaming"])
    def test_cluster_serves_empty_list(self, record_mode):
        group = ReplicaGroup.from_layout(
            lambda node, parallelism: FlexGenSystem(
                MODEL, node, parallelism=parallelism),
            "2x(none)", V100_16GB_NODE)
        trace = group.serve([], record_mode=record_mode)
        assert trace.num_requests == 0
        assert trace.tokens_imbalance == 1.0
        assert trace.metadata["routing"]["dispatch_counts"] == [0, 0]
        assert trace.metadata["kv_budget_tokens"] == 0
        assert trace.summary()["throughput_tokens_per_s"] == 0.0

    def test_starved_replica_finalizes_empty(self):
        # Round-robin over 3 replicas with 2 requests starves replica 2;
        # its run is never offered anything and must finalize cleanly.
        group = ReplicaGroup.from_layout(
            lambda node, parallelism: FlexGenSystem(
                MODEL, node, parallelism=parallelism),
            "3x(none)", V100_16GB_NODE)
        trace = group.serve(requests(n=2))
        assert trace.metadata["routing"]["dispatch_counts"] == [1, 1, 0]
        starved = trace.replica_traces[2]
        assert starved.num_requests == 0
        assert starved.metadata["kv_budget_tokens"] == 0


class TestRequestStream:
    def test_stream_matches_generated_list(self):
        stream = RequestStream(300, rate=4.0, pattern="bursty", seed=3,
                               max_len=512)
        assert len(stream) == 300
        materialized = list(stream)
        reference = generate_requests(300, 4.0, pattern="bursty", seed=3,
                                      max_len=512)
        assert [r.arrival_time for r in materialized] == \
            [r.arrival_time for r in reference]

    def test_stream_serve_matches_list_serve(self):
        stream = RequestStream(64, rate=4.0, pattern="poisson", seed=5,
                               input_len=128, output_len=64)
        trace_stream = engine().serve(stream, record_mode="streaming")
        reference = generate_requests(64, 4.0, pattern="poisson", seed=5,
                                      input_len=128, output_len=64)
        trace_list = engine().serve(reference)
        for key in EXACT_KEYS:
            assert trace_stream.summary()[key] == \
                trace_list.summary()[key], key

    def test_stream_cluster_reports_dispatch_counts(self):
        # Live routing tallies dispatches during the event loop; the counts
        # must reflect the served stream, not the router's initial state.
        group = ReplicaGroup.from_layout(
            lambda node, parallelism: FlexGenSystem(
                MODEL, node, parallelism=parallelism),
            "2x(none)", V100_16GB_NODE)
        stream = RequestStream(40, rate=4.0, pattern="poisson", seed=1,
                               input_len=128, output_len=64)
        trace = group.serve(stream, record_mode="streaming")
        counts = trace.metadata["routing"]["dispatch_counts"]
        assert sum(counts) == 40
        assert counts == [20, 20]  # round-robin split

    def test_stream_is_restartable_and_deterministic(self):
        stream = RequestStream(50, rate=2.0, pattern="poisson", seed=9,
                               max_len=256)
        first = [(r.arrival_time, r.input_len) for r in stream]
        second = [(r.arrival_time, r.input_len) for r in stream]
        assert first == second

    def test_stream_validation(self):
        with pytest.raises(ConfigurationError):
            RequestStream(0, rate=1.0)
        with pytest.raises(ConfigurationError):
            RequestStream(10, rate=0.0)
        with pytest.raises(ConfigurationError, match="generate_requests"):
            RequestStream(10, rate=1.0, pattern="fractal")

    def test_exact_stepping_rejects_streams(self):
        stream = RequestStream(10, rate=2.0, input_len=64, output_len=32)
        with pytest.raises(ConfigurationError, match="exact_stepping"):
            engine(exact_stepping=True).serve(stream)


class TestDriveValidation:
    def test_drive_needs_runs(self):
        with pytest.raises(ConfigurationError):
            drive([], [], lambda request: 0)

    def test_route_index_out_of_range(self):
        run = engine().start_run(
            engine().make_trace("full"), max_input_len=64, max_output_len=32)
        with pytest.raises(ConfigurationError, match="run index"):
            drive(requests(n=2, input_len=64, output_len=32), [run],
                  lambda request: 5)

    def test_out_of_order_arrivals_rejected(self):
        shared = engine()
        run = shared.start_run(shared.make_trace("full"),
                               max_input_len=64, max_output_len=32)
        backwards = sorted(requests(n=4, input_len=64, output_len=32),
                           key=lambda r: -r.arrival_time)
        with pytest.raises(ConfigurationError, match="sorted"):
            drive(backwards, [run], lambda request: 0)
