"""Integration tests: every experiment driver runs and reproduces the
paper's qualitative shape (who wins, orderings, crossovers)."""

import pytest

from repro.experiments import list_experiments, run_experiment
from repro.experiments.base import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = set(list_experiments())
        expected = {
            "fig01_motivation", "fig02_kv_caching", "fig03_sparsity",
            "fig04_distributions", "fig05_attention_maps", "fig08_accuracy",
            "fig09_throughput", "fig10_attainable_sparsity",
            "fig11_attention_breakdown", "fig12_breakdown",
            "serving_rate_sweep",
        }
        assert expected <= names

    def test_unknown_experiment_raises(self):
        from repro._common import ConfigurationError
        with pytest.raises(ConfigurationError):
            run_experiment("fig99_unknown")

    def test_result_table_rendering(self):
        result = ExperimentResult("demo", "demo")
        result.add(a=1, b=2.5)
        table = result.to_table()
        assert "a" in table and "2.5" in table


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig01_motivation", output_len=256)

    def test_cpu_offload_slower_than_gpu_only(self, result):
        rows = result.filter(workload="workload-1")
        by_placement = {r["placement"]: r for r in rows}
        assert (by_placement["cpu-50%"]["total_time_s"]
                > by_placement["gpu-only"]["total_time_s"])
        assert (by_placement["cpu-100%"]["total_time_s"]
                > by_placement["cpu-50%"]["total_time_s"])

    def test_large_workload_ooms_on_gpu_only(self, result):
        rows = result.filter(workload="workload-3", placement="gpu-only")
        assert rows[0]["oom"]

    def test_memory_access_dominates_when_offloading(self, result):
        row = result.filter(workload="workload-2", placement="cpu-100%")[0]
        assert row["memory_access_time_s"] > row["compute_time_s"]


class TestFig02:
    def test_kv_caching_faster_and_memory_grows(self):
        result = run_experiment("fig02_kv_caching", num_steps=64, stride=16)
        for row in result.rows:
            assert row["with_cache_time_s"] < row["without_cache_time_s"]
        kv = result.column("with_cache_kv_gb")
        assert kv == sorted(kv)


class TestFig03:
    def test_attention_is_sparse_and_larger_model_sparser(self):
        result = run_experiment("fig03_sparsity", prompt_len=32, num_steps=8)
        small = result.notes["opt-6.7b_mean_sparsity"]
        large = result.notes["opt-30b_mean_sparsity"]
        assert small > 0.6
        assert large > small


class TestFig04:
    def test_swa_correlates_with_dense_better_than_local_strided(self):
        result = run_experiment("fig04_distributions", prompt_len=32,
                                num_steps=32)
        rho = {row["policy"]: row["spearman_rho"] for row in result.rows}
        assert rho["dense"] == pytest.approx(1.0)
        assert rho["swa"] > 0.6
        assert rho["swa"] > rho["local"]
        assert rho["swa"] > rho["strided"]


class TestFig05:
    def test_attention_map_is_causal_and_normalized(self):
        result = run_experiment("fig05_attention_maps", seq_len=8)
        assert all(row["key_position"] <= row["query_position"]
                   for row in result.rows)
        first_row_weight = [r["weight"] for r in result.rows
                            if r["query_position"] == 0]
        assert first_row_weight[0] == pytest.approx(1.0)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig08_accuracy", models=("opt-13b",),
                              datasets=("copa",), sparsities=(0.0, 0.8),
                              num_sequences=2)

    def test_swa_tracks_dense_at_80pct_sparsity(self, result):
        dense = result.filter(policy="dense")[0]["accuracy"]
        swa = result.filter(policy="swa", kv_sparsity=0.8, compressed=False)
        assert swa[0]["accuracy"] >= dense - 0.2

    def test_local_collapses_at_80pct_sparsity(self, result):
        swa = result.filter(policy="swa", kv_sparsity=0.8, compressed=False)[0]
        local = result.filter(policy="local", kv_sparsity=0.8)[0]
        assert local["accuracy"] < swa["accuracy"]

    def test_compression_has_negligible_impact(self, result):
        swa = result.filter(policy="swa", kv_sparsity=0.8, compressed=False)[0]
        alisa = result.filter(policy="swa", kv_sparsity=0.8, compressed=True)[0]
        assert abs(alisa["accuracy"] - swa["accuracy"]) <= 0.1


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig09_throughput", models=("opt-6.7b",),
                              batch_sizes=(4, 32), output_len=128)

    def test_alisa_beats_flexgen_and_vllm_at_large_batch(self, result):
        alisa = result.filter(system="alisa", batch_size=32)[0]
        assert alisa["speedup_vs_flexgen"] > 1.2
        assert alisa["speedup_vs_vllm"] > 1.0

    def test_vllm_competitive_at_small_batch(self, result):
        alisa = result.filter(system="alisa", batch_size=4)[0]
        assert alisa["speedup_vs_vllm"] <= 1.1

    def test_speedup_grows_with_batch_size(self, result):
        small = result.filter(system="alisa", batch_size=4)[0]["speedup_vs_flexgen"]
        large = result.filter(system="alisa", batch_size=32)[0]["speedup_vs_flexgen"]
        assert large > small

    def test_deepspeed_is_slowest_non_oom(self, result):
        rows = [r for r in result.filter(batch_size=4) if not r["oom"]]
        slowest = min(rows, key=lambda r: r["throughput_tokens_per_s"])
        assert slowest["system"] == "deepspeed-zero"


class TestFig10:
    def test_attention_sparsity_increases_with_kv_sparsity(self):
        result = run_experiment("fig10_attainable_sparsity", prompt_len=32,
                                num_steps=8, kv_sparsities=(0.0, 0.8))
        for model in ("opt-6.7b", "opt-30b"):
            rows = sorted(result.filter(model=model),
                          key=lambda r: r["kv_sparsity"])
            assert rows[-1]["attention_sparsity"] > rows[0]["attention_sparsity"]


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig11_attention_breakdown", models=("opt-6.7b",
                                                                   "opt-30b"))

    def test_higher_sparsity_reduces_attention_time(self, result):
        totals = {row["configuration"]: row["time_us"]
                  for row in result.filter(model="opt-6.7b", op="total")}
        assert totals["swa-80%"] < totals["dense"]
        assert totals["swa-80%"] <= totals["swa-50%"]

    def test_swa_overhead_ops_present(self, result):
        ops = {row["op"] for row in result.filter(model="opt-6.7b",
                                                  configuration="swa-80%")}
        assert {"local_attention_sum", "sparse_kv_gather"} <= ops

    def test_larger_model_has_larger_overhead(self, result):
        small = result.filter(model="opt-6.7b", configuration="swa-80%",
                              op="local_attention_sum")[0]["time_us"]
        large = result.filter(model="opt-30b", configuration="swa-80%",
                              op="local_attention_sum")[0]["time_us"]
        assert large >= small


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig12_breakdown", output_len=256,
                              kv_sparsities=(0.8,))

    def test_alisa_faster_than_flexgen_in_every_phase(self, result):
        flexgen_time = sum(r["time_s"] for r in
                           result.filter(series="phase_breakdown",
                                         system="flexgen"))
        alisa_time = sum(r["time_s"] for r in
                         result.filter(series="phase_breakdown", system="alisa"))
        assert alisa_time < flexgen_time

    def test_recomputation_helps(self, result):
        row = result.filter(series="recomputation")[0]
        assert row["recompute_speedup"] >= 1.0

    def test_ablation_monotone_improvement(self, result):
        speedups = {r["system"]: r["speedup_vs_flexgen"]
                    for r in result.filter(series="ablation")}
        assert (speedups["swa_only"] <= speedups["swa_ds"]
                <= speedups["swa_ds_compression"])
        assert speedups["swa_ds_compression"] > 1.0
