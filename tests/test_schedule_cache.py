"""Tests for the incremental scheduler re-solve layer.

Covers the vectorized objective (must price candidates identically to the
legacy :class:`DynamicScheduler`-driven evaluator), the warm-started
coordinate-descent search, the :class:`ScheduleCache` key spaces, and the
cache-correctness invariant: any schedule served from the cache — exact
hit, canonical-bucket derivation, or warm-started solve — must cost within
``SchedulePolicy.tolerance`` of a cold full grid solve of the same shape.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._common import ConfigurationError
from repro.core.engine import AlisaSystem
from repro.core.optimizer import (
    SchedulerOptimizer,
    gpu_kv_budget_tokens,
    phase1_end_step,
)
from repro.core.schedule_cache import (
    FULL_RESOLVE_POLICY,
    CachedSchedule,
    ScheduleCache,
    SchedulePolicy,
)
from repro.core.scheduler import SchedulerConfig
from repro.core.swa import SWAConfig
from repro.hardware.presets import V100_16GB_NODE
from repro.workloads.descriptors import Workload

MODEL = "opt-6.7b"
SWA = SWAConfig.from_sparsity(0.8)

SHAPES = [(32, 128, 128), (8, 64, 32), (4, 512, 300), (1, 100, 7),
          (19, 450, 64), (3, 257, 129)]


def make_optimizer(opt_cost_model, shape) -> SchedulerOptimizer:
    return SchedulerOptimizer(opt_cost_model, Workload(*shape, "t"), SWA,
                              kv_dtype="int8")


class TestFastObjective:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_legacy_evaluator_on_full_grid(self, opt_cost_model,
                                                   shape):
        optimizer = make_optimizer(opt_cost_model, shape)
        workload = optimizer.workload
        budget = gpu_kv_budget_tokens(opt_cost_model, workload, "int8")
        p1 = phase1_end_step(budget, workload)
        for alpha in optimizer.alpha_grid:
            for beta in optimizer.beta_grid:
                for p2 in optimizer._p2_candidates(p1):
                    config = SchedulerConfig(alpha, beta, p1, max(p1, p2))
                    legacy = optimizer.evaluate(config, budget)
                    fast = optimizer.fast_evaluate(config, budget)
                    assert fast == pytest.approx(legacy, rel=1e-9)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_incremental_grid_reproduces_legacy_solve(self, opt_cost_model,
                                                      shape):
        legacy = make_optimizer(opt_cost_model, shape).solve()
        fast = make_optimizer(opt_cost_model, shape).solve_incremental()
        assert fast.config == legacy.config
        assert fast.estimated_time == pytest.approx(legacy.estimated_time,
                                                    rel=1e-9)
        assert fast.gpu_budget_tokens == legacy.gpu_budget_tokens

    def test_warm_start_visits_fewer_candidates(self, opt_cost_model):
        cold = make_optimizer(opt_cost_model, (19, 450, 64)).solve_incremental()
        warm = make_optimizer(opt_cost_model, (19, 450, 64)).solve_incremental(
            seed=(cold.config.offload_ratio, cold.config.recompute_ratio, 0.5)
        )
        assert warm.evaluated_candidates < cold.evaluated_candidates
        assert warm.estimated_time <= cold.estimated_time * 1.0001


class TestSchedulePolicy:
    def test_canonical_shape_buckets_up(self):
        policy = SchedulePolicy(input_bucket=64, output_bucket=64)
        workload = Workload(7, 130, 65, "w")
        assert policy.canonical_shape(workload) == (7, 192, 128)
        aligned = Workload(7, 128, 64, "w")
        assert policy.canonical_shape(aligned) == (7, 128, 64)

    def test_full_resolve_policy_disables_reuse(self):
        assert FULL_RESOLVE_POLICY.exact
        assert not FULL_RESOLVE_POLICY.memoize
        assert not FULL_RESOLVE_POLICY.warm_start

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulePolicy(input_bucket=0)
        with pytest.raises(ConfigurationError):
            SchedulePolicy(tolerance=1.5)


class TestCachedSchedule:
    def test_round_trips_on_the_solved_shape(self):
        workload = Workload(8, 128, 256, "w")
        config = SchedulerConfig(offload_ratio=0.7, recompute_ratio=0.4,
                                 phase2_step=40, phase3_step=148)
        entry = CachedSchedule.from_config(config, workload,
                                           gpu_budget_tokens=168,
                                           estimated_time=1.0)
        assert entry.derive_config(workload, phase2_step=40) == config

    def test_derivation_rescales_phase3_to_new_horizon(self):
        workload = Workload(8, 128, 256, "w")
        config = SchedulerConfig(offload_ratio=0.7, recompute_ratio=0.4,
                                 phase2_step=0, phase3_step=128)
        entry = CachedSchedule.from_config(config, workload, 128, 1.0)
        derived = entry.derive_config(Workload(8, 128, 64, "w"),
                                      phase2_step=0)
        assert derived.phase3_step == 32  # same fraction of a shorter run
        assert derived.offload_ratio == config.offload_ratio

    def test_distance_prefers_closer_shapes(self):
        entry = CachedSchedule.from_config(
            SchedulerConfig(0.5, 0.0, 10, 20), Workload(8, 128, 128, "w"),
            100, 1.0)
        near = Workload(8, 128, 160, "w")
        far = Workload(32, 512, 16, "w")
        assert entry.distance(near) < entry.distance(far)


class TestScheduleCache:
    def test_exact_hit_returns_stored_solution(self, opt_cost_model):
        cache = ScheduleCache()
        workload = Workload(8, 128, 64, "w")
        key = cache.exact_key(("ctx",), workload, 100)
        assert cache.lookup_exact(key) is None
        solution = make_optimizer(opt_cost_model, (8, 128, 64)).solve()
        cache.store_exact(key, solution)
        assert cache.lookup_exact(key) is solution
        assert cache.stats.exact_hits == 1
        assert len(cache) == 1

    def test_nearest_respects_context_namespace(self):
        cache = ScheduleCache()
        workload = Workload(8, 128, 128, "w")
        entry = CachedSchedule.from_config(
            SchedulerConfig(0.5, 0.0, 10, 20), workload, 100, 1.0)
        policy = SchedulePolicy()
        cache.store_canonical(cache.canonical_key(("a",), policy, workload),
                              entry)
        assert cache.nearest(("a",), workload) is entry
        assert cache.nearest(("b",), workload) is None

    def test_canonical_rejects_raw_configs(self):
        cache = ScheduleCache()
        with pytest.raises(ConfigurationError):
            cache.store_canonical(("k",), SchedulerConfig(0.5, 0.0, 0, 0))

    def test_clear_resets_entries_and_stats(self):
        cache = ScheduleCache()
        cache.store_exact(("k",), object())
        cache.lookup_exact(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.exact_hits == 0


def alisa(policy=None, cache=None) -> AlisaSystem:
    return AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8,
                       schedule_policy=policy, schedule_cache=cache)


class TestAlisaIncrementalPrepare:
    def test_exact_mode_matches_legacy_search(self, opt_cost_model):
        system = alisa(SchedulePolicy(exact=True))
        workload = Workload(8, 128, 64, "w")
        system.prepare(workload)
        reference = make_optimizer(opt_cost_model, (8, 128, 64)).solve()
        assert system.schedule_solution.config == reference.config
        assert system.schedule_solution.estimated_time \
            == reference.estimated_time

    def test_repeated_shape_is_memoized(self):
        system = alisa()
        workload = Workload(8, 128, 64, "w")
        system.prepare(workload)
        first = system.schedule_solution
        system.prepare(workload)
        assert system.schedule_solution is first
        stats = system.schedule_stats()
        assert stats["exact_hits"] == 1
        assert stats["full_solves"] == 1

    def test_same_bucket_shape_derives_without_search(self):
        system = alisa()
        system.prepare(Workload(8, 128, 64, "w"))
        evaluated = system.schedule_stats()["candidates_evaluated"]
        system.prepare(Workload(8, 126, 62, "w"))  # same canonical bucket
        stats = system.schedule_stats()
        assert stats["canonical_hits"] == 1
        # Derivation prices the derived config once but runs no search.
        assert stats["candidates_evaluated"] == evaluated + 1

    def test_new_bucket_warm_starts_from_neighbor(self):
        system = alisa()
        system.prepare(Workload(8, 128, 64, "w"))
        full_grid = system.schedule_stats()["candidates_evaluated"]
        system.prepare(Workload(8, 192, 64, "w"))  # new bucket, near neighbor
        stats = system.schedule_stats()
        assert stats["warm_solves"] == 1
        assert stats["candidates_evaluated"] < 2 * full_grid

    def test_full_resolve_policy_never_reuses(self):
        system = alisa(FULL_RESOLVE_POLICY)
        workload = Workload(8, 128, 64, "w")
        system.prepare(workload)
        system.prepare(workload)
        stats = system.schedule_stats()
        assert stats["full_solves"] == 2
        assert stats["exact_hits"] == 0

    def test_shared_cache_carries_across_systems(self):
        cache = ScheduleCache()
        workload = Workload(8, 128, 64, "w")
        alisa(cache=cache).prepare(workload)
        second = alisa(cache=cache)
        second.prepare(workload)
        assert cache.stats.exact_hits == 1
        assert cache.stats.full_solves == 1

    def test_ablation_flags_namespace_the_cache(self):
        cache = ScheduleCache()
        workload = Workload(8, 128, 64, "w")
        alisa(cache=cache).prepare(workload)
        norecompute = AlisaSystem(MODEL, V100_16GB_NODE, kv_sparsity=0.8,
                                  enable_recomputation=False,
                                  schedule_cache=cache)
        norecompute.prepare(workload)
        # Different context, so the second prepare cannot hit the first's
        # entries — and its schedule must still honour beta == 0.
        assert cache.stats.exact_hits == 0
        assert cache.stats.full_solves == 2
        assert norecompute.schedule_solution.config.recompute_ratio == 0.0


class TestCacheCorrectnessInvariant:
    """A served schedule costs within tolerance of a cold full grid solve."""

    @staticmethod
    def _cold_cost(opt_cost_model, workload) -> float:
        optimizer = SchedulerOptimizer(opt_cost_model, workload, SWA,
                                       kv_dtype="int8")
        return optimizer.solve().estimated_time

    @staticmethod
    def _served_cost(opt_cost_model, system, workload) -> float:
        optimizer = SchedulerOptimizer(opt_cost_model, workload, SWA,
                                       kv_dtype="int8")
        budget = gpu_kv_budget_tokens(opt_cost_model, workload, "int8")
        return optimizer.evaluate(system.schedule_solution.config, budget)

    @given(batch=st.integers(min_value=1, max_value=32),
           input_len=st.integers(min_value=32, max_value=320),
           output_len=st.integers(min_value=8, max_value=160),
           delta_s=st.integers(min_value=-48, max_value=48),
           delta_n=st.integers(min_value=-48, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_warm_and_canonical_solves_within_tolerance(
            self, opt_cost_model, batch, input_len, output_len, delta_s,
            delta_n):
        first = Workload(batch, input_len, output_len, "first")
        second = Workload(batch, max(32, input_len + delta_s),
                          max(8, output_len + delta_n), "second")
        system = alisa()
        system.prepare(first)
        system.prepare(second)  # exact hit, canonical hit, or warm solve
        served = self._served_cost(opt_cost_model, system, second)
        cold = self._cold_cost(opt_cost_model, second)
        tolerance = system.schedule_policy.tolerance
        assert served <= cold * (1.0 + tolerance) + 1e-12
