"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (figure or table) through the
experiment drivers in :mod:`repro.experiments`, using reduced parameters so
the whole suite completes in minutes on a laptop.  The benchmark *value* is
the wall-clock time of regenerating the artifact; the artifact's rows are
attached to ``benchmark.extra_info`` so the numbers themselves can be
inspected from the pytest-benchmark JSON output.
"""

from __future__ import annotations

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark everything under ``benchmarks/`` with the ``bench`` marker.

    Tier-1 CI deselects these with ``-m "not bench"`` so the fast suite
    stays fast; a full ``pytest`` run still includes them.
    """
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def record_rows():
    """Attach experiment rows/notes to the benchmark's extra_info."""

    def _record(benchmark, result, max_rows: int = 12):
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["num_rows"] = len(result.rows)
        benchmark.extra_info["rows"] = result.rows[:max_rows]
        if result.notes:
            benchmark.extra_info["notes"] = {k: str(v) for k, v in
                                             result.notes.items()}
        return result

    return _record
