"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (figure or table) through the
experiment drivers in :mod:`repro.experiments`, using reduced parameters so
the whole suite completes in minutes on a laptop.  The benchmark *value* is
the wall-clock time of regenerating the artifact; the artifact's rows are
attached to ``benchmark.extra_info`` so the numbers themselves can be
inspected from the pytest-benchmark JSON output.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def record_rows():
    """Attach experiment rows/notes to the benchmark's extra_info."""

    def _record(benchmark, result, max_rows: int = 12):
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["num_rows"] = len(result.rows)
        benchmark.extra_info["rows"] = result.rows[:max_rows]
        if result.notes:
            benchmark.extra_info["notes"] = {k: str(v) for k, v in
                                             result.notes.items()}
        return result

    return _record
