"""Ablation benchmarks for the design choices called out in DESIGN.md.

* SWA local/global split — the paper splits the kept tokens evenly; this
  ablation sweeps the split and checks the even split is a sound default.
* PCIe bandwidth sensitivity — the caching-vs-recomputation crossover of the
  dynamic scheduler should move as the CPU-GPU link gets faster.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AlisaSystem
from repro.core.swa import SWAConfig
from repro.evaluation.accuracy import evaluate_policy_on_dataset
from repro.attention.variants import SWAAttentionPolicy
from repro.hardware.presets import H100_80GB_NODE, V100_16GB_NODE
from repro.model.constructed import build_recall_model
from repro.workloads.descriptors import Workload
from repro.workloads.recall import QA_DATASETS, generate_recall_dataset


def _accuracy_with_split(local_fraction: float) -> float:
    model = build_recall_model("opt-13b", seed=0)
    dataset = generate_recall_dataset(QA_DATASETS["copa"].with_sequences(2),
                                      seed=0)
    config = SWAConfig.from_sparsity(0.8, local_fraction=local_fraction)
    # Evaluate by temporarily swapping the policy construction.
    from repro.evaluation import accuracy as accuracy_module

    original = accuracy_module.make_policy
    try:
        accuracy_module.make_policy = (
            lambda name, kv_sparsity=0.0, **kw: SWAAttentionPolicy(config)
        )
        result = evaluate_policy_on_dataset(model, dataset, "swa",
                                            kv_sparsity=0.8)
    finally:
        accuracy_module.make_policy = original
    return result.accuracy


@pytest.mark.benchmark(group="ablation-swa-split")
def test_bench_ablation_swa_split(benchmark):
    """Even local/global split should not be worse than a local-only split."""

    def run():
        return {fraction: _accuracy_with_split(fraction)
                for fraction in (0.25, 0.5, 0.9)}

    accuracies = benchmark(run)
    assert accuracies[0.5] >= accuracies[0.9] - 0.05


@pytest.mark.benchmark(group="ablation-bandwidth")
def test_bench_ablation_pcie_bandwidth(benchmark):
    """Faster PCIe should shrink ALISA's advantage from recomputation."""
    workload = Workload(64, 128, 256, name="ablation")

    def run():
        out = {}
        for bandwidth in (10e9, 20e9, 80e9):
            hardware = H100_80GB_NODE.with_pcie_bandwidth(bandwidth)
            with_recompute = AlisaSystem("opt-30b", hardware, kv_sparsity=0.8,
                                         use_compression=False).run(workload)
            without = AlisaSystem("opt-30b", hardware, kv_sparsity=0.8,
                                  use_compression=False,
                                  enable_recomputation=False).run(workload)
            out[bandwidth] = without.total_time / with_recompute.total_time
        return out

    gains = benchmark(run)
    assert gains[10e9] >= gains[80e9] - 1e-6


@pytest.mark.benchmark(group="ablation-sparsity")
def test_bench_ablation_kv_sparsity_sweep(benchmark):
    """Throughput should increase monotonically with KV sparsity."""
    workload = Workload(32, 128, 256, name="sweep")

    def run():
        return {s: AlisaSystem("opt-6.7b", V100_16GB_NODE,
                               kv_sparsity=s).run(workload).throughput
                for s in (0.2, 0.5, 0.8)}

    throughputs = benchmark(run)
    assert throughputs[0.8] >= throughputs[0.2]
