"""Benchmarks regenerating the motivation and system figures (1, 2c, 9, 11, 12)."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="fig01")
def test_bench_fig01_motivation(benchmark, record_rows):
    result = benchmark(run_experiment, "fig01_motivation", output_len=256)
    record_rows(benchmark, result)
    rows = {r["placement"]: r for r in result.filter(workload="workload-1")}
    assert rows["cpu-100%"]["total_time_s"] > rows["gpu-only"]["total_time_s"]


@pytest.mark.benchmark(group="fig02")
def test_bench_fig02_kv_caching(benchmark, record_rows):
    result = benchmark(run_experiment, "fig02_kv_caching", num_steps=128,
                       stride=8)
    record_rows(benchmark, result)
    assert all(r["with_cache_time_s"] < r["without_cache_time_s"]
               for r in result.rows)


@pytest.mark.benchmark(group="fig09")
def test_bench_fig09_throughput(benchmark, record_rows):
    result = benchmark(run_experiment, "fig09_throughput",
                       models=("opt-6.7b", "opt-13b"),
                       batch_sizes=(4, 16, 64), output_len=256)
    record_rows(benchmark, result)
    alisa = result.filter(system="alisa", model="opt-6.7b", batch_size=64)[0]
    assert alisa["speedup_vs_flexgen"] > 1.2


@pytest.mark.benchmark(group="fig09")
def test_bench_fig09_throughput_30b(benchmark, record_rows):
    result = benchmark(run_experiment, "fig09_throughput",
                       models=("opt-30b", "llama-33b"), batch_sizes=(16, 64),
                       output_len=256)
    record_rows(benchmark, result)
    for model in ("opt-30b", "llama-33b"):
        alisa = result.filter(system="alisa", model=model, batch_size=64)[0]
        assert alisa["speedup_vs_flexgen"] > 1.0


@pytest.mark.benchmark(group="fig11")
def test_bench_fig11_attention_breakdown(benchmark, record_rows):
    result = benchmark(run_experiment, "fig11_attention_breakdown")
    record_rows(benchmark, result)
    totals = {row["configuration"]: row["time_us"]
              for row in result.filter(model="opt-30b", op="total")}
    assert totals["swa-80%"] < totals["dense"]


@pytest.mark.benchmark(group="fig12")
def test_bench_fig12_breakdown(benchmark, record_rows):
    result = benchmark(run_experiment, "fig12_breakdown", output_len=512,
                       kv_sparsities=(0.5, 0.8))
    record_rows(benchmark, result)
    row = result.filter(series="recomputation", kv_sparsity=0.8)[0]
    assert row["recompute_speedup"] >= 1.0
    speedups = {r["system"]: r["speedup_vs_flexgen"]
                for r in result.filter(series="ablation", kv_sparsity=0.8)}
    assert speedups["swa_ds_compression"] >= speedups["swa_only"]
