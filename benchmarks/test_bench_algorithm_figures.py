"""Benchmarks regenerating the algorithm-level figures (3, 4, 5, 8, 10).

Each benchmark runs the corresponding experiment driver with reduced
parameters and asserts the paper's qualitative shape on the produced rows.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="fig03")
def test_bench_fig03_attention_sparsity(benchmark, record_rows):
    result = benchmark(run_experiment, "fig03_sparsity", prompt_len=32,
                       num_steps=8)
    record_rows(benchmark, result)
    assert result.notes["opt-30b_mean_sparsity"] > result.notes["opt-6.7b_mean_sparsity"]


@pytest.mark.benchmark(group="fig04")
def test_bench_fig04_score_distributions(benchmark, record_rows):
    result = benchmark(run_experiment, "fig04_distributions", prompt_len=32,
                       num_steps=32)
    record_rows(benchmark, result)
    rho = {row["policy"]: row["spearman_rho"] for row in result.rows}
    assert rho["swa"] > rho["local"]


@pytest.mark.benchmark(group="fig05")
def test_bench_fig05_attention_maps(benchmark, record_rows):
    result = benchmark(run_experiment, "fig05_attention_maps", seq_len=16)
    record_rows(benchmark, result)
    assert len(result.rows) == 16 * 17 // 2


@pytest.mark.benchmark(group="fig08")
def test_bench_fig08_accuracy_sweep(benchmark, record_rows):
    result = benchmark(run_experiment, "fig08_accuracy", models=("opt-13b",),
                       datasets=("copa", "wikitext-2"), sparsities=(0.0, 0.8),
                       num_sequences=2)
    record_rows(benchmark, result)
    dense = result.filter(policy="dense", dataset="copa")[0]["accuracy"]
    swa = result.filter(policy="swa", dataset="copa", kv_sparsity=0.8,
                        compressed=False)[0]["accuracy"]
    local = result.filter(policy="local", dataset="copa",
                          kv_sparsity=0.8)[0]["accuracy"]
    assert swa >= dense - 0.2
    assert local < swa


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_attainable_sparsity(benchmark, record_rows):
    result = benchmark(run_experiment, "fig10_attainable_sparsity",
                       prompt_len=32, num_steps=8, kv_sparsities=(0.0, 0.8))
    record_rows(benchmark, result)
    rows = sorted(result.filter(model="opt-6.7b"),
                  key=lambda r: r["kv_sparsity"])
    assert rows[-1]["attention_sparsity"] > rows[0]["attention_sparsity"]
