"""Benchmark regenerating the online serving rate sweep (Section VI, online)."""

from __future__ import annotations

import time

import pytest

from repro.core.engine import AlisaSystem
from repro.experiments import run_experiment
from repro.hardware.presets import V100_16GB_NODE
from repro.serving import ContinuousBatchingEngine
from repro.workloads.arrivals import generate_requests


@pytest.mark.benchmark(group="serving")
def test_bench_serving_rate_sweep(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(4.0, 16.0), num_requests=16,
                       input_len=256, output_len=128)
    record_rows(benchmark, result)
    alisa = result.filter(system="alisa", rate_req_per_s=16.0)[0]
    vllm = result.filter(system="vllm", rate_req_per_s=16.0)[0]
    assert alisa["p99_ttft_s"] <= vllm["p99_ttft_s"]
    assert alisa["goodput_tokens_per_s"] >= vllm["goodput_tokens_per_s"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_bursty_sharegpt(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0,), num_requests=16, pattern="bursty",
                       input_len=None, output_len=None)
    record_rows(benchmark, result)
    for row in result.rows:
        assert row["num_requests"] == 16
        assert row["throughput_tokens_per_s"] > 0


@pytest.mark.benchmark(group="serving")
def test_bench_serving_fast_path(benchmark):
    """Steady-state serving at the highest sweep rate (epoch fast path).

    Benchmarks ``serve()`` on a long-lived engine — the deployment shape,
    where prefill-plan/epoch-price caches are warm — at the highest
    arrival rate of the serving sweep, and cross-checks the vectorized
    fast path against the ``exact_stepping=True`` per-step loop: the
    traces must be bit-identical and the fast path at least 5x faster.
    """
    requests = generate_requests(16, rate=16.0, input_len=256,
                                 output_len=128, seed=0)
    engine = ContinuousBatchingEngine(
        AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8))
    fast_trace = engine.serve(requests)  # warm the pricing caches once
    benchmark(engine.serve, requests)

    exact_engine = ContinuousBatchingEngine(
        AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                    exact_stepping=True))
    exact_trace = exact_engine.serve(requests)  # warm the schedule cache
    start = time.perf_counter()
    exact_trace = exact_engine.serve(requests)
    exact_seconds = time.perf_counter() - start

    assert fast_trace.records == exact_trace.records  # bit-identical
    speedup = exact_seconds / benchmark.stats["mean"]
    benchmark.extra_info["exact_stepping_seconds"] = exact_seconds
    benchmark.extra_info["speedup_vs_exact_stepping"] = speedup
    assert speedup >= 5.0, (
        f"epoch fast path only {speedup:.1f}x faster than exact stepping")


@pytest.mark.benchmark(group="serving")
def test_bench_serving_cluster(benchmark, record_rows):
    """Cluster serving: 2 GPUs as one TP-2 node vs two routed replicas."""
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       cluster=("tp-2", "2x(tp-1)"), routing="jsq")
    record_rows(benchmark, result)
    assert {row["cluster"] for row in result.rows} == {"tp-2", "2x(none)"}
    assert {row["gpu_count"] for row in result.rows} == {2}
    for row in result.filter(system="alisa", cluster="2x(none)"):
        assert sum(row["dispatch_counts"]) == 16
        assert row["num_replicas"] == 2
    sharded = result.filter(system="alisa", cluster="tp-2",
                            rate_req_per_s=32.0)[0]
    replicated = result.filter(system="alisa", cluster="2x(none)",
                               rate_req_per_s=32.0)[0]
    # One big node pools its KV budget; two replicas split it.
    assert sharded["kv_budget_tokens"] > replicated["kv_budget_tokens"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_multi_gpu_tp(benchmark, record_rows):
    """Sharded serving: single-GPU vs 2-GPU tensor parallel in one sweep."""
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       parallelism=("none", "tp-2"))
    record_rows(benchmark, result)
    single = result.filter(system="alisa", parallelism="none",
                           rate_req_per_s=32.0)[0]
    sharded = result.filter(system="alisa", parallelism="tp-2",
                            rate_req_per_s=32.0)[0]
    assert sharded["kv_budget_tokens"] > single["kv_budget_tokens"]
    assert sharded["p99_ttft_s"] <= single["p99_ttft_s"]
    assert sharded["comm_time_share"] > 0.0
