"""Benchmark regenerating the online serving rate sweep (Section VI, online)."""

from __future__ import annotations

import json
import time
import tracemalloc

import pytest

from repro.baselines import VLLMSystem
from repro.cluster import ReplicaGroup
from repro.core.engine import AlisaSystem
from repro.experiments import run_experiment
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.hardware.presets import V100_16GB_NODE
from repro.obs import Observer, SpanTracer
from repro.serving import ContinuousBatchingEngine
from repro.workloads.arrivals import RequestStream, generate_requests


@pytest.mark.benchmark(group="serving")
def test_bench_serving_rate_sweep(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(4.0, 16.0), num_requests=16,
                       input_len=256, output_len=128)
    record_rows(benchmark, result)
    alisa = result.filter(system="alisa", rate_req_per_s=16.0)[0]
    vllm = result.filter(system="vllm", rate_req_per_s=16.0)[0]
    assert alisa["p99_ttft_s"] <= vllm["p99_ttft_s"]
    assert alisa["goodput_tokens_per_s"] >= vllm["goodput_tokens_per_s"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_bursty_sharegpt(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0,), num_requests=16, pattern="bursty",
                       input_len=None, output_len=None)
    record_rows(benchmark, result)
    for row in result.rows:
        assert row["num_requests"] == 16
        assert row["throughput_tokens_per_s"] > 0


@pytest.mark.benchmark(group="serving")
def test_bench_serving_fast_path(benchmark):
    """Steady-state serving at the highest sweep rate (epoch fast path).

    Benchmarks ``serve()`` on a long-lived engine — the deployment shape,
    where prefill-plan/epoch-price caches are warm — at the highest
    arrival rate of the serving sweep, and cross-checks the vectorized
    fast path against the ``exact_stepping=True`` per-step loop: the
    traces must be bit-identical and the fast path at least 5x faster.
    """
    requests = generate_requests(16, rate=16.0, input_len=256,
                                 output_len=128, seed=0)
    engine = ContinuousBatchingEngine(
        AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8))
    fast_trace = engine.serve(requests)  # warm the pricing caches once
    benchmark(engine.serve, requests)

    exact_engine = ContinuousBatchingEngine(
        AlisaSystem("opt-6.7b", V100_16GB_NODE, kv_sparsity=0.8,
                    exact_stepping=True))
    exact_trace = exact_engine.serve(requests)  # warm the schedule cache
    start = time.perf_counter()
    exact_trace = exact_engine.serve(requests)
    exact_seconds = time.perf_counter() - start

    assert fast_trace.records == exact_trace.records  # bit-identical
    speedup = exact_seconds / benchmark.stats["mean"]
    benchmark.extra_info["exact_stepping_seconds"] = exact_seconds
    benchmark.extra_info["speedup_vs_exact_stepping"] = speedup
    assert speedup >= 5.0, (
        f"epoch fast path only {speedup:.1f}x faster than exact stepping")


@pytest.mark.benchmark(group="serving")
def test_bench_serving_cluster(benchmark, record_rows):
    """Cluster serving: 2 GPUs as one TP-2 node vs two routed replicas.

    Every sweep row runs with a :class:`~repro.obs.SpanTracer` attached;
    the last row's Chrome trace is exported to ``BENCH_cluster_trace.json``
    (a CI artifact — load it in https://ui.perfetto.dev).
    """
    tracers = []

    def observers():
        tracer = SpanTracer()
        tracers.append(tracer)
        return [tracer]

    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       cluster=("tp-2", "2x(tp-1)"), routing="jsq",
                       slo_classes={"interactive": (2.0, 0.1)},
                       observers=observers)
    record_rows(benchmark, result)
    exported = tracers[-1].export("BENCH_cluster_trace.json")
    payload = json.loads(exported.read_text())
    assert payload["traceEvents"]
    assert payload["otherData"]["requests"]
    benchmark.extra_info["chrome_trace"] = str(exported)
    assert {row["cluster"] for row in result.rows} == {"tp-2", "2x(none)"}
    assert {row["gpu_count"] for row in result.rows} == {2}
    for row in result.filter(system="alisa", cluster="2x(none)"):
        assert sum(row["dispatch_counts"]) == 16
        assert row["num_replicas"] == 2
    sharded = result.filter(system="alisa", cluster="tp-2",
                            rate_req_per_s=32.0)[0]
    replicated = result.filter(system="alisa", cluster="2x(none)",
                               rate_req_per_s=32.0)[0]
    # One big node pools its KV budget; two replicas split it.
    assert sharded["kv_budget_tokens"] > replicated["kv_budget_tokens"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_million(benchmark):
    """One million requests through a 2-replica cluster in bounded memory.

    The headline row for the event-driven serving core: a
    :class:`RequestStream` is routed live across two replicas and folded
    into streaming sketches (``record_mode="streaming"``), so neither the
    arrival trace nor the per-request records are ever materialized.  The
    gate asserts the two properties that make the row meaningful:

    * **bounded memory** — the tracemalloc peak of a warm serve barely
      moves when the trace grows 3x (router state, pending queues, and
      sketches are all sized by the in-flight work, not the trace);
    * **no super-linear wall-clock** — per-request time on the million-
      request run stays within noise of the cold small run's (a 100x
      larger trace must not cost more per request; the fixed costs —
      budget probes, epoch-pricing cache fills — amortize away).
    """
    def stream(n):
        # Rate comfortably below the 2-replica capacity (~23 req/s at
        # these lengths), so the backlog — and with it memory — is bounded.
        return RequestStream(n, rate=16.0, pattern="poisson", seed=0,
                             input_len=128, output_len=64)

    def factory(node, parallelism):
        return VLLMSystem("opt-6.7b", node, parallelism=parallelism)

    group = ReplicaGroup.from_layout(factory, "2x(none)", V100_16GB_NODE,
                                     policy="round-robin")
    n_small = 10_000
    start = time.perf_counter()
    group.serve(stream(n_small), record_mode="streaming")  # cold
    per_request_small = (time.perf_counter() - start) / n_small

    peaks = {}
    for n in (20_000, 60_000):  # warm, 3x apart
        tracemalloc.start()
        group.serve(stream(n), record_mode="streaming")
        _, peaks[n] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    benchmark.extra_info["tracemalloc_peak_20k_bytes"] = peaks[20_000]
    benchmark.extra_info["tracemalloc_peak_60k_bytes"] = peaks[60_000]
    assert peaks[60_000] < 1.5 * peaks[20_000] + 1_000_000, (
        f"streaming peak memory grew with the trace: "
        f"{peaks[20_000]} -> {peaks[60_000]} bytes")
    assert peaks[60_000] < 16_000_000

    n_big = 1_000_000
    trace = benchmark.pedantic(group.serve, args=(stream(n_big),),
                               kwargs={"record_mode": "streaming"},
                               rounds=1, iterations=1)
    assert trace.num_requests == n_big
    assert sum(trace.metadata["routing"]["dispatch_counts"]) == n_big
    assert trace.mean_queueing_delay < 1.0  # the rate really is sustained
    assert trace.summary()["p99_ttft_s"] > trace.summary()["p50_ttft_s"]
    per_request_big = benchmark.stats["mean"] / n_big
    benchmark.extra_info["per_request_us"] = per_request_big * 1e6
    # 1.25x headroom: the cold 10k timing is a single noisy sample, and a
    # loaded CI machine can skew either side of the comparison.  A linear
    # or super-linear core would blow through this by orders of magnitude.
    assert per_request_big < 1.25 * per_request_small, (
        f"per-request wall-clock grew with the trace: "
        f"{per_request_small * 1e6:.0f}us -> {per_request_big * 1e6:.0f}us")


@pytest.mark.benchmark(group="serving")
def test_bench_fault_recovery(benchmark):
    """Serving through a mid-trace replica crash: goodput during the
    outage window and the time to drain the interrupted work after the
    replica rejoins (``recovery_time_s``)."""
    fail_at, recover_at = 2.5, 4.0
    requests = generate_requests(24, rate=8.0, input_len=256,
                                 output_len=128, seed=0)
    group = ReplicaGroup.from_layout(
        lambda node, parallelism: VLLMSystem("opt-6.7b", node,
                                             parallelism=parallelism),
        "2x(none)", V100_16GB_NODE)
    faults = FaultSchedule([FaultEvent(1, fail_at, recover_at,
                                       mode="crash")])

    def serve():
        return group.serve(requests, policy="jsq", faults=faults,
                           retry=RetryPolicy(max_retries=3,
                                             backoff_s=0.05))

    trace = benchmark(serve)
    completed = trace.completed_records
    assert len(completed) == 24  # JSQ re-routing + retry loses nothing
    assert trace.num_retries > 0
    outage_tokens = sum(r.output_len for r in completed
                        if fail_at <= r.completion_time <= recover_at)
    goodput_during_outage = outage_tokens / (recover_at - fail_at)
    retried = [r.completion_time for r in completed if r.retries > 0]
    recovery_time = max(max(retried) - recover_at, 0.0)
    resilience = trace.metadata["resilience"]
    benchmark.extra_info["goodput_during_outage_tokens_per_s"] = \
        goodput_during_outage
    benchmark.extra_info["recovery_time_s"] = recovery_time
    benchmark.extra_info["num_retries"] = trace.num_retries
    benchmark.extra_info["availability"] = resilience["availability"]
    # The surviving replica keeps producing tokens through the outage.
    assert goodput_during_outage > 0.0
    assert 0.0 < resilience["availability"] < 1.0


@pytest.mark.benchmark(group="serving")
def test_bench_observer_overhead(benchmark):
    """A no-op observer costs at most 5% over the unobserved serve.

    Every engine hook site is guarded by one ``if`` on the observer list,
    so the unobserved path is instruction-identical to the
    pre-observability core; with a no-op :class:`~repro.obs.Observer`
    attached the only cost is the callback dispatch.  Min-of-N timing on
    both sides keeps the comparison robust to CI noise.
    """
    requests = generate_requests(24, rate=16.0, input_len=256,
                                 output_len=128, seed=0)
    engine = ContinuousBatchingEngine(
        VLLMSystem("opt-6.7b", V100_16GB_NODE))
    observer = Observer()

    def min_of(serve_kwargs, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            engine.serve(requests, **serve_kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    engine.serve(requests)  # warm the pricing caches once
    base_min = min_of({})
    observed_min = min_of({"observers": [observer]})
    benchmark.extra_info["base_min_s"] = base_min
    benchmark.extra_info["observed_min_s"] = observed_min
    overhead = observed_min / base_min - 1.0
    benchmark.extra_info["overhead_fraction"] = overhead
    # 200us epsilon absorbs timer granularity on sub-ms serves.
    assert observed_min <= base_min * 1.05 + 2e-4, (
        f"no-op observer overhead {overhead:+.1%} exceeds the 5% budget")
    benchmark.pedantic(engine.serve, args=(requests,),
                       kwargs={"observers": [observer]},
                       rounds=5, iterations=1)


@pytest.mark.benchmark(group="serving")
def test_bench_serving_multi_gpu_tp(benchmark, record_rows):
    """Sharded serving: single-GPU vs 2-GPU tensor parallel in one sweep."""
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       parallelism=("none", "tp-2"))
    record_rows(benchmark, result)
    single = result.filter(system="alisa", parallelism="none",
                           rate_req_per_s=32.0)[0]
    sharded = result.filter(system="alisa", parallelism="tp-2",
                            rate_req_per_s=32.0)[0]
    assert sharded["kv_budget_tokens"] > single["kv_budget_tokens"]
    assert sharded["p99_ttft_s"] <= single["p99_ttft_s"]
    assert sharded["comm_time_share"] > 0.0
