"""Benchmark regenerating the online serving rate sweep (Section VI, online)."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="serving")
def test_bench_serving_rate_sweep(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(4.0, 16.0), num_requests=16,
                       input_len=256, output_len=128)
    record_rows(benchmark, result)
    alisa = result.filter(system="alisa", rate_req_per_s=16.0)[0]
    vllm = result.filter(system="vllm", rate_req_per_s=16.0)[0]
    assert alisa["p99_ttft_s"] <= vllm["p99_ttft_s"]
    assert alisa["goodput_tokens_per_s"] >= vllm["goodput_tokens_per_s"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_bursty_sharegpt(benchmark, record_rows):
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0,), num_requests=16, pattern="bursty",
                       input_len=None, output_len=None)
    record_rows(benchmark, result)
    for row in result.rows:
        assert row["num_requests"] == 16
        assert row["throughput_tokens_per_s"] > 0


@pytest.mark.benchmark(group="serving")
def test_bench_serving_cluster(benchmark, record_rows):
    """Cluster serving: 2 GPUs as one TP-2 node vs two routed replicas."""
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       cluster=("tp-2", "2x(tp-1)"), routing="jsq")
    record_rows(benchmark, result)
    assert {row["cluster"] for row in result.rows} == {"tp-2", "2x(none)"}
    assert {row["gpu_count"] for row in result.rows} == {2}
    for row in result.filter(system="alisa", cluster="2x(none)"):
        assert sum(row["dispatch_counts"]) == 16
        assert row["num_replicas"] == 2
    sharded = result.filter(system="alisa", cluster="tp-2",
                            rate_req_per_s=32.0)[0]
    replicated = result.filter(system="alisa", cluster="2x(none)",
                               rate_req_per_s=32.0)[0]
    # One big node pools its KV budget; two replicas split it.
    assert sharded["kv_budget_tokens"] > replicated["kv_budget_tokens"]


@pytest.mark.benchmark(group="serving")
def test_bench_serving_multi_gpu_tp(benchmark, record_rows):
    """Sharded serving: single-GPU vs 2-GPU tensor parallel in one sweep."""
    result = benchmark(run_experiment, "serving_rate_sweep",
                       rates=(8.0, 32.0), num_requests=16,
                       input_len=256, output_len=128,
                       parallelism=("none", "tp-2"))
    record_rows(benchmark, result)
    single = result.filter(system="alisa", parallelism="none",
                           rate_req_per_s=32.0)[0]
    sharded = result.filter(system="alisa", parallelism="tp-2",
                            rate_req_per_s=32.0)[0]
    assert sharded["kv_budget_tokens"] > single["kv_budget_tokens"]
    assert sharded["p99_ttft_s"] <= single["p99_ttft_s"]
    assert sharded["comm_time_share"] > 0.0
