"""Machine-speed calibration benchmark for the CI perf-regression gate.

The serving benchmarks are interpreter-bound, so their absolute wall-clock
shifts with the runner the suite lands on.  This benchmark spins a fixed
pure-Python workload whose cost tracks interpreter speed; the regression
gate (``tools/check_bench_regression.py --calibrate``) divides every
benchmark mean by it, comparing machine-normalized times instead of raw
seconds so a slower CI runner does not read as a code regression.
"""

from __future__ import annotations

import pytest


def _spin() -> float:
    total = 0.0
    for i in range(200_000):
        total += (i % 7) * 0.5 - (i % 3)
    return total


@pytest.mark.benchmark(group="calibration")
def test_bench_calibration_interpreter(benchmark):
    result = benchmark(_spin)
    assert result != 0.0
