"""Benchmarks for the scheduler optimizer and its incremental re-solve layer.

``test_bench_serving_incremental_speedup`` is the acceptance benchmark for
the serving hot path: it serves the ``serving_rate_sweep`` arrival trace at
the highest arrival rate through a cold-cache incremental engine and
compares against the pre-cache behaviour (a full offline grid search per
decode epoch, ``FULL_RESOLVE_POLICY``).  The measured ratio is attached to
``extra_info`` so the CI artifact (``BENCH_optimizer.json``) documents the
speedup, and the test fails outright below 5x.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import AlisaSystem
from repro.core.schedule_cache import FULL_RESOLVE_POLICY
from repro.core.swa import SWAConfig
from repro.core.optimizer import SchedulerOptimizer
from repro.hardware.presets import hardware_for_model
from repro.model.config import get_config
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import LLMCostModel
from repro.workloads.arrivals import generate_requests
from repro.workloads.descriptors import ALPACA_WORKLOAD

MODEL = "opt-6.7b"


def make_optimizer() -> SchedulerOptimizer:
    cost_model = LLMCostModel(get_config(MODEL), hardware_for_model(MODEL))
    return SchedulerOptimizer(cost_model, ALPACA_WORKLOAD,
                              SWAConfig.from_sparsity(0.8), kv_dtype="int8")


@pytest.mark.benchmark(group="optimizer")
def test_bench_optimizer_full_grid(benchmark):
    """The paper's offline search (Section V-A) on the Alpaca workload."""
    solution = benchmark(lambda: make_optimizer().solve())
    benchmark.extra_info["evaluated_candidates"] = \
        solution.evaluated_candidates
    assert solution.estimated_time > 0


@pytest.mark.benchmark(group="optimizer")
def test_bench_optimizer_incremental_grid(benchmark):
    """Same search through the vectorized objective (cold, no warm start)."""
    solution = benchmark(lambda: make_optimizer().solve_incremental())
    reference = make_optimizer().solve()
    benchmark.extra_info["evaluated_candidates"] = \
        solution.evaluated_candidates
    assert solution.config == reference.config


@pytest.mark.benchmark(group="optimizer")
def test_bench_serving_incremental_speedup(benchmark):
    """Cold-cache incremental serving vs a full re-solve per epoch (>= 5x)."""
    hardware = hardware_for_model(MODEL)
    requests = generate_requests(24, 16.0, input_len=256, output_len=256,
                                 seed=0)

    start = time.perf_counter()
    full_trace = ContinuousBatchingEngine(
        AlisaSystem(MODEL, hardware, kv_sparsity=0.8,
                    schedule_policy=FULL_RESOLVE_POLICY)).serve(requests)
    full_resolve_seconds = time.perf_counter() - start

    def serve_cold_incremental():
        engine = ContinuousBatchingEngine(
            AlisaSystem(MODEL, hardware, kv_sparsity=0.8))
        return engine.serve(requests)

    trace = benchmark(serve_cold_incremental)
    incremental_seconds = benchmark.stats.stats.mean
    speedup = full_resolve_seconds / incremental_seconds
    benchmark.extra_info["full_resolve_seconds"] = full_resolve_seconds
    benchmark.extra_info["speedup_vs_full_resolve"] = speedup
    benchmark.extra_info["scheduler"] = trace.metadata["scheduler"]

    assert speedup >= 5.0
    # The schedules the cache serves must price the same workload within
    # the documented drift bound of the full re-solve.
    full_summary = full_trace.summary()
    incremental_summary = trace.summary()
    for metric in ("p99_ttft_s", "p99_tpot_s", "duration_s"):
        assert incremental_summary[metric] == pytest.approx(
            full_summary[metric], rel=0.05)
