"""Quickstart: run ALISA's Sparse Window Attention on a toy model.

This example walks the three layers of the library:

1. build an executable NumPy transformer,
2. generate text with dense attention and with SWA at 80% KV sparsity,
3. simulate the same model at paper scale on a single GPU-CPU node and
   compare ALISA's throughput against a FlexGen-style baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.attention import make_policy
from repro.baselines import FlexGenSystem
from repro.core.engine import AlisaSystem
from repro.hardware import hardware_for_model
from repro.model import build_random_model, generate
from repro.workloads import ALPACA_WORKLOAD, sample_prompts


def functional_demo() -> None:
    """Generate tokens with dense attention vs. SWA on a tiny model."""
    model = build_random_model("opt-tiny", seed=0)
    prompts = sample_prompts(batch_size=2, prompt_len=32,
                             vocab_size=model.config.vocab_size, seed=0)

    dense = generate(model, prompts, max_new_tokens=16,
                     policy=make_policy("dense"))
    swa = generate(model, prompts, max_new_tokens=16,
                   policy=make_policy("swa", kv_sparsity=0.8))

    agreement = (dense.generated_tokens == swa.generated_tokens).mean()
    print("== functional model ==")
    print(f"dense KV cache at the end : {dense.kv_bytes_per_step[-1] / 1e6:.2f} MB")
    print(f"tokens attended by SWA    : "
          f"{len(swa.records[-1].key_positions[0])} of {swa.records[-1].seq_len}")
    print(f"dense/SWA token agreement : {agreement:.0%}")


def system_demo() -> None:
    """Simulate OPT-13B inference on a V100-32GB node."""
    model = "opt-13b"
    hardware = hardware_for_model(model)
    workload = ALPACA_WORKLOAD.with_batch_size(32)

    flexgen = FlexGenSystem(model, hardware).run(workload)
    alisa_system = AlisaSystem(model, hardware, kv_sparsity=0.8)
    alisa = alisa_system.run(workload)

    print("\n== system simulation ==")
    print(f"workload                  : {workload.batch_size} x "
          f"({workload.input_len} in + {workload.output_len} out) on {hardware.name}")
    print(f"FlexGen throughput        : {flexgen.throughput:8.1f} tokens/s")
    print(f"ALISA throughput          : {alisa.throughput:8.1f} tokens/s")
    print(f"ALISA speedup             : {alisa.throughput / flexgen.throughput:.2f}x")
    print(f"ALISA schedule            : {alisa_system.schedule_solution.config}")


if __name__ == "__main__":
    functional_demo()
    system_demo()
