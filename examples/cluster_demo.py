"""Cluster serving demo: scale-up vs scale-out at equal GPU count.

Spends four V100s three ways on the same arrival traces — one TP-4 node,
two TP-2 replicas, four single-GPU replicas — and shows the trade the
paper's throughput story implies at cluster scale: sharding multiplies the
KV budget of one replica (admitting more concurrent requests per node),
replication multiplies the number of independent decode loops (no
collective-communication tax), and the router decides how well the
replicas share the load.  A second sweep holds the cluster fixed and
compares routing policies on a bursty ShareGPT-style trace, where
join-shortest-queue sustains a higher arrival rate than blind round-robin.

A session section (:func:`session_section`, importable — the snippet in
``docs/workloads.md`` runs it small in CI) serves a multi-turn chat mix
with interactive and batch tiers through the cluster, comparing
session-affinity routing (every turn lands where its prefix KV lives)
against plain JSQ, and reporting per-class goodput plus the prefix-cache
hit rate.

An observability section (:func:`observability_section`) serves a
heavier session mix with ``preemption="retain"`` and a
:class:`~repro.obs.SpanTracer` attached, printing the per-class
SLO-violation blame table (queueing vs prefill vs preemption vs decode)
and exporting a Perfetto-loadable Chrome trace — see
``docs/observability.md``.

A fault-recovery section (:func:`fault_section`) crashes one replica
mid-trace under a :class:`~repro.faults.FaultSchedule` and serves the
same trace three ways — no faults, faults with retry/backoff
re-dispatch, and faults plus degraded-mode load shedding — reporting
availability, retries, and the interactive-tier goodput each way; see
``docs/robustness.md``.

A final section serves a 50,000-request stream through the cluster in
``record_mode="streaming"`` — the bounded-memory event-driven path that
scales to the million-request benchmark row
(`benchmarks/test_bench_serving.py::test_bench_serving_million`).

Run with:  python examples/cluster_demo.py
"""

from __future__ import annotations

import time

from repro.baselines import VLLMSystem
from repro.cluster import ReplicaGroup
from repro.experiments import run_experiment
from repro.experiments.serving import max_sustained_rate
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    LoadShedder,
    RetryPolicy,
)
from repro.hardware.presets import V100_16GB_NODE
from repro.obs import SpanTracer, format_blame_table
from repro.workloads.arrivals import RequestStream
from repro.workloads.sessions import sessions

LAYOUTS = ("tp-4", "2x(tp-2)", "4x(tp-1)")
LAYOUT_COLUMNS = ("p99_ttft_s", "mean_queueing_delay_s",
                  "throughput_tokens_per_s", "kv_budget_tokens")
ROUTING = ("round-robin", "jsq", "least-loaded")
ROUTING_COLUMNS = ("mean_queueing_delay_s", "p99_ttft_s",
                   "tokens_imbalance")

#: Per-class (TTFT, TPOT) SLOs for the session section: chat turns must
#: start fast; batch jobs only need to finish eventually.
SESSION_SLOS = {"interactive": (2.0, 0.1), "batch": (20.0, 1.0)}

#: Tighter SLOs for the observability section — attribution explains
#: *violations*, so this section holds batch work to bounds the loaded
#: cluster actually misses (the session section's 20s batch TTFT is met
#: even under preemption).
ATTRIBUTION_SLOS = {"interactive": (2.0, 0.1), "batch": (5.0, 0.03)}


def session_section(num_sessions: int = 32, rate: float = 6.0,
                    num_replicas: int = 2, seed: int = 0,
                    quiet: bool = False) -> dict:
    """Serve a ShareGPT-shaped session mix through a replica cluster.

    Builds a ``num_replicas``-way single-GPU vLLM cluster, lowers a
    multi-turn session workload (half interactive chat, half batch jobs)
    to a request trace, and serves it twice — once with session-affinity
    routing, once with plain JSQ — printing per-class goodput and the
    prefix-cache hit rate each way.  Returns the session-affinity serve's
    summary dict (plus ``prefix_hit_rate_jsq``) so callers — including
    the ``docs/workloads.md`` snippet that runs this function small in
    CI — can assert on it.
    """
    workload = sessions(num_sessions, rate, seed=seed,
                        interactive_fraction=0.5, mean_turns=3.0,
                        max_context=1024, mean_new_input=48, mean_output=64)
    requests = workload.requests()
    group = ReplicaGroup.from_layout(
        lambda node, parallelism: VLLMSystem("opt-6.7b", node,
                                             parallelism=parallelism),
        f"{num_replicas}x(none)", V100_16GB_NODE)

    def serve(policy):
        return group.serve(requests, policy=policy, seed=seed,
                           class_slos=SESSION_SLOS)

    sticky, scattered = serve("session-affinity"), serve("jsq")
    if not quiet:
        print(f"\n# Sessions: {num_sessions} conversations "
              f"({len(requests)} turns) through {num_replicas} vLLM "
              "replicas, interactive vs batch tiers")
        print(f"{'routing':>18s} {'prefix_hit_rate':>16s} "
              f"{'goodput_int':>12s} {'goodput_batch':>14s}")
        for policy, trace in (("session-affinity", sticky),
                              ("jsq", scattered)):
            per_class = trace.per_class_summary(SESSION_SLOS)
            print(f"{policy:>18s} {trace.prefix_hit_rate:>16.3f} "
                  f"{per_class['interactive']['goodput_tokens_per_s']:>12.1f}"
                  f" {per_class['batch']['goodput_tokens_per_s']:>14.1f}")
        print("(Session-affinity pins every turn to the replica holding "
              "its prefix KV, so follow-up turns pay suffix-only prefill; "
              "JSQ scatters turns and the prefix cache misses whenever a "
              "conversation hops replicas.)")
    summary = sticky.summary()
    summary["per_class"] = sticky.per_class_summary(SESSION_SLOS)
    summary["prefix_hit_rate_jsq"] = scattered.prefix_hit_rate
    return summary


def observability_section(num_sessions: int = 32, rate: float = 12.0,
                          num_replicas: int = 2, seed: int = 0,
                          quiet: bool = False) -> dict:
    """Attribute session-mix SLO violations with a :class:`SpanTracer`.

    Serves a heavier session mix (long contexts, so the KV budget is
    actually contended) with priority preemption on
    (``preemption="retain"``: interactive arrivals evict running batch
    work at epoch boundaries, KV swapped out and back) and a span tracer
    attached, then prints the per-class blame table the tracer leaves in
    ``trace.metadata["slo_attribution"]`` — each violating request's
    latency split into queueing, prefill, preemption, and decode time —
    and exports the Chrome trace for https://ui.perfetto.dev.  Returns
    the blame table so callers can assert on it.
    """
    workload = sessions(num_sessions, rate, seed=seed,
                        interactive_fraction=0.5, mean_turns=3.0,
                        max_context=2048, mean_new_input=256,
                        mean_output=256)
    group = ReplicaGroup.from_layout(
        lambda node, parallelism: VLLMSystem("opt-6.7b", node,
                                             parallelism=parallelism),
        f"{num_replicas}x(none)", V100_16GB_NODE, preemption="retain")
    tracer = SpanTracer()
    trace = group.serve(workload.requests(), policy="session-affinity",
                        seed=seed, class_slos=ATTRIBUTION_SLOS,
                        observers=[tracer])
    table = trace.metadata["slo_attribution"]
    if not quiet:
        print(f"\n# Observability: heavy session mix, preemption=retain, "
              f"SpanTracer attached ({num_replicas} replicas)")
        print(format_blame_table(table))
        print("(Queueing dominates the batch tier — long contexts wait "
              "out the KV budget, and the preemption column is the time "
              "batch work spent swapped out for interactive arrivals; "
              "the interactive tier mostly blames decode.  Simulated "
              f"{trace.duration:.1f}s of serving in "
              f"{trace.metadata['wall_clock_s']:.2f}s of wall clock.)")
        exported = tracer.export("cluster_demo_trace.json")
        print(f"Chrome trace written to {exported} — load it in "
              "https://ui.perfetto.dev (one process per replica, one "
              "track per SLO class).")
    return table


def fault_section(num_sessions: int = 32, rate: float = 12.0,
                  num_replicas: int = 2, seed: int = 0,
                  quiet: bool = False) -> dict:
    """Crash one replica mid-trace and compare recovery strategies.

    Serves the observability section's heavy session mix three ways
    through a ``num_replicas``-way vLLM cluster with JSQ routing: without
    faults, with a mid-trace crash plus retry/backoff re-dispatch, and
    with degraded-mode load shedding on top (batch arrivals dropped while
    a replica is down).  Prints completion accounting, availability, and
    the interactive-tier goodput each way; returns the per-strategy rows
    so callers can assert on them.
    """
    workload = sessions(num_sessions, rate, seed=seed,
                        interactive_fraction=0.5, mean_turns=3.0,
                        max_context=2048, mean_new_input=256,
                        mean_output=256)
    requests = workload.requests()
    group = ReplicaGroup.from_layout(
        lambda node, parallelism: VLLMSystem("opt-6.7b", node,
                                             parallelism=parallelism),
        f"{num_replicas}x(none)", V100_16GB_NODE, preemption="retain")
    faults = FaultSchedule([FaultEvent(num_replicas - 1, 1.0, 3.0,
                                       mode="crash")])
    retry = RetryPolicy(max_retries=3, backoff_s=0.05)
    strategies = (
        ("no faults", {}),
        ("crash + retry", {"faults": faults, "retry": retry}),
        ("crash + shedding", {"faults": faults, "retry": retry,
                              "shedding": LoadShedder()}),
    )
    rows = {}
    for name, kwargs in strategies:
        trace = group.serve(requests, policy="jsq", seed=seed,
                            class_slos=SESSION_SLOS, **kwargs)
        per_class = trace.per_class_summary(SESSION_SLOS)
        resilience = trace.metadata.get("resilience") or {}
        rows[name] = {
            "completed": len(trace.completed_records),
            "failed": trace.num_failed,
            "shed": trace.num_shed,
            "retries": trace.num_retries,
            "availability": resilience.get("availability", 1.0),
            "goodput_interactive": per_class.get("interactive", {}).get(
                "goodput_tokens_per_s", 0.0),
        }
    if not quiet:
        print(f"\n# Fault recovery: replica {num_replicas - 1} crashes at "
              "t=1.0s and rejoins cold at t=3.0s (session mix, JSQ, "
              "preemption=retain)")
        print(f"{'strategy':>18s} {'completed':>10s} {'failed':>7s} "
              f"{'shed':>5s} {'retries':>8s} {'avail':>7s} "
              f"{'goodput_int':>12s}")
        for name, row in rows.items():
            print(f"{name:>18s} {row['completed']:>10d} "
                  f"{row['failed']:>7d} {row['shed']:>5d} "
                  f"{row['retries']:>8d} {row['availability']:>7.3f} "
                  f"{row['goodput_interactive']:>12.1f}")
        print("(The crash loses the replica's resident KV: interrupted "
              "requests back off and re-dispatch to the survivor, which "
              "re-prefills them from scratch.  Shedding drops batch "
              "arrivals while the cluster is degraded, keeping the "
              "interactive tier's goodput closer to the fault-free "
              "serve — see docs/robustness.md.)")
    return rows


def main() -> None:
    result = run_experiment("serving_rate_sweep", model="opt-6.7b",
                            rates=(16.0, 64.0), num_requests=32,
                            input_len=256, output_len=256,
                            cluster=LAYOUTS, routing="jsq")
    print("# Equal-GPU clusters: ALISA on 4 V100s, Poisson arrivals, "
          "32 requests (s=256, n=256), JSQ routing")
    header = f"{'rate':>6s} {'cluster':>9s} " + " ".join(
        f"{col:>24s}" for col in LAYOUT_COLUMNS)
    print(header)
    for row in result.filter(system="alisa"):
        cells = " ".join(f"{row[col]:>24.3f}" for col in LAYOUT_COLUMNS)
        print(f"{row['rate_req_per_s']:>6.1f} {row['cluster']:>9s} {cells}")
    print("(TP-4 concentrates the whole node budget on one engine and pays "
          "all-reduces; 4x(none) runs four cheap independent engines but "
          "each admits against a quarter of the memory.)")

    # ------------------------------------------------------------------ #
    # routing policies on a bursty heavy-tailed trace
    # ------------------------------------------------------------------ #
    bursty = run_experiment("serving_rate_sweep", model="opt-6.7b",
                            rates=(16.0, 32.0), num_requests=40,
                            pattern="bursty", input_len=None,
                            output_len=None, seed=0,
                            cluster=("2x(tp-1)",), routing=ROUTING)
    print("\n# Routing policies: 2 single-GPU ALISA replicas, bursty "
          "ShareGPT-style trace, 40 requests")
    header = f"{'rate':>6s} {'routing':>13s} " + " ".join(
        f"{col:>24s}" for col in ROUTING_COLUMNS)
    print(header)
    for row in bursty.filter(system="alisa"):
        cells = " ".join(f"{row[col]:>24.3f}" for col in ROUTING_COLUMNS)
        print(f"{row['rate_req_per_s']:>6.1f} {row['routing']:>13s} {cells}")
    for policy in ("round-robin", "jsq"):
        rate = max_sustained_rate(bursty, system="alisa",
                                  cluster="2x(tp-1)", routing=policy,
                                  max_queueing_delay_s=0.13)
        print(f"max sustained rate ({policy}): {rate:.1f} req/s "
              "(mean queueing delay <= 0.13s)")
    print("(Round-robin splits requests evenly by count, so heavy-tailed "
          "conversations pile onto one replica during bursts; JSQ watches "
          "outstanding KV tokens — the admission currency — and drains "
          "both replicas.)")

    # ------------------------------------------------------------------ #
    # multi-turn sessions: prefix reuse and SLO tiers across replicas
    # ------------------------------------------------------------------ #
    session_section()

    # ------------------------------------------------------------------ #
    # observability: SLO-violation attribution under preemption
    # ------------------------------------------------------------------ #
    observability_section()

    # ------------------------------------------------------------------ #
    # fault recovery: outage, retry re-dispatch, degraded-mode shedding
    # ------------------------------------------------------------------ #
    fault_section()

    # ------------------------------------------------------------------ #
    # streaming record mode: large traces in bounded memory
    # ------------------------------------------------------------------ #
    n_stream = 50_000
    group = ReplicaGroup.from_layout(
        lambda node, parallelism: VLLMSystem("opt-6.7b", node,
                                             parallelism=parallelism),
        "2x(none)", V100_16GB_NODE, policy="round-robin")
    stream = RequestStream(n_stream, rate=16.0, pattern="poisson", seed=0,
                           input_len=128, output_len=64)
    start = time.perf_counter()
    trace = group.serve(stream, record_mode="streaming")
    elapsed = time.perf_counter() - start
    summary = trace.summary()
    print(f"\n# Streaming mode: {n_stream:,} requests through 2 vLLM "
          "replicas, no per-request records retained")
    print(f"served {summary['num_requests']:,} requests in {elapsed:.1f}s "
          f"({1e6 * elapsed / n_stream:.0f} us/request)")
    print(f"throughput {summary['throughput_tokens_per_s']:.0f} tok/s, "
          f"mean queueing delay {summary['mean_queueing_delay_s']:.3f}s, "
          f"p99 TTFT (P^2 estimate) {summary['p99_ttft_s']:.3f}s")
    print(f"dispatch counts: {trace.metadata['routing']['dispatch_counts']}")
    print("(The same event-driven path scales to one million requests "
          "under a flat memory ceiling — see "
          "benchmarks/test_bench_serving.py::test_bench_serving_million.)")


if __name__ == "__main__":
    main()
