"""Reproduce a slice of Figure 8: accuracy versus KV sparsity.

Evaluates dense, local, strided, and SWA attention (plus SWA with INT8 KV
compression, i.e. the full ALISA configuration) on the synthetic COPA and
WikiText-2 stand-ins at several KV sparsities, and prints the accuracy /
negative-perplexity table.

Run with:  python examples/accuracy_sweep.py
"""

from __future__ import annotations

from repro.evaluation import sweep_sparsity
from repro.workloads import LM_DATASETS, QA_DATASETS


def main() -> None:
    model = "opt-13b"
    for dataset in (QA_DATASETS["copa"], LM_DATASETS["wikitext-2"]):
        print(f"\n=== {model} on {dataset.name} ({dataset.task_type}) ===")
        results = sweep_sparsity(model, dataset,
                                 sparsities=(0.0, 0.2, 0.5, 0.8),
                                 num_sequences=4)
        header = f"{'method':<18s} {'KV sparsity':>12s} {'metric':>12s}"
        print(header)
        print("-" * len(header))
        for row in results:
            label = row.policy + (" + int8" if row.compressed else "")
            print(f"{label:<18s} {row.kv_sparsity:>11.0%} "
                  f"{row.metric_value:>12.3f}")


if __name__ == "__main__":
    main()
