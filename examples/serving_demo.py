"""Online serving demo: continuous batching of ALISA versus baselines.

Generates a deterministic Poisson arrival trace of Alpaca-shaped requests,
serves it through the continuous-batching engine on top of FlexGen, vLLM,
and ALISA simulators, and prints tail latency (TTFT/TPOT), throughput, and
SLO goodput at several arrival rates.  At low rates every system idles
between requests and ties; as the rate grows, ALISA's INT8 KV cache admits
roughly twice as many concurrent requests, so its queueing delay — and with
it p99 TTFT — stays flat long after the baselines saturate.

A second sweep walks the parallelism axis: the same trace served on 1-, 2-,
and 4-GPU NVLink nodes (equal per-GPU memory) under tensor and pipeline
parallelism, showing how the sharded KV budget and the collective-
communication share trade off as the node grows.

A third sweep walks the cluster axis (`repro.cluster`): the same four GPUs
spent as one TP-4 node versus two TP-2 replicas behind a
join-shortest-queue router — see examples/cluster_demo.py for the full
scale-up vs scale-out and routing-policy story.

A final section serves a multi-turn chat workload closed loop (follow-up
turns arrive at their previous turn's *simulated* completion plus think
time) with chunked prefill, showing the preemption latency of interactive
turns bounded by one chunk's priced duration instead of a whole prompt's
prefill.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

from repro.experiments import run_experiment
from repro.experiments.serving import max_sustained_rate
from repro.workloads import sessions

RATES = (1.0, 4.0, 16.0)
COLUMNS = ("p50_ttft_s", "p99_ttft_s", "p50_tpot_s",
           "throughput_tokens_per_s", "goodput_tokens_per_s")
PARALLELISM = ("none", "tp-2", "tp-4", "pp-2", "pp-4")
PARALLEL_COLUMNS = ("p99_ttft_s", "mean_queueing_delay_s",
                    "throughput_tokens_per_s", "comm_time_share",
                    "peak_shard_occupancy")


def main() -> None:
    result = run_experiment("serving_rate_sweep", model="opt-6.7b",
                            rates=RATES, num_requests=24)
    print("# Continuous-batching serving: OPT-6.7B, Poisson arrivals, "
          "24 requests (s=256, n=256)")
    print(f"SLOs: TTFT <= {result.notes['ttft_slo_s']}s, "
          f"TPOT <= {result.notes['tpot_slo_s']}s")
    header = f"{'rate':>6s} {'system':>8s} " + " ".join(
        f"{col:>24s}" for col in COLUMNS)
    print(header)
    for rate in RATES:
        for row in result.filter(rate_req_per_s=rate):
            cells = " ".join(f"{row[col]:>24.3f}" for col in COLUMNS)
            print(f"{rate:>6.1f} {row['system']:>8s} {cells}")
    alisa_rows = result.filter(system="alisa")
    solves = sum(r["solver_full_solves"] + r["solver_warm_solves"]
                 for r in alisa_rows)
    reuses = sum(r["solver_exact_hits"] + r["solver_canonical_hits"]
                 for r in alisa_rows)
    print(f"\nALISA scheduler cache: {solves} searches, {reuses} reuses "
          "across the sweep (see repro.core.schedule_cache).")
    print("(ALISA's compressed KV budget admits ~2x the concurrent "
          "requests, flattening tail latency under load.)")

    # ------------------------------------------------------------------ #
    # parallelism axis: the same trace on 1/2/4-GPU NVLink nodes
    # ------------------------------------------------------------------ #
    parallel = run_experiment("serving_rate_sweep", model="opt-6.7b",
                              rates=(16.0, 48.0), num_requests=24,
                              parallelism=PARALLELISM)
    print("\n# Multi-GPU serving: ALISA on 1/2/4-GPU NVLink nodes "
          "(equal per-GPU memory)")
    header = f"{'rate':>6s} {'parallel':>9s} " + " ".join(
        f"{col:>24s}" for col in PARALLEL_COLUMNS)
    print(header)
    for row in parallel.filter(system="alisa"):
        cells = " ".join(f"{row[col]:>24.3f}" for col in PARALLEL_COLUMNS)
        print(f"{row['rate_req_per_s']:>6.1f} {row['parallelism']:>9s} {cells}")
    for label in ("none", "tp-4"):
        rate = max_sustained_rate(parallel, system="alisa", parallelism=label,
                                  max_queueing_delay_s=0.1)
        print(f"max sustained rate ({label}): {rate:.1f} req/s "
              "(mean queueing delay <= 0.1s)")
    print("(TP shards every GEMM and pays per-layer all-reduces; PP splits "
          "the layer stack and pays stage transfers plus the pipeline "
          "bubble.  Both multiply the KV budget, so tail latency stays "
          "flat at rates that saturate one GPU.)")

    # ------------------------------------------------------------------ #
    # cluster axis: the same four GPUs as one big node vs two replicas
    # ------------------------------------------------------------------ #
    cluster = run_experiment("serving_rate_sweep", model="opt-6.7b",
                             rates=(48.0,), num_requests=24,
                             cluster=("tp-4", "2x(tp-2)"), routing="jsq")
    print("\n# Cluster serving: 4 GPUs as TP-4 vs 2x(TP-2) "
          "(JSQ routing, 48 req/s)")
    for row in cluster.filter(system="alisa"):
        print(f"  {row['cluster']:>9s}: p99 TTFT {row['p99_ttft_s']:.3f}s, "
              f"throughput {row['throughput_tokens_per_s']:.0f} tok/s, "
              f"dispatch {row['dispatch_counts']}")
    print("(See examples/cluster_demo.py for the routing-policy "
          "comparison on bursty traffic.)")

    # ------------------------------------------------------------------ #
    # closed-loop chat with chunked prefill: bounded preemption latency
    # ------------------------------------------------------------------ #
    chat = sessions(32, seed=5, interactive_fraction=0.4, mean_turns=3.0,
                    max_context=2048, mean_new_input=128, mean_output=128)
    closed = run_experiment(
        "serving_rate_sweep", model="opt-6.7b", rates=(16.0,),
        workload=chat, closed_loop=True, preemption="recompute",
        prefill_chunk_tokens=128,
        slo_classes={"interactive": (2.0, 0.1), "batch": (20.0, 1.0)})
    print("\n# Closed-loop chat, chunked prefill (128-token budget, "
          "recompute preemption, 16 sessions/s)")
    for row in closed.rows:
        print(f"  {row['system']:>8s}: {row['num_preemptions']:>3d} "
              f"preemptions, p99 preemption wait "
              f"{row['p99_preemption_latency_s'] * 1e3:7.2f} ms, "
              f"{row['prefill_chunks_per_request']:.2f} chunks/request, "
              f"prefix hit rate {row['prefix_hit_rate']:.2f}")
    print("(Admission rounds between prefill chunks let interactive turns "
          "evict batch work within one chunk's priced time; follow-up "
          "turns arrive at their previous turn's simulated completion "
          "plus think time.  ALISA's compressed KV budget fits the whole "
          "working set, so it serves the same load without preempting.)")


if __name__ == "__main__":
    main()
