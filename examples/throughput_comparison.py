"""Reproduce a slice of Figure 9: throughput of ALISA versus baselines.

Simulates OPT-6.7B and OPT-30B inference on the paper's hardware
(V100-16GB and H100-80GB single GPU-CPU nodes) for the Alpaca workload at
several batch sizes and prints the throughput of DeepSpeed-ZeRO,
HuggingFace Accelerate, FlexGen, vLLM, and ALISA.

Run with:  python examples/throughput_comparison.py
"""

from __future__ import annotations

from repro.baselines import BASELINE_SYSTEMS
from repro.core.engine import AlisaSystem
from repro.hardware import hardware_for_model
from repro.workloads import ALPACA_WORKLOAD

SYSTEMS = ("deepspeed-zero", "accelerate", "flexgen", "vllm")


def main() -> None:
    for model in ("opt-6.7b", "opt-30b"):
        hardware = hardware_for_model(model)
        print(f"\n=== {model} on {hardware.name} (input 128, output 512) ===")
        print(f"{'batch':>6s} " + " ".join(f"{name:>15s}" for name in SYSTEMS)
              + f" {'alisa':>15s}")
        for batch_size in (4, 16, 64):
            workload = ALPACA_WORKLOAD.with_batch_size(batch_size)
            cells = []
            for name in SYSTEMS:
                trace = BASELINE_SYSTEMS[name](model, hardware).run(workload)
                cells.append("OOM" if trace.oom else f"{trace.throughput:.0f}")
            alisa = AlisaSystem(model, hardware, kv_sparsity=0.8).run(workload)
            cells.append("OOM" if alisa.oom else f"{alisa.throughput:.0f}")
            print(f"{batch_size:>6d} " + " ".join(f"{c:>15s}" for c in cells))
        print("(throughput in generated tokens per second)")


if __name__ == "__main__":
    main()
