"""Workload descriptors for the system-level experiments.

A workload is the (batch size, input length, output length) triple the paper
calls ``(b, s, n)``.  The system evaluation (Figure 9) samples prompts from
the Alpaca dataset with ``s = 128`` and ``n = 512`` and sweeps the batch
size from 4 to 64; the motivation figure (Figure 1) uses three heavier
workloads on OPT-6.7B.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._common import validate_positive


@dataclass(frozen=True)
class Workload:
    """An inference workload: ``b`` sequences of ``s`` input + ``n`` output tokens."""

    batch_size: int
    input_len: int
    output_len: int
    name: str = "workload"

    def __post_init__(self) -> None:
        validate_positive(batch_size=self.batch_size, input_len=self.input_len,
                          output_len=self.output_len)

    @property
    def max_seq_len(self) -> int:
        return self.input_len + self.output_len

    @property
    def total_generated_tokens(self) -> int:
        return self.batch_size * self.output_len

    def with_batch_size(self, batch_size: int) -> "Workload":
        return replace(self, batch_size=batch_size,
                       name=f"{self.name}-b{batch_size}")


#: The throughput-evaluation workload of Section VI-A: Alpaca prompts,
#: input length 128, output length 512.
ALPACA_WORKLOAD = Workload(batch_size=16, input_len=128, output_len=512,
                           name="alpaca")

#: Batch sizes swept in Figure 9.
FIGURE9_BATCH_SIZES = (4, 8, 16, 32, 64)

#: The three motivation workloads of Figure 1 (OPT-6.7B on a V100-32GB).
FIGURE1_WORKLOADS = (
    Workload(batch_size=8, input_len=512, output_len=512, name="workload-1"),
    Workload(batch_size=32, input_len=512, output_len=512, name="workload-2"),
    Workload(batch_size=64, input_len=512, output_len=512, name="workload-3"),
)


def alpaca_batch_sweep(batch_sizes=FIGURE9_BATCH_SIZES) -> list[Workload]:
    """The Figure 9 workload sweep."""
    return [ALPACA_WORKLOAD.with_batch_size(b) for b in batch_sizes]
