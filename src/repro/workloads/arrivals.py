"""Request arrival traces for the online serving experiments.

The paper's system evaluation (Section VI) runs one offline ``(b, s, n)``
batch at a time; a serving deployment instead sees *requests* arriving over
time.  This module provides the request descriptor and deterministic
arrival-trace generators consumed by
:class:`~repro.serving.engine.ContinuousBatchingEngine`:

* :func:`poisson_arrival_times` — memoryless open-loop traffic at a fixed
  average rate (the standard serving-benchmark arrival process);
* :func:`bursty_arrival_times` — Markov-modulated bursts: short windows at a
  multiple of the base rate separated by idle gaps that restore the long-run
  average, stressing admission control and queueing;
* :func:`sharegpt_lengths` — heavy-tailed (log-normal) prompt/response
  lengths mimicking the ShareGPT conversation trace used by serving papers.

Everything is sampled through :func:`repro._common.rng`, so a trace is fully
reproducible from its seed.

Public contract
---------------
:func:`generate_requests` is the one entry point serving code should use:
it returns ``num_requests`` :class:`Request` objects with ``request_id``
equal to their index, arrival times strictly increasing, and lengths that
are either the fixed ``input_len``/``output_len`` or ShareGPT-style samples
(when either is ``None``).  The same ``(pattern, rate, seed, lengths)``
arguments always produce the identical trace — byte-for-byte — so two
engines serving the "same trace" really do see the same requests, and a
sweep can compare systems or hardware configurations row-by-row.
:class:`Request` itself is frozen and validated on construction
(positive lengths, non-negative arrival time); ``max_seq_len`` is the KV
footprint admission control reserves.  New arrival patterns register in
:data:`ARRIVAL_PATTERNS` under the name callers pass as ``pattern``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive


@dataclass(frozen=True)
class Request:
    """One serving request: an arrival time plus prompt/output lengths.

    The offline :class:`~repro.workloads.descriptors.Workload` is the
    degenerate case of ``batch_size`` identical requests all arriving at
    time zero.
    """

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int

    def __post_init__(self) -> None:
        validate_positive(input_len=self.input_len, output_len=self.output_len)
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"arrival_time must be non-negative, got {self.arrival_time!r}"
            )

    @property
    def max_seq_len(self) -> int:
        """KV tokens the request occupies once fully generated."""
        return self.input_len + self.output_len


def poisson_arrival_times(num_requests: int, rate: float,
                          seed: int | None = 0) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` requests per second."""
    validate_positive(num_requests=num_requests, rate=rate)
    gaps = rng(seed).exponential(1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrival_times(num_requests: int, rate: float,
                         seed: int | None = 0, burst_size: int = 8,
                         burst_factor: float = 8.0) -> np.ndarray:
    """Bursty arrivals with long-run average ``rate`` requests per second.

    Requests arrive in bursts of ``burst_size`` at ``burst_factor`` times the
    base rate; each burst is followed by an idle gap sized so the long-run
    average matches ``rate``.
    """
    validate_positive(num_requests=num_requests, rate=rate,
                      burst_size=burst_size)
    if burst_factor <= 1.0:
        raise ConfigurationError(
            f"burst_factor must exceed 1, got {burst_factor!r}"
        )
    generator = rng(seed)
    times: list[float] = []
    clock = 0.0
    while len(times) < num_requests:
        burst = min(burst_size, num_requests - len(times))
        for _ in range(burst):
            clock += generator.exponential(1.0 / (rate * burst_factor))
            times.append(clock)
        # Idle gap restoring the average: the burst compressed `burst / rate`
        # seconds of traffic into `burst / (rate * burst_factor)` seconds.
        clock += generator.exponential(
            (burst_factor - 1.0) * burst / (rate * burst_factor)
        )
    return np.asarray(times)


def sharegpt_lengths(num_requests: int, seed: int | None = 0,
                     mean_input: int = 128, mean_output: int = 256,
                     sigma: float = 0.8, max_len: int = 2048
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Heavy-tailed prompt/response lengths in the style of ShareGPT.

    Lengths are log-normal with the requested means and shape ``sigma``
    (most requests short, a fat tail of very long conversations), clipped to
    ``[1, max_len]`` and rounded to integers.
    """
    validate_positive(num_requests=num_requests, mean_input=mean_input,
                      mean_output=mean_output, sigma=sigma, max_len=max_len)
    generator = rng(seed)

    def sample(mean: int) -> np.ndarray:
        mu = np.log(mean) - sigma ** 2 / 2.0  # keeps E[length] = mean
        lengths = generator.lognormal(mu, sigma, size=num_requests)
        return np.clip(np.round(lengths), 1, max_len).astype(int)

    return sample(mean_input), sample(mean_output)


#: Registry of arrival-time generators keyed by trace-pattern name.
ARRIVAL_PATTERNS = {
    "poisson": poisson_arrival_times,
    "bursty": bursty_arrival_times,
}


def generate_requests(num_requests: int, rate: float,
                      pattern: str = "poisson", seed: int | None = 0,
                      input_len: int | None = None,
                      output_len: int | None = None,
                      **length_kwargs) -> list[Request]:
    """Build a deterministic request trace.

    Fixed ``input_len``/``output_len`` give a homogeneous trace (the paper's
    Alpaca setting spread over time); leaving either ``None`` samples the
    missing lengths from the ShareGPT-style heavy-tailed distribution, with
    ``length_kwargs`` forwarded to :func:`sharegpt_lengths`.
    """
    try:
        arrival_fn = ARRIVAL_PATTERNS[pattern]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown arrival pattern {pattern!r}; "
            f"known: {sorted(ARRIVAL_PATTERNS)}"
        ) from exc
    times = arrival_fn(num_requests, rate, seed=seed)
    if input_len is None or output_len is None:
        inputs, outputs = sharegpt_lengths(
            num_requests, seed=None if seed is None else seed + 1,
            **length_kwargs)
        if input_len is not None:
            inputs = np.full(num_requests, input_len, dtype=int)
        if output_len is not None:
            outputs = np.full(num_requests, output_len, dtype=int)
    else:
        inputs = np.full(num_requests, input_len, dtype=int)
        outputs = np.full(num_requests, output_len, dtype=int)
    return [
        Request(request_id=i, arrival_time=float(times[i]),
                input_len=int(inputs[i]), output_len=int(outputs[i]))
        for i in range(num_requests)
    ]
