"""Request arrival traces for the online serving experiments.

The paper's system evaluation (Section VI) runs one offline ``(b, s, n)``
batch at a time; a serving deployment instead sees *requests* arriving over
time.  This module provides the request descriptor and deterministic
arrival-trace generators consumed by
:class:`~repro.serving.engine.ContinuousBatchingEngine`:

* :func:`poisson_arrival_times` — memoryless open-loop traffic at a fixed
  average rate (the standard serving-benchmark arrival process);
* :func:`bursty_arrival_times` — Markov-modulated bursts: short windows at a
  multiple of the base rate separated by idle gaps that restore the long-run
  average, stressing admission control and queueing;
* :func:`sharegpt_lengths` — heavy-tailed (log-normal) prompt/response
  lengths mimicking the ShareGPT conversation trace used by serving papers.

Everything is sampled through :func:`repro._common.rng`, so a trace is fully
reproducible from its seed.

Public contract
---------------
:func:`generate_requests` is the one entry point serving code should use:
it returns ``num_requests`` :class:`Request` objects with ``request_id``
equal to their index, arrival times strictly increasing, and lengths that
are either the fixed ``input_len``/``output_len`` or ShareGPT-style samples
(when either is ``None``).  The same ``(pattern, rate, seed, lengths)``
arguments always produce the identical trace — byte-for-byte — so two
engines serving the "same trace" really do see the same requests, and a
sweep can compare systems or hardware configurations row-by-row.
:class:`Request` itself is frozen and validated on construction
(positive lengths, non-negative arrival time); ``max_seq_len`` is the KV
footprint admission control reserves.  New arrival patterns register in
:data:`ARRIVAL_PATTERNS` under the name callers pass as ``pattern``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive

#: Priority SLO classes, highest priority first.  ``"interactive"``
#: requests are latency-sensitive (chat turns); ``"batch"`` requests are
#: throughput work (summarization jobs, evals) that a preemption-enabled
#: engine may evict at epoch boundaries to make room for interactive
#: arrivals.  The tuple order is the priority order.
SLO_CLASSES = ("interactive", "batch")


@dataclass(frozen=True)
class Request:
    """One serving request: an arrival time plus prompt/output lengths.

    The offline :class:`~repro.workloads.descriptors.Workload` is the
    degenerate case of ``batch_size`` identical requests all arriving at
    time zero.  ``slo_class`` tags the request with its priority tier (see
    :data:`SLO_CLASSES`); it defaults to ``"interactive"`` and is inert
    unless the serving engine enables preemption or a trace is summarised
    per class.
    """

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int
    slo_class: str = "interactive"

    def __post_init__(self) -> None:
        validate_positive(input_len=self.input_len, output_len=self.output_len)
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"arrival_time must be non-negative, got {self.arrival_time!r}"
            )
        if self.slo_class not in SLO_CLASSES:
            raise ConfigurationError(
                f"unknown slo_class {self.slo_class!r}; "
                f"known: {list(SLO_CLASSES)}"
            )

    @property
    def max_seq_len(self) -> int:
        """KV tokens the request occupies once fully generated."""
        return self.input_len + self.output_len


def poisson_arrival_times(num_requests: int, rate: float,
                          seed: int | None = 0) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` requests per second."""
    validate_positive(num_requests=num_requests, rate=rate)
    gaps = rng(seed).exponential(1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrival_times(num_requests: int, rate: float,
                         seed: int | None = 0, burst_size: int = 8,
                         burst_factor: float = 8.0) -> np.ndarray:
    """Bursty arrivals with long-run average ``rate`` requests per second.

    Requests arrive in bursts of ``burst_size`` at ``burst_factor`` times the
    base rate; each burst is followed by an idle gap sized so the long-run
    average matches ``rate``.
    """
    validate_positive(num_requests=num_requests, rate=rate,
                      burst_size=burst_size)
    if burst_factor <= 1.0:
        raise ConfigurationError(
            f"burst_factor must exceed 1, got {burst_factor!r}"
        )
    generator = rng(seed)
    times: list[float] = []
    clock = 0.0
    while len(times) < num_requests:
        burst = min(burst_size, num_requests - len(times))
        for _ in range(burst):
            clock += generator.exponential(1.0 / (rate * burst_factor))
            times.append(clock)
        # Idle gap restoring the average: the burst compressed `burst / rate`
        # seconds of traffic into `burst / (rate * burst_factor)` seconds.
        clock += generator.exponential(
            (burst_factor - 1.0) * burst / (rate * burst_factor)
        )
    return np.asarray(times)


def sharegpt_lengths(num_requests: int, seed: int | None = 0,
                     mean_input: int = 128, mean_output: int = 256,
                     sigma: float = 0.8, max_len: int = 2048
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Heavy-tailed prompt/response lengths in the style of ShareGPT.

    Lengths are log-normal with the requested means and shape ``sigma``
    (most requests short, a fat tail of very long conversations), clipped to
    ``[1, max_len]`` and rounded to integers.
    """
    validate_positive(num_requests=num_requests, mean_input=mean_input,
                      mean_output=mean_output, sigma=sigma, max_len=max_len)
    generator = rng(seed)

    def sample(mean: int) -> np.ndarray:
        mu = np.log(mean) - sigma ** 2 / 2.0  # keeps E[length] = mean
        lengths = generator.lognormal(mu, sigma, size=num_requests)
        return np.clip(np.round(lengths), 1, max_len).astype(int)

    return sample(mean_input), sample(mean_output)


#: Registry of arrival-time generators keyed by trace-pattern name.
ARRIVAL_PATTERNS = {
    "poisson": poisson_arrival_times,
    "bursty": bursty_arrival_times,
}


def generate_requests(num_requests: int, rate: float,
                      pattern: str = "poisson", seed: int | None = 0,
                      input_len: int | None = None,
                      output_len: int | None = None,
                      **length_kwargs) -> list[Request]:
    """Build a deterministic request trace.

    Fixed ``input_len``/``output_len`` give a homogeneous trace (the paper's
    Alpaca setting spread over time); leaving either ``None`` samples the
    missing lengths from the ShareGPT-style heavy-tailed distribution, with
    ``length_kwargs`` forwarded to :func:`sharegpt_lengths`.
    """
    try:
        arrival_fn = ARRIVAL_PATTERNS[pattern]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown arrival pattern {pattern!r}; "
            f"known: {sorted(ARRIVAL_PATTERNS)}"
        ) from exc
    times = arrival_fn(num_requests, rate, seed=seed)
    if input_len is None or output_len is None:
        inputs, outputs = sharegpt_lengths(
            num_requests, seed=None if seed is None else seed + 1,
            **length_kwargs)
        if input_len is not None:
            inputs = np.full(num_requests, input_len, dtype=int)
        if output_len is not None:
            outputs = np.full(num_requests, output_len, dtype=int)
    else:
        inputs = np.full(num_requests, input_len, dtype=int)
        outputs = np.full(num_requests, output_len, dtype=int)
    return [
        Request(request_id=i, arrival_time=float(times[i]),
                input_len=int(inputs[i]), output_len=int(outputs[i]))
        for i in range(num_requests)
    ]


class RequestStream:
    """A bounded-memory, re-iterable arrival trace.

    :func:`generate_requests` materializes its whole trace — fine for a
    24-request sweep row, unusable for the ROADMAP's 10^6–10^7-request
    cluster runs.  A ``RequestStream`` describes the same trace but yields
    its :class:`Request` objects one at a time from chunked draws, so peak
    memory is ``O(chunk_size)`` regardless of trace length.  Iterating
    twice replays the identical trace (every ``__iter__`` restarts from the
    stream's seed).

    Determinism contract
    --------------------
    * ``poisson``/``bursty`` arrival times are **byte-identical** to
      :func:`generate_requests`: NumPy ``Generator`` draws are chunk-
      invariant, and each chunk's running ``cumsum`` is seeded with the
      previous chunk's last arrival, reproducing the whole-trace
      sequential float adds exactly.
    * Fixed ``input_len``/``output_len`` traces therefore match
      :func:`generate_requests` request-for-request.
    * ShareGPT-style *sampled* lengths are drawn per chunk from seeds
      derived as ``(seed + 1, chunk_index)`` — fully deterministic per
      ``(seed, chunk_size)``, but **not** the same samples as the one-shot
      :func:`sharegpt_lengths` (which draws all inputs before all outputs,
      an ordering no chunked sampler can reproduce).

    Only the built-in ``"poisson"``/``"bursty"`` patterns can stream
    (custom :data:`ARRIVAL_PATTERNS` entries are whole-trace functions);
    use :func:`generate_requests` for those.

    ``length_bounds`` gives ``(max_input_len, max_output_len)`` over every
    request the stream can yield — the serving engine sizes its KV-budget
    probe from these, exactly as it sizes it from a list's maxima.
    """

    def __init__(self, num_requests: int, rate: float,
                 pattern: str = "poisson", seed: int | None = 0,
                 input_len: int | None = None,
                 output_len: int | None = None,
                 chunk_size: int = 8192,
                 burst_size: int = 8, burst_factor: float = 8.0,
                 **length_kwargs) -> None:
        validate_positive(num_requests=num_requests, rate=rate,
                          chunk_size=chunk_size, burst_size=burst_size)
        if pattern not in ("poisson", "bursty"):
            raise ConfigurationError(
                f"RequestStream supports the built-in patterns "
                f"['bursty', 'poisson']; got {pattern!r} — materialize "
                f"custom patterns with generate_requests instead"
            )
        if burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst_factor must exceed 1, got {burst_factor!r}"
            )
        self.num_requests = num_requests
        self.rate = rate
        self.pattern = pattern
        self.seed = seed
        self.input_len = input_len
        self.output_len = output_len
        self.chunk_size = chunk_size
        self.burst_size = burst_size
        self.burst_factor = burst_factor
        self._length_kwargs = dict(length_kwargs)
        # sharegpt_lengths clips to [1, max_len]; fixed lengths bound
        # themselves.
        max_len = self._length_kwargs.get("max_len", 2048)
        self._max_input = input_len if input_len is not None else max_len
        self._max_output = output_len if output_len is not None else max_len

    # ------------------------------------------------------------------ #
    @property
    def length_bounds(self) -> tuple[int, int]:
        """``(max_input_len, max_output_len)`` over the whole stream."""
        return self._max_input, self._max_output

    def __len__(self) -> int:
        return self.num_requests

    def __iter__(self):
        index = 0
        for chunk_index, times in enumerate(self._time_chunks()):
            inputs, outputs = self._chunk_lengths(chunk_index, len(times))
            for offset in range(len(times)):
                yield Request(request_id=index,
                              arrival_time=float(times[offset]),
                              input_len=int(inputs[offset]),
                              output_len=int(outputs[offset]))
                index += 1

    # ------------------------------------------------------------------ #
    def _time_chunks(self):
        """Yield absolute arrival times, one ``chunk_size`` array at a time."""
        generator = rng(self.seed)
        if self.pattern == "poisson":
            clock = 0.0
            remaining = self.num_requests
            while remaining:
                size = min(self.chunk_size, remaining)
                gaps = generator.exponential(1.0 / self.rate, size=size)
                # Seeding the cumsum with the previous chunk's last arrival
                # reproduces the whole-trace sequential adds bit-for-bit.
                times = np.cumsum(np.concatenate(((clock,), gaps)))[1:]
                clock = float(times[-1])
                remaining -= size
                yield times
            return
        chunk: list[float] = []
        for time in self._bursty_times(generator):
            chunk.append(time)
            if len(chunk) == self.chunk_size:
                yield np.asarray(chunk)
                chunk = []
        if chunk:
            yield np.asarray(chunk)

    def _bursty_times(self, generator):
        """Scalar-draw replay of :func:`bursty_arrival_times` (same seed,
        same draws, O(1) state)."""
        produced = 0
        clock = 0.0
        while produced < self.num_requests:
            burst = min(self.burst_size, self.num_requests - produced)
            for _ in range(burst):
                clock += generator.exponential(
                    1.0 / (self.rate * self.burst_factor))
                yield clock
            produced += burst
            clock += generator.exponential(
                (self.burst_factor - 1.0) * burst
                / (self.rate * self.burst_factor))

    def _chunk_lengths(self, chunk_index: int, size: int):
        if self.input_len is not None and self.output_len is not None:
            return (np.full(size, self.input_len, dtype=int),
                    np.full(size, self.output_len, dtype=int))
        seed = None if self.seed is None else (self.seed + 1, chunk_index)
        inputs, outputs = sharegpt_lengths(size, seed=seed,
                                           **self._length_kwargs)
        if self.input_len is not None:
            inputs = np.full(size, self.input_len, dtype=int)
        if self.output_len is not None:
            outputs = np.full(size, self.output_len, dtype=int)
        return inputs, outputs
