"""Multi-turn session workloads with shared-prefix KV reuse.

Real chat traffic is dominated by *sessions*: a user sends a prompt, reads
the answer, thinks, and sends a follow-up that carries the whole
conversation so far as context.  Under the paper's KV-cache-pressure lens
(conf_isca_ZhaoWW24 Section VI) this changes everything — consecutive
turns share a growing prefix whose KV the engine may keep resident instead
of re-reserving and re-prefilling it, and latency-sensitive chat turns
compete with throughput batch jobs for the same budget.

:class:`SessionTrace` is the deterministic generator: per-session turn
counts, think-time gaps between turns, suffix-only new tokens, and a
per-session SLO class (see :data:`~repro.workloads.arrivals.SLO_CLASSES`).
It lowers to the existing request stream —
:meth:`SessionTrace.requests` returns plain
:class:`~repro.workloads.arrivals.Request`-compatible
:class:`SessionRequest` objects sorted by ``(arrival_time, request_id)``
— so every serving entry point (engine, cluster, sweep) consumes sessions
unchanged.

Lowering contract
-----------------
* Every turn carries its **full context** as ``input_len`` (prefix plus
  new tokens) and tags the shared part as ``prefix_len``, so an engine
  without prefix reuse serves the trace correctly (it just pays the full
  prefill and reservation) and one with reuse charges only the suffix.
* ``requests(prefix_reuse=False)`` zeroes every ``prefix_len`` and marks
  every turn final: request-for-request identical arrivals and lengths,
  no retained prefixes — the "equivalent single-shot trace".
  :meth:`SessionTrace.single_shot` is the same trace as plain
  :class:`~repro.workloads.arrivals.Request` objects (the hypothesis
  invariant in ``tests/test_sessions.py`` pins the equivalence).
* Turn ``t+1``'s ``prefix_len`` equals turn ``t``'s
  ``input_len + output_len`` — the whole previous context including the
  generated answer.
* The trace is **open loop** by default: turn ``t+1`` arrives a think-time
  gap plus a service allowance (``tokens / service_tokens_per_s``) after
  turn ``t``, independent of the simulated completion instant.  This keeps
  the trace a pure function of its seed (closed-loop arrivals couple the
  workload to the engine under test); pick ``mean_think_s`` and
  ``service_tokens_per_s`` so follow-ups usually arrive after their
  parent completes if high prefix-hit rates are the goal.
* :meth:`SessionTrace.closed_loop` instead builds a
  :class:`ClosedLoopSessions` source whose turn ``t+1`` arrives at turn
  ``t``'s *simulated* completion plus the same think-time draw — the
  engine feeds completions back into the source, so the workload reacts
  to the system under test.  Both modes replay identical per-turn scripts
  (lengths, classes, think times); only the arrival coupling differs.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive
from repro.workloads.arrivals import (
    ARRIVAL_PATTERNS,
    SLO_CLASSES,
    Request,
)


@dataclass(frozen=True)
class SessionRequest(Request):
    """One turn of a multi-turn session, as a serving request.

    A :class:`~repro.workloads.arrivals.Request` plus the session facts the
    serving engine's prefix-reuse admission reads: which conversation the
    turn belongs to (``session_id``), its position (``turn_index``), how
    many of its ``input_len`` tokens are the shared prefix of the previous
    turns (``prefix_len``), and whether any follow-up turn may reuse this
    turn's context (``final_turn=False`` asks the engine to retain it).
    """

    session_id: int = 0
    turn_index: int = 0
    prefix_len: int = 0
    final_turn: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.session_id < 0 or self.turn_index < 0:
            raise ConfigurationError(
                f"session_id and turn_index must be non-negative, got "
                f"({self.session_id!r}, {self.turn_index!r})"
            )
        if not 0 <= self.prefix_len < self.input_len:
            raise ConfigurationError(
                f"prefix_len must satisfy 0 <= prefix_len < input_len "
                f"(every turn adds at least one new token), got "
                f"prefix_len={self.prefix_len!r} with "
                f"input_len={self.input_len!r}"
            )

    @property
    def suffix_len(self) -> int:
        """New prompt tokens this turn adds beyond the shared prefix."""
        return self.input_len - self.prefix_len


@dataclass(frozen=True)
class SessionTrace:
    """Deterministic multi-turn session workload specification.

    Session starts follow any registered arrival pattern at ``rate``
    sessions per second; each session draws a geometric turn count (mean
    ``mean_turns``, capped at ``max_turns``), heavy-tailed log-normal new
    prompt/answer lengths per turn (means ``mean_new_input`` /
    ``mean_output``, shape ``sigma`` — the ShareGPT-style distribution of
    :func:`~repro.workloads.arrivals.sharegpt_lengths`), and exponential
    think-time gaps (mean ``mean_think_s``) between turns.  A session is
    ``"interactive"`` with probability ``interactive_fraction``, else
    ``"batch"``; the class applies to all its turns.  Context growth is
    capped at ``max_context`` KV tokens: a session ends early rather than
    emit a turn that would overflow the cap.

    ``rate=None`` builds a rate-less spec for sweeps
    (``serving_rate_sweep(workload=sessions(...))`` fills the rate per
    row via :meth:`with_rate`).
    """

    num_sessions: int
    rate: float | None = None
    seed: int | None = 0
    pattern: str = "poisson"
    mean_turns: float = 4.0
    max_turns: int = 16
    mean_think_s: float = 2.0
    mean_new_input: int = 64
    mean_output: int = 128
    sigma: float = 0.8
    max_context: int = 2048
    interactive_fraction: float = 1.0
    service_tokens_per_s: float = 30.0

    def __post_init__(self) -> None:
        validate_positive(num_sessions=self.num_sessions,
                          max_turns=self.max_turns,
                          mean_think_s=self.mean_think_s,
                          mean_new_input=self.mean_new_input,
                          mean_output=self.mean_output, sigma=self.sigma,
                          service_tokens_per_s=self.service_tokens_per_s)
        if self.rate is not None:
            validate_positive(rate=self.rate)
        if self.mean_turns < 1.0:
            raise ConfigurationError(
                f"mean_turns must be at least 1, got {self.mean_turns!r}"
            )
        if self.max_context < 2:
            raise ConfigurationError(
                f"max_context must be at least 2 (one prompt plus one "
                f"output token), got {self.max_context!r}"
            )
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ConfigurationError(
                f"interactive_fraction must lie in [0, 1], got "
                f"{self.interactive_fraction!r}"
            )
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ConfigurationError(
                f"unknown arrival pattern {self.pattern!r}; "
                f"known: {sorted(ARRIVAL_PATTERNS)}"
            )

    # ------------------------------------------------------------------ #
    def with_rate(self, rate: float) -> "SessionTrace":
        """Copy of this spec at a new session arrival rate (sweep axis)."""
        return dataclasses.replace(self, rate=rate)

    # ------------------------------------------------------------------ #
    def requests(self, prefix_reuse: bool = True) -> list[SessionRequest]:
        """Lower the sessions to a sorted serving request trace.

        Returns :class:`SessionRequest` objects sorted by
        ``(arrival_time, request_id)`` with ``request_id`` equal to the
        sort position — exactly the stream the serving engine admits FCFS.
        ``prefix_reuse=False`` produces the equivalent single-shot trace:
        identical ids, arrivals, and lengths, but every ``prefix_len`` is 0
        and every turn is final, so no engine retains or reuses anything.
        """
        turns = self._turns()
        return [
            SessionRequest(
                request_id=index, arrival_time=arrival,
                input_len=input_len, output_len=output_len,
                slo_class=slo_class, session_id=session_id,
                turn_index=turn_index,
                prefix_len=prefix_len if prefix_reuse else 0,
                final_turn=final_turn if prefix_reuse else True)
            for index, (arrival, session_id, turn_index, prefix_len,
                        input_len, output_len, slo_class, final_turn)
            in enumerate(turns)
        ]

    def single_shot(self) -> list[Request]:
        """The equivalent independent-request trace (plain ``Request``).

        Request-for-request identical to ``requests(prefix_reuse=False)``
        on every :class:`~repro.workloads.arrivals.Request` field — the
        trace a session-blind serving stack would see.
        """
        return [
            Request(request_id=index, arrival_time=arrival,
                    input_len=input_len, output_len=output_len,
                    slo_class=slo_class)
            for index, (arrival, _, _, _, input_len, output_len, slo_class,
                        _) in enumerate(self._turns())
        ]

    @property
    def num_turns(self) -> int:
        """Total serving requests the trace lowers to."""
        return len(self._turns())

    def closed_loop(self) -> "ClosedLoopSessions":
        """A fresh single-use closed-loop arrival source over this spec.

        Serve it directly (``engine.serve(trace.closed_loop())``, or
        ``ReplicaGroup.serve``): turn ``t+1`` of each session arrives at
        turn ``t``'s simulated completion plus the script's think-time
        draw.  Per-turn lengths, classes, and think times are identical to
        the open-loop lowering — only arrival instants differ.  The source
        is consumed by one serve; build a new one per serve.
        """
        return ClosedLoopSessions(self)

    # ------------------------------------------------------------------ #
    def _scripts(self) -> list[tuple]:
        """Per-session turn scripts: the seed-determined facts of a serve.

        Each entry is ``(start_time, slo_class, turns)`` with ``turns`` a
        list of ``(prefix_len, new_input, output_len, think_s)``.  Pure
        function of the spec (one generator seeded from ``seed`` drives
        every draw after the session-start arrival times).  The open-loop
        lowering (:meth:`requests`) and the closed-loop source
        (:meth:`closed_loop`) both replay these scripts, so the two modes
        serve identical per-turn lengths and differ only in how arrivals
        couple to completions.
        """
        if self.rate is None:
            raise ConfigurationError(
                "this SessionTrace has no arrival rate; call "
                "with_rate(rate) first (serving_rate_sweep does this per "
                "swept rate)"
            )
        starts = ARRIVAL_PATTERNS[self.pattern](self.num_sessions, self.rate,
                                                seed=self.seed)
        generator = rng(None if self.seed is None else self.seed + 1)
        turn_counts = np.minimum(
            generator.geometric(1.0 / self.mean_turns,
                                size=self.num_sessions),
            self.max_turns)
        classes = np.where(
            generator.random(self.num_sessions) < self.interactive_fraction,
            SLO_CLASSES[0], SLO_CLASSES[1])
        # Single-turn length caps guarantee the first turn always fits the
        # context budget; later turns end the session rather than overflow.
        input_cap = self.max_context // 2
        output_cap = self.max_context - input_cap

        def sample(mean: int, cap: int) -> int:
            mu = np.log(mean) - self.sigma ** 2 / 2.0
            length = generator.lognormal(mu, self.sigma)
            return int(np.clip(np.round(length), 1, cap))

        scripts: list[tuple] = []
        for session_id in range(self.num_sessions):
            slo_class = str(classes[session_id])
            prefix = 0
            script: list[tuple] = []
            for _ in range(int(turn_counts[session_id])):
                new_input = sample(self.mean_new_input, input_cap)
                output = sample(self.mean_output, output_cap)
                think = float(generator.exponential(self.mean_think_s))
                if prefix + new_input + output > self.max_context:
                    break  # context budget exhausted: session ends early
                script.append((prefix, new_input, output, think))
                prefix += new_input + output
            scripts.append((float(starts[session_id]), slo_class, script))
        return scripts

    def _turns(self) -> list[tuple]:
        """All turns of all sessions, sorted by arrival (open loop).

        Each entry is ``(arrival, session_id, turn_index, prefix_len,
        input_len, output_len, slo_class, final_turn)``.
        """
        turns: list[tuple] = []
        for session_id, (start, slo_class, script) \
                in enumerate(self._scripts()):
            arrival = start
            for turn_index, (prefix, new_input, output, think) \
                    in enumerate(script):
                turns.append((arrival, session_id, turn_index, prefix,
                              prefix + new_input, output, slo_class,
                              turn_index == len(script) - 1))
                arrival += think + (new_input + output) \
                    / self.service_tokens_per_s
        turns.sort(key=lambda turn: (turn[0], turn[1], turn[2]))
        return turns


class ClosedLoopSessions:
    """Single-use closed-loop arrival source over a :class:`SessionTrace`.

    Implements :class:`~repro.serving.events.ContinuationSource`: the
    serving layer pops ready turns in time order and feeds every completed
    request back through :meth:`on_completion`, which schedules the
    session's next turn at ``completion_time + think_s`` — so follow-ups
    react to the *simulated* system instead of an a-priori service
    allowance.  Request ids are assigned in pop order, which is
    nondecreasing in arrival time (the driver pops the earliest ready
    turn), so downstream FCFS order checks hold unchanged.

    The turn *scripts* (lengths, classes, think-time draws) are the
    spec's own — see :meth:`SessionTrace._scripts` — making a closed-loop
    serve a pure function of ``(spec seed, engine configuration)``.
    """

    def __init__(self, spec: SessionTrace) -> None:
        self._spec = spec
        self._scripts = spec._scripts()
        #: Ready turns as a ``(arrival_time, session_id)`` heap; each
        #: session has at most one ready or in-flight turn at a time.
        self._ready: list[tuple[float, int]] = []
        self._inflight: dict[int, tuple[int, int]] = {}
        #: ``request_id -> (session_id, turn_index)`` for every request
        #: popped so far — the audit trail tests use to check causality.
        self.assignments: dict[int, tuple[int, int]] = {}
        self._positions = [0] * len(self._scripts)
        self._next_id = 0
        self._popped = 0
        self._total = sum(len(script) for _, _, script in self._scripts)
        for session_id, (start, _, script) in enumerate(self._scripts):
            if script:
                heapq.heappush(self._ready, (start, session_id))

    @property
    def spec(self) -> SessionTrace:
        return self._spec

    @property
    def num_turns(self) -> int:
        """Total requests this source will emit over its lifetime."""
        return self._total

    @property
    def length_bounds(self) -> tuple[int, int]:
        """``(max_input_len, max_output_len)`` over every scripted turn."""
        max_input = max_output = 1
        for _, _, script in self._scripts:
            for prefix, new_input, output, _ in script:
                if prefix + new_input > max_input:
                    max_input = prefix + new_input
                if output > max_output:
                    max_output = output
        return max_input, max_output

    # ------------------------------------------------------------------ #
    # ContinuationSource interface
    # ------------------------------------------------------------------ #
    def peek_time(self) -> float | None:
        return self._ready[0][0] if self._ready else None

    def pop_next(self) -> SessionRequest | None:
        if not self._ready:
            return None
        arrival, session_id = heapq.heappop(self._ready)
        _, slo_class, script = self._scripts[session_id]
        turn_index = self._positions[session_id]
        self._positions[session_id] = turn_index + 1
        prefix, new_input, output, _ = script[turn_index]
        request = SessionRequest(
            request_id=self._next_id, arrival_time=arrival,
            input_len=prefix + new_input, output_len=output,
            slo_class=slo_class, session_id=session_id,
            turn_index=turn_index, prefix_len=prefix,
            final_turn=turn_index == len(script) - 1)
        self._inflight[request.request_id] = (session_id, turn_index)
        self.assignments[request.request_id] = (session_id, turn_index)
        self._next_id += 1
        self._popped += 1
        return request

    @property
    def exhausted(self) -> bool:
        return self._popped == self._total

    # ------------------------------------------------------------------ #
    def on_completion(self, record) -> None:
        """Feed one completed request back; schedules the next turn.

        ``record`` is anything with ``request_id`` and ``completion_time``
        (the engine passes each :class:`~repro.serving.trace.RequestRecord`
        through here as its per-record observer).
        """
        entry = self._inflight.pop(record.request_id, None)
        if entry is None:
            raise ConfigurationError(
                f"closed-loop completion for unknown or already-completed "
                f"request id {record.request_id!r}"
            )
        session_id, turn_index = entry
        _, _, script = self._scripts[session_id]
        if turn_index + 1 >= len(script):
            return  # final turn: the session is over
        think = script[turn_index][3]
        heapq.heappush(self._ready,
                       (record.completion_time + think, session_id))


def sessions(num_sessions: int = 32, rate: float | None = None,
             **kwargs) -> SessionTrace:
    """Build a :class:`SessionTrace` workload spec.

    The ``workload=`` entry point of
    :func:`~repro.experiments.serving.serving_rate_sweep`::

        serving_rate_sweep(workload=sessions(32, mean_turns=3.0,
                                             interactive_fraction=0.5),
                           slo_classes={...})

    ``rate=None`` leaves the session arrival rate to the sweep's rate axis.
    """
    return SessionTrace(num_sessions=num_sessions, rate=rate, **kwargs)


def replay_requests(records, keep_ids: bool = True) -> list[Request]:
    """Rebuild an arrival trace from completed-request records.

    Turns any iterable of records exposing ``request_id``,
    ``arrival_time``, ``input_len``, ``output_len``, and ``slo_class``
    (e.g. :class:`~repro.serving.trace.RequestRecord` from a
    ``record_mode="full"`` trace) back into a sorted
    :class:`~repro.workloads.arrivals.Request` list, so one serve's
    workload can be replayed against a different system, hardware, or
    engine configuration.  ``keep_ids=False`` renumbers requests by
    arrival order instead of keeping the recorded ids.
    """
    ordered = sorted(records,
                     key=lambda r: (r.arrival_time, r.request_id))
    return [
        Request(request_id=record.request_id if keep_ids else index,
                arrival_time=record.arrival_time,
                input_len=record.input_len, output_len=record.output_len,
                slo_class=getattr(record, "slo_class", SLO_CLASSES[0]))
        for index, record in enumerate(ordered)
    ]
