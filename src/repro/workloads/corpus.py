"""Synthetic token corpora for sparsity and throughput experiments.

The attention-sparsity and distribution experiments (Figures 3, 4, 5, 10)
only need token streams whose statistics resemble natural language at the
level that matters for attention analysis: a Zipfian unigram distribution
with local repetition.  The system-level experiments only need prompt
lengths (the tokens themselves never influence the analytic cost model), so
:func:`sample_prompts` simply materializes prompts of the requested shape.
"""

from __future__ import annotations

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive


def zipf_token_stream(num_tokens: int, vocab_size: int, alpha: float = 1.1,
                      repeat_probability: float = 0.2, window: int = 16,
                      seed: int = 0, reserved_tokens: int = 4) -> np.ndarray:
    """Generate a Zipf-distributed token stream with local repetition.

    ``repeat_probability`` controls how often a token is copied from the
    recent ``window`` instead of being drawn fresh, which mimics the local
    redundancy of natural text (and gives induction-style attention heads
    something to attend to).
    """
    validate_positive(num_tokens=num_tokens, vocab_size=vocab_size,
                      alpha=alpha, window=window)
    if not 0.0 <= repeat_probability < 1.0:
        raise ConfigurationError("repeat_probability must lie in [0, 1)")
    if vocab_size <= reserved_tokens:
        raise ConfigurationError("vocab_size must exceed reserved_tokens")

    generator = rng(seed)
    usable = vocab_size - reserved_tokens
    ranks = np.arange(1, usable + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()

    tokens = np.empty(num_tokens, dtype=int)
    for i in range(num_tokens):
        if i > 0 and generator.random() < repeat_probability:
            j = generator.integers(max(0, i - window), i)
            tokens[i] = tokens[j]
        else:
            tokens[i] = reserved_tokens + generator.choice(usable, p=probs)
    return tokens


def zipf_prompt_batch(batch_size: int, prompt_len: int, vocab_size: int,
                      seed: int = 0, **kwargs) -> np.ndarray:
    """A ``(batch, prompt_len)`` matrix of Zipf prompts."""
    validate_positive(batch_size=batch_size, prompt_len=prompt_len)
    return np.stack([
        zipf_token_stream(prompt_len, vocab_size, seed=seed + i, **kwargs)
        for i in range(batch_size)
    ])


def sample_prompts(batch_size: int, prompt_len: int, vocab_size: int,
                   seed: int = 0) -> np.ndarray:
    """Uniform random prompts (for experiments where content is irrelevant)."""
    validate_positive(batch_size=batch_size, prompt_len=prompt_len,
                      vocab_size=vocab_size)
    generator = rng(seed)
    return generator.integers(4, vocab_size, size=(batch_size, prompt_len))
