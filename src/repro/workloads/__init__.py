"""Workload descriptors, arrival traces, and synthetic dataset generators."""

from repro.workloads.arrivals import (
    ARRIVAL_PATTERNS,
    SLO_CLASSES,
    Request,
    RequestStream,
    bursty_arrival_times,
    generate_requests,
    poisson_arrival_times,
    sharegpt_lengths,
)
from repro.workloads.corpus import sample_prompts, zipf_prompt_batch, zipf_token_stream
from repro.workloads.descriptors import (
    ALPACA_WORKLOAD,
    FIGURE1_WORKLOADS,
    FIGURE9_BATCH_SIZES,
    Workload,
    alpaca_batch_sweep,
)
from repro.workloads.sessions import (
    ClosedLoopSessions,
    SessionRequest,
    SessionTrace,
    replay_requests,
    sessions,
)
from repro.workloads.recall import (
    ALL_DATASETS,
    LM_DATASETS,
    QA_DATASETS,
    RecallDataset,
    RecallSequence,
    RecallTaskConfig,
    generate_recall_dataset,
    generate_recall_sequence,
    get_dataset_config,
)

__all__ = [
    "ALL_DATASETS",
    "ALPACA_WORKLOAD",
    "ARRIVAL_PATTERNS",
    "ClosedLoopSessions",
    "FIGURE1_WORKLOADS",
    "FIGURE9_BATCH_SIZES",
    "LM_DATASETS",
    "QA_DATASETS",
    "RecallDataset",
    "RecallSequence",
    "RecallTaskConfig",
    "Request",
    "RequestStream",
    "SLO_CLASSES",
    "SessionRequest",
    "SessionTrace",
    "Workload",
    "alpaca_batch_sweep",
    "bursty_arrival_times",
    "generate_recall_dataset",
    "generate_recall_sequence",
    "generate_requests",
    "get_dataset_config",
    "poisson_arrival_times",
    "replay_requests",
    "sample_prompts",
    "sessions",
    "sharegpt_lengths",
    "zipf_prompt_batch",
    "zipf_token_stream",
]
