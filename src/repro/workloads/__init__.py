"""Workload descriptors and synthetic dataset generators."""

from repro.workloads.corpus import sample_prompts, zipf_prompt_batch, zipf_token_stream
from repro.workloads.descriptors import (
    ALPACA_WORKLOAD,
    FIGURE1_WORKLOADS,
    FIGURE9_BATCH_SIZES,
    Workload,
    alpaca_batch_sweep,
)
from repro.workloads.recall import (
    ALL_DATASETS,
    LM_DATASETS,
    QA_DATASETS,
    RecallDataset,
    RecallSequence,
    RecallTaskConfig,
    generate_recall_dataset,
    generate_recall_sequence,
    get_dataset_config,
)

__all__ = [
    "ALL_DATASETS",
    "ALPACA_WORKLOAD",
    "FIGURE1_WORKLOADS",
    "FIGURE9_BATCH_SIZES",
    "LM_DATASETS",
    "QA_DATASETS",
    "RecallDataset",
    "RecallSequence",
    "RecallTaskConfig",
    "Workload",
    "alpaca_batch_sweep",
    "generate_recall_dataset",
    "generate_recall_sequence",
    "get_dataset_config",
    "sample_prompts",
    "zipf_prompt_batch",
    "zipf_token_stream",
]
