"""Synthetic associative-recall workloads for the accuracy experiments.

The paper evaluates accuracy on language modelling (WikiText-2, Penn
Treebank, Alpaca) and 4-shot question answering (PIQA, COPA, OpenBookQA,
Winogrande).  Offline, those corpora are replaced by synthetic
*associative-recall* tasks built for the constructed retrieval model
(:mod:`repro.model.constructed`):

* a set of key→value bindings is stated once in the **prompt prefix** of
  every sequence ("K₁ V₁ K₂ V₂ …" — the knowledge / few-shot context);
* the measured part of the sequence interleaves filler tokens with queries:
  a *query* token (distinct from the key token) whose next token is the
  bound value;
* the measured quantities are how well the model predicts the value tokens
  (accuracy) and the overall token stream (perplexity).

Answering a query requires attending back to the binding site in the prompt
prefix — the value never appears next to anything recent — which is exactly
the long-range-but-recurrently-important dependency that separates SWA/H2O
from local and strided attention in the paper.  Each paper dataset maps to a
different parameterization (sequence length, number of bindings, query
period, filler entropy), giving seven distinct difficulty profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive
from repro.model.constructed import DEFAULT_VOCABULARY, RecallVocabulary

SEPARATOR_TOKEN = 4


@dataclass(frozen=True)
class RecallTaskConfig:
    """Parameters of one synthetic recall dataset."""

    name: str
    task_type: str  # "language-modeling" or "question-answering"
    sequence_length: int = 256
    num_pairs: int = 3
    query_gap: int = 1
    filler_vocab: int = 64
    prefill_len: int = 128
    num_sequences: int = 8
    vocabulary: RecallVocabulary = DEFAULT_VOCABULARY

    def __post_init__(self) -> None:
        validate_positive(sequence_length=self.sequence_length,
                          num_pairs=self.num_pairs,
                          query_gap=self.query_gap,
                          filler_vocab=self.filler_vocab,
                          prefill_len=self.prefill_len,
                          num_sequences=self.num_sequences)
        if self.task_type not in ("language-modeling", "question-answering"):
            raise ConfigurationError(f"unknown task_type {self.task_type!r}")
        if self.num_pairs > self.vocabulary.max_pairs:
            raise ConfigurationError(
                f"num_pairs {self.num_pairs} exceeds the vocabulary's "
                f"max_pairs {self.vocabulary.max_pairs}"
            )
        if self.prefill_len >= self.sequence_length:
            raise ConfigurationError("prefill_len must be < sequence_length")

    def with_sequences(self, num_sequences: int) -> "RecallTaskConfig":
        return replace(self, num_sequences=num_sequences)


@dataclass
class RecallSequence:
    """One generated sequence with its supervision targets."""

    tokens: np.ndarray
    answer_positions: np.ndarray
    answer_tokens: np.ndarray
    binding_positions: np.ndarray

    @property
    def length(self) -> int:
        return int(self.tokens.size)


@dataclass
class RecallDataset:
    """A batch of recall sequences sharing one configuration."""

    config: RecallTaskConfig
    sequences: list[RecallSequence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequences)

    def token_matrix(self) -> np.ndarray:
        """Stack sequences into a ``(num_sequences, seq_len)`` matrix."""
        return np.stack([seq.tokens for seq in self.sequences])


def generate_recall_sequence(config: RecallTaskConfig,
                             generator: np.random.Generator) -> RecallSequence:
    """Generate a single sequence for ``config``.

    Layout: ``<sep> K1 V1 K2 V2 ... <sep> filler... [filler* query value]*``
    — the bindings up front (inside the densely prefetched prompt), then
    filler interleaved with queries so every binding is re-queried with a
    bounded period.
    """
    vocab = config.vocabulary
    pair_ids = generator.permutation(vocab.max_pairs)[: config.num_pairs]
    value_assignment = generator.permutation(config.num_pairs)

    tokens: list[int] = [SEPARATOR_TOKEN]
    binding_positions: list[int] = []
    bound_value: dict[int, int] = {}
    for slot, pair in enumerate(pair_ids):
        value_token = vocab.value(int(pair_ids[value_assignment[slot]]))
        bound_value[int(pair)] = value_token
        binding_positions.append(len(tokens) + 1)  # position holding the value
        tokens.extend([vocab.key(int(pair)), value_token])
    tokens.append(SEPARATOR_TOKEN)

    def _append_filler(count: int) -> None:
        for offset in generator.integers(0, config.filler_vocab, size=count):
            tokens.append(vocab.filler(int(offset)))

    answer_positions: list[int] = []
    answer_tokens: list[int] = []
    query_cycle = 0
    while len(tokens) < config.sequence_length - 1:
        _append_filler(config.query_gap)
        if len(tokens) >= config.sequence_length - 1:
            break
        pair = int(pair_ids[query_cycle % config.num_pairs])
        query_cycle += 1
        tokens.append(vocab.query(pair))
        answer_positions.append(len(tokens))
        answer_tokens.append(bound_value[pair])
        tokens.append(bound_value[pair])

    tokens = tokens[: config.sequence_length]
    answer_positions_arr = np.array(
        [p for p in answer_positions if p < len(tokens)], dtype=int
    )
    answer_tokens_arr = np.array(
        answer_tokens[: answer_positions_arr.size], dtype=int
    )
    return RecallSequence(
        tokens=np.array(tokens, dtype=int),
        answer_positions=answer_positions_arr,
        answer_tokens=answer_tokens_arr,
        binding_positions=np.array(binding_positions, dtype=int),
    )


def generate_recall_dataset(config: RecallTaskConfig, seed: int = 0) -> RecallDataset:
    """Generate ``config.num_sequences`` sequences."""
    generator = rng(seed)
    dataset = RecallDataset(config=config)
    for _ in range(config.num_sequences):
        dataset.sequences.append(generate_recall_sequence(config, generator))
    return dataset


#: Language-modelling dataset stand-ins (perplexity tasks of Figure 8).
#: The long ``prefill_len`` mirrors the paper's 2048-token full-context
#: inputs (scaled to the executable models); the query period is chosen so
#: that SWA's local attention window at 80% KV sparsity still covers at
#: least one query per binding, while local/strided attention lose the
#: binding sites at the start of the sequence.
LM_DATASETS: dict[str, RecallTaskConfig] = {
    "wikitext-2": RecallTaskConfig("wikitext-2", "language-modeling",
                                   sequence_length=256, num_pairs=3,
                                   query_gap=1, filler_vocab=64,
                                   prefill_len=128),
    "penn-treebank": RecallTaskConfig("penn-treebank", "language-modeling",
                                      sequence_length=224, num_pairs=4,
                                      query_gap=1, filler_vocab=48,
                                      prefill_len=112),
    "alpaca": RecallTaskConfig("alpaca", "language-modeling",
                               sequence_length=288, num_pairs=3,
                               query_gap=2, filler_vocab=72,
                               prefill_len=144),
}

#: 4-shot question-answering dataset stand-ins (accuracy tasks of Figure 8).
QA_DATASETS: dict[str, RecallTaskConfig] = {
    "piqa": RecallTaskConfig("piqa", "question-answering",
                             sequence_length=224, num_pairs=3,
                             query_gap=1, filler_vocab=48, prefill_len=112),
    "copa": RecallTaskConfig("copa", "question-answering",
                             sequence_length=192, num_pairs=2,
                             query_gap=1, filler_vocab=32, prefill_len=96),
    "openbookqa": RecallTaskConfig("openbookqa", "question-answering",
                                   sequence_length=256, num_pairs=4,
                                   query_gap=1, filler_vocab=64,
                                   prefill_len=128),
    "winogrande": RecallTaskConfig("winogrande", "question-answering",
                                   sequence_length=224, num_pairs=3,
                                   query_gap=2, filler_vocab=48,
                                   prefill_len=112),
}

ALL_DATASETS: dict[str, RecallTaskConfig] = {**LM_DATASETS, **QA_DATASETS}


def get_dataset_config(name: str) -> RecallTaskConfig:
    """Look up a dataset stand-in by paper dataset name."""
    try:
        return ALL_DATASETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(ALL_DATASETS)}"
        ) from exc
