"""A minimal synthetic tokenizer.

The reproduction's workloads are synthetic token streams, so a full BPE
tokenizer is unnecessary.  This tokenizer maps whitespace-separated words to
integer ids with a fixed special-token layout, which is enough to make the
examples read like real inference scripts and to exercise the end-to-end
API the way a downstream user would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._common import ConfigurationError


@dataclass
class SyntheticTokenizer:
    """Word-level tokenizer with a bounded, dynamically grown vocabulary."""

    vocab_size: int = 256
    pad_token: int = 0
    bos_token: int = 1
    eos_token: int = 2
    unk_token: int = 3
    _word_to_id: dict[str, int] = field(default_factory=dict)
    _id_to_word: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.vocab_size <= 8:
            raise ConfigurationError("vocab_size must be > 8")
        specials = {
            self.pad_token: "<pad>",
            self.bos_token: "<bos>",
            self.eos_token: "<eos>",
            self.unk_token: "<unk>",
        }
        for token_id, word in specials.items():
            self._id_to_word[token_id] = word
            self._word_to_id[word] = token_id

    @property
    def num_reserved(self) -> int:
        return 4

    def encode(self, text: str, add_bos: bool = True) -> np.ndarray:
        """Encode whitespace-separated words into token ids."""
        ids = [self.bos_token] if add_bos else []
        for word in text.split():
            ids.append(self._lookup_or_add(word))
        return np.asarray(ids, dtype=int)

    def decode(self, token_ids) -> str:
        """Decode token ids back into a whitespace-joined string."""
        words = []
        for token_id in np.asarray(token_ids).ravel():
            words.append(self._id_to_word.get(int(token_id), f"<{int(token_id)}>"))
        return " ".join(words)

    def _lookup_or_add(self, word: str) -> int:
        if word in self._word_to_id:
            return self._word_to_id[word]
        next_id = len(self._id_to_word)
        if next_id >= self.vocab_size:
            return self.unk_token
        self._word_to_id[word] = next_id
        self._id_to_word[next_id] = word
        return next_id

    def __len__(self) -> int:
        return self.vocab_size
