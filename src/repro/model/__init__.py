"""Functional (NumPy-executable) transformer substrate."""

from repro.model.builder import build_random_model, default_attention_gain
from repro.model.config import (
    EXECUTABLE_CONFIGS,
    PAPER_CONFIGS,
    ModelConfig,
    executable_stand_in,
    get_config,
    list_configs,
)
from repro.model.constructed import RECALL_SPECS, RecallModelSpec, build_recall_model
from repro.model.generation import GenerationResult, generate, teacher_forced_logits
from repro.model.tokenizer import SyntheticTokenizer
from repro.model.transformer import InferenceSession, StepRecord, TransformerModel

__all__ = [
    "EXECUTABLE_CONFIGS",
    "PAPER_CONFIGS",
    "RECALL_SPECS",
    "GenerationResult",
    "InferenceSession",
    "ModelConfig",
    "RecallModelSpec",
    "StepRecord",
    "SyntheticTokenizer",
    "TransformerModel",
    "build_random_model",
    "build_recall_model",
    "default_attention_gain",
    "executable_stand_in",
    "generate",
    "get_config",
    "list_configs",
    "teacher_forced_logits",
]
