"""Basic neural-network layers for the NumPy transformer substrate.

These layers implement inference-only forward passes.  They are deliberately
simple (no autograd) because the reproduction only needs forward inference,
matching the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, softmax


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by GPT/OPT)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


@dataclass
class Linear:
    """Affine projection ``y = x @ W + b``.

    ``weight`` has shape ``(in_features, out_features)`` so that the forward
    pass is a plain matrix multiplication on row-major activations.
    """

    weight: np.ndarray
    bias: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.weight.ndim != 2:
            raise ConfigurationError("Linear weight must be 2-D")
        if self.bias is not None and self.bias.shape != (self.weight.shape[1],):
            raise ConfigurationError(
                f"Linear bias shape {self.bias.shape} does not match "
                f"out_features {self.weight.shape[1]}"
            )

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def num_parameters(self) -> int:
        return self.weight.size + (self.bias.size if self.bias is not None else 0)


@dataclass
class LayerNorm:
    """Layer normalization over the last dimension."""

    gamma: np.ndarray
    beta: np.ndarray
    eps: float = 1e-5

    def __call__(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return self.gamma * (x - mean) / np.sqrt(var + self.eps) + self.beta

    def num_parameters(self) -> int:
        return self.gamma.size + self.beta.size


@dataclass
class Embedding:
    """Token embedding lookup table of shape ``(vocab_size, hidden_size)``."""

    table: np.ndarray

    def __post_init__(self) -> None:
        if self.table.ndim != 2:
            raise ConfigurationError("Embedding table must be 2-D")

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    @property
    def hidden_size(self) -> int:
        return self.table.shape[1]

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if np.any(token_ids < 0) or np.any(token_ids >= self.vocab_size):
            raise ConfigurationError("token id out of embedding range")
        return self.table[token_ids]

    def num_parameters(self) -> int:
        return self.table.size


@dataclass
class FeedForward:
    """Two-layer MLP with GELU activation (the paper's FFN block)."""

    up: Linear
    down: Linear

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down(gelu(self.up(x)))

    def num_parameters(self) -> int:
        return self.up.num_parameters() + self.down.num_parameters()


def sinusoidal_positions(max_len: int, hidden_size: int) -> np.ndarray:
    """Sinusoidal positional encodings of shape ``(max_len, hidden_size)``."""
    positions = np.arange(max_len)[:, None].astype(np.float64)
    dims = np.arange(hidden_size)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10_000.0, (2 * (dims // 2)) / hidden_size)
    angles = positions * angle_rates
    encodings = np.zeros((max_len, hidden_size))
    encodings[:, 0::2] = np.sin(angles[:, 0::2])
    encodings[:, 1::2] = np.cos(angles[:, 1::2])
    return encodings


def causal_mask(query_len: int, key_len: int) -> np.ndarray:
    """Boolean mask where ``True`` marks *allowed* attention positions.

    The query at position ``i`` (counted from the end of the key sequence)
    may attend to keys ``0 .. key_len - query_len + i``.
    """
    if key_len < query_len:
        raise ConfigurationError("key_len must be >= query_len for causal mask")
    offset = key_len - query_len
    rows = np.arange(query_len)[:, None] + offset
    cols = np.arange(key_len)[None, :]
    return cols <= rows


def masked_softmax(scores: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    """Softmax over the last axis with ``False`` mask entries forced to zero."""
    if mask is None:
        return softmax(scores, axis=-1)
    neg = np.where(mask, 0.0, -1e30)
    return softmax(scores + neg, axis=-1)
