"""Builders that materialize :class:`TransformerModel` weights.

Two initialization schemes are provided:

* :func:`build_random_model` — GPT-style random initialization with a
  controllable *attention gain*.  The gain scales the query/key projections
  so that attention logits have a realistic spread, which makes the softmax
  output heavy-tailed (a few tokens receive most of the weight).  This is
  the property the paper measures in Figures 3 and 5 — attention weights in
  LLMs are highly sparse and larger models are sparser — and the builder
  raises the gain with model width so the executable stand-ins reproduce the
  "larger model, higher sparsity" trend.

* :func:`repro.model.constructed.build_recall_model` (separate module) — a
  hand-constructed induction/recall model used for the accuracy experiments.
"""

from __future__ import annotations

import numpy as np

from repro._common import rng
from repro.model.attention import MultiHeadAttention
from repro.model.config import ModelConfig, get_config
from repro.model.layers import Embedding, FeedForward, LayerNorm, Linear
from repro.model.transformer import DecoderLayer, TransformerModel


def default_attention_gain(config: ModelConfig) -> float:
    """Attention-logit gain heuristic: wider models get sharper attention.

    The paper observes that OPT-30B attention is roughly 3x denser^-1 (i.e.
    sparser) than OPT-6.7B (Figure 3).  Scaling the gain with the square
    root of the hidden size reproduces this qualitative trend in the
    executable stand-ins.
    """
    return 6.0 * np.sqrt(config.hidden_size / 64.0)


def _linear(generator: np.random.Generator, in_features: int, out_features: int,
            scale: float, bias: bool = True) -> Linear:
    weight = generator.normal(0.0, scale, size=(in_features, out_features))
    bias_vec = np.zeros(out_features) if bias else None
    return Linear(weight=weight, bias=bias_vec)


def _layer_norm(hidden_size: int) -> LayerNorm:
    return LayerNorm(gamma=np.ones(hidden_size), beta=np.zeros(hidden_size))


def build_random_model(config: ModelConfig | str, seed: int = 0,
                       attention_gain: float | None = None) -> TransformerModel:
    """Build a randomly initialized model for sparsity/throughput studies."""
    if isinstance(config, str):
        config = get_config(config)
    generator = rng(seed)
    gain = default_attention_gain(config) if attention_gain is None else attention_gain

    hidden = config.hidden_size
    base_scale = 1.0 / np.sqrt(hidden)
    qk_scale = base_scale * np.sqrt(gain)

    embedding = Embedding(generator.normal(0.0, 1.0, size=(config.vocab_size, hidden)))

    layers: list[DecoderLayer] = []
    for layer_idx in range(config.num_layers):
        attention = MultiHeadAttention(
            layer_idx=layer_idx,
            num_heads=config.num_heads,
            hidden_size=hidden,
            w_q=_linear(generator, hidden, hidden, qk_scale),
            w_k=_linear(generator, hidden, hidden, qk_scale),
            w_v=_linear(generator, hidden, hidden, base_scale),
            w_o=_linear(generator, hidden, hidden, base_scale),
        )
        ffn = FeedForward(
            up=_linear(generator, hidden, config.ffn_size, base_scale),
            down=_linear(generator, config.ffn_size, hidden,
                         base_scale / np.sqrt(2.0 * config.num_layers)),
        )
        layers.append(
            DecoderLayer(
                attention=attention,
                ffn=ffn,
                norm_attn=_layer_norm(hidden),
                norm_ffn=_layer_norm(hidden),
            )
        )

    lm_head = Linear(weight=embedding.table.T.copy(), bias=None)
    model = TransformerModel(
        config=config,
        embedding=embedding,
        layers=layers,
        final_norm=_layer_norm(hidden),
        lm_head=lm_head,
    )
    return model
