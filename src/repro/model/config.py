"""Model configurations for the NumPy transformer substrate.

Two kinds of configurations are provided:

* **Paper-scale configs** (``opt-6.7b``, ``llama-13b``, ...) carry the real
  layer counts and hidden dimensions of the models the paper evaluates.  They
  are used by the analytic cost model and the memory simulator, which only
  need tensor *shapes*, never weights.
* **Executable configs** (``opt-tiny``, ``llama-small``, ...) are scaled-down
  versions of the same families that can actually be run forward in NumPy on
  a laptop.  They are used by the accuracy and attention-sparsity experiments
  (Figures 3, 4, 5, 8, 10), where what matters is the *relative* behaviour of
  dense vs. sparse attention, not absolute model quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro._common import ConfigurationError, validate_positive


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a decoder-only transformer.

    Attributes mirror the notation of Table II in the paper: ``hidden_size``
    is ``h``, ``num_layers`` is ``l``.
    """

    name: str
    family: str
    num_layers: int
    hidden_size: int
    num_heads: int
    vocab_size: int = 32_000
    ffn_multiplier: int = 4
    max_seq_len: int = 2048
    params_billions: float | None = None
    executable: bool = False

    def __post_init__(self) -> None:
        validate_positive(
            num_layers=self.num_layers,
            hidden_size=self.hidden_size,
            num_heads=self.num_heads,
            vocab_size=self.vocab_size,
            ffn_multiplier=self.ffn_multiplier,
            max_seq_len=self.max_seq_len,
        )
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head hidden dimension (``d`` in Equation 1)."""
        return self.hidden_size // self.num_heads

    @property
    def ffn_size(self) -> int:
        """Inner dimension of the feed-forward network."""
        return self.hidden_size * self.ffn_multiplier

    def num_parameters(self) -> int:
        """Approximate parameter count of the decoder stack plus embeddings."""
        per_layer = (
            4 * self.hidden_size * self.hidden_size  # QKV + output projections
            + 2 * self.hidden_size * self.ffn_size  # FFN up + down
            + 9 * self.hidden_size  # layer norms and biases (approximate)
        )
        embeddings = self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + 2 * embeddings

    def kv_bytes_per_token(self, dtype_bytes: float = 2.0) -> float:
        """Bytes of KV cache contributed by a single token in a single batch
        element, across all layers (the paper's ``4·l·h`` bytes for FP16,
        i.e. 2 tensors × 2 bytes × l × h)."""
        return 2.0 * dtype_bytes * self.num_layers * self.hidden_size

    def scaled(self, **overrides) -> "ModelConfig":
        """Return a copy of this config with fields replaced."""
        return replace(self, **overrides)


def _paper(name: str, family: str, layers: int, hidden: int, heads: int,
           params_b: float, vocab: int, max_len: int = 2048) -> ModelConfig:
    return ModelConfig(
        name=name,
        family=family,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        vocab_size=vocab,
        max_seq_len=max_len,
        params_billions=params_b,
        executable=False,
    )


#: Paper-scale configurations (architecture dimensions from the public model
#: cards of OPT, LLaMA and Pythia; used only for analytic cost modelling).
PAPER_CONFIGS: dict[str, ModelConfig] = {
    "opt-6.7b": _paper("opt-6.7b", "opt", 32, 4096, 32, 6.7, 50_272),
    "opt-13b": _paper("opt-13b", "opt", 40, 5120, 40, 13.0, 50_272),
    "opt-30b": _paper("opt-30b", "opt", 48, 7168, 56, 30.0, 50_272),
    "llama-7b": _paper("llama-7b", "llama", 32, 4096, 32, 6.7, 32_000),
    "llama-13b": _paper("llama-13b", "llama", 40, 5120, 40, 13.0, 32_000),
    "llama-33b": _paper("llama-33b", "llama", 60, 6656, 52, 32.5, 32_000),
    "pythia-6.7b": _paper("pythia-6.7b", "pythia", 32, 4096, 32, 6.9, 50_304),
    "pythia-12b": _paper("pythia-12b", "pythia", 36, 5120, 40, 12.0, 50_304),
}


def _executable(name: str, family: str, layers: int, hidden: int, heads: int,
                vocab: int = 512, max_len: int = 512) -> ModelConfig:
    return ModelConfig(
        name=name,
        family=family,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        vocab_size=vocab,
        max_seq_len=max_len,
        params_billions=None,
        executable=True,
    )


#: Executable (NumPy-runnable) configurations.  Each family has a small and a
#: large variant so that experiments can reproduce the paper's "larger LLMs
#: are sparser / more robust" trend.
EXECUTABLE_CONFIGS: dict[str, ModelConfig] = {
    "opt-tiny": _executable("opt-tiny", "opt", 4, 64, 4),
    "opt-small": _executable("opt-small", "opt", 6, 128, 8),
    "opt-base": _executable("opt-base", "opt", 8, 192, 8),
    "llama-tiny": _executable("llama-tiny", "llama", 4, 64, 4),
    "llama-small": _executable("llama-small", "llama", 6, 128, 8),
    "llama-base": _executable("llama-base", "llama", 8, 192, 8),
    "pythia-tiny": _executable("pythia-tiny", "pythia", 4, 64, 4),
    "pythia-small": _executable("pythia-small", "pythia", 6, 128, 8),
}

#: Mapping from paper-scale model names to the executable stand-in used by
#: accuracy experiments.
EXECUTABLE_STAND_INS: dict[str, str] = {
    "opt-6.7b": "opt-tiny",
    "opt-13b": "opt-small",
    "opt-30b": "opt-base",
    "llama-7b": "llama-tiny",
    "llama-13b": "llama-small",
    "llama-33b": "llama-base",
    "pythia-6.7b": "pythia-tiny",
    "pythia-12b": "pythia-small",
}


def get_config(name: str) -> ModelConfig:
    """Look up a configuration by name (paper-scale or executable)."""
    if name in PAPER_CONFIGS:
        return PAPER_CONFIGS[name]
    if name in EXECUTABLE_CONFIGS:
        return EXECUTABLE_CONFIGS[name]
    known = sorted(PAPER_CONFIGS) + sorted(EXECUTABLE_CONFIGS)
    raise ConfigurationError(f"unknown model config {name!r}; known: {known}")


def executable_stand_in(paper_name: str) -> ModelConfig:
    """Return the executable stand-in config for a paper-scale model name."""
    if paper_name in EXECUTABLE_CONFIGS:
        return EXECUTABLE_CONFIGS[paper_name]
    try:
        return EXECUTABLE_CONFIGS[EXECUTABLE_STAND_INS[paper_name]]
    except KeyError as exc:
        raise ConfigurationError(
            f"no executable stand-in registered for {paper_name!r}"
        ) from exc


def list_configs(executable: bool | None = None) -> list[str]:
    """List known config names, optionally filtered by executability."""
    names = []
    if executable in (None, False):
        names.extend(sorted(PAPER_CONFIGS))
    if executable in (None, True):
        names.extend(sorted(EXECUTABLE_CONFIGS))
    return names
