"""Hand-constructed retrieval transformer for the accuracy experiments.

The paper's accuracy evaluation (Figure 8) runs real pretrained LLMs on
language-modelling and question-answering datasets and measures how much
each sparse-attention method degrades task quality.  Pretrained checkpoints
are not available offline, so this module builds a transformer whose weights
are *constructed analytically* to solve an in-context associative-retrieval
task with exactly the attention structure the paper exploits:

* **Layer 1** (previous-token head): every position attends to its
  predecessor and copies the predecessor's token identity into a dedicated
  subspace of the residual stream.  A position that follows a *key* token
  therefore "remembers" which key it defines — it becomes a binding site.
* **Layer 2** (retrieval head): a *query* token produces an attention query
  that matches the binding site of its associated key and copies the token
  stored there (the bound *value*) into an output subspace, which the LM
  head reads out.  A constant attention-sink bias gives every binding site
  a moderate amount of attention at **every** step, which is what makes the
  binding sites persistent heavy hitters — the property SWA and H2O rely on
  and local/strided attention cannot exploit.

Because the bound value only ever appears next to its key in the *prompt
prefix*, answering a query requires attending far back in the sequence:
dense attention and SWA (which keeps the binding sites as globally dynamic
tokens thanks to their recurring attention mass) succeed, while local and
strided attention lose the binding sites and collapse — reproducing the
shape of Figure 8 with a deterministic, training-free substrate.

The residual stream is partitioned into four equal subspaces::

    [ E | P | S | O ]
      token id, position, previous-token id, predicted-output id

Position vectors are multi-frequency rotary-style features so that the
"previous position" map is an exact block rotation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, rng, validate_positive
from repro.model.attention import MultiHeadAttention
from repro.model.config import ModelConfig
from repro.model.layers import Embedding, FeedForward, Linear
from repro.model.transformer import DecoderLayer, TransformerModel


@dataclass(frozen=True)
class RecallVocabulary:
    """Token-id layout shared by the constructed model and its workloads.

    * ``key`` tokens appear in the prompt prefix, each immediately followed
      by its bound ``value`` token;
    * ``query`` tokens appear in the measured part of the sequence and ask
      for the value bound to the same-index key;
    * ``filler`` tokens carry no task information.
    """

    vocab_size: int = 256
    num_reserved: int = 8
    max_pairs: int = 16

    def __post_init__(self) -> None:
        validate_positive(vocab_size=self.vocab_size, max_pairs=self.max_pairs)
        if self.filler_start >= self.vocab_size - 8:
            raise ConfigurationError("vocabulary layout leaves no filler tokens")

    @property
    def key_start(self) -> int:
        return self.num_reserved

    @property
    def query_start(self) -> int:
        return self.key_start + self.max_pairs

    @property
    def value_start(self) -> int:
        return self.query_start + self.max_pairs

    @property
    def filler_start(self) -> int:
        return self.value_start + self.max_pairs

    @property
    def num_filler(self) -> int:
        return self.vocab_size - self.filler_start

    def key(self, index: int) -> int:
        self._check_pair(index)
        return self.key_start + index

    def query(self, index: int) -> int:
        self._check_pair(index)
        return self.query_start + index

    def value(self, index: int) -> int:
        self._check_pair(index)
        return self.value_start + index

    def filler(self, offset: int) -> int:
        return self.filler_start + (offset % self.num_filler)

    def _check_pair(self, index: int) -> None:
        if not 0 <= index < self.max_pairs:
            raise ConfigurationError(
                f"pair index {index} out of range [0, {self.max_pairs})"
            )


DEFAULT_VOCABULARY = RecallVocabulary()


@dataclass(frozen=True)
class RecallModelSpec:
    """Capacity knobs of the constructed recall model.

    ``subspace_dim`` (``m``) controls how cleanly token identities separate:
    larger models have less crosstalk between token codes, mirroring the
    paper's "larger LLMs are more robust to KV sparsity" observation.
    """

    name: str
    family: str
    subspace_dim: int
    vocabulary: RecallVocabulary = DEFAULT_VOCABULARY
    max_seq_len: int = 768
    match_logit: float = 16.0
    sink_logit: float = 5.0
    readout_gain: float = 10.0

    def __post_init__(self) -> None:
        validate_positive(subspace_dim=self.subspace_dim,
                          max_seq_len=self.max_seq_len,
                          match_logit=self.match_logit,
                          sink_logit=self.sink_logit,
                          readout_gain=self.readout_gain)
        if self.subspace_dim % 2 != 0:
            raise ConfigurationError("subspace_dim must be even (rotary blocks)")
        if self.subspace_dim < 8:
            raise ConfigurationError("subspace_dim must be at least 8")

    @property
    def hidden_size(self) -> int:
        return 4 * self.subspace_dim

    def to_model_config(self) -> ModelConfig:
        return ModelConfig(
            name=self.name,
            family=self.family,
            num_layers=2,
            hidden_size=self.hidden_size,
            num_heads=1,
            vocab_size=self.vocabulary.vocab_size,
            max_seq_len=self.max_seq_len,
            executable=True,
        )


#: Recall-model stand-ins for the paper's model zoo.  Larger paper models map
#: to larger subspace dimensions (cleaner token separation -> more robust).
RECALL_SPECS: dict[str, RecallModelSpec] = {
    "opt-6.7b": RecallModelSpec("opt-6.7b-recall", "opt", 16),
    "opt-13b": RecallModelSpec("opt-13b-recall", "opt", 32),
    "opt-30b": RecallModelSpec("opt-30b-recall", "opt", 48),
    "llama-7b": RecallModelSpec("llama-7b-recall", "llama", 16),
    "llama-13b": RecallModelSpec("llama-13b-recall", "llama", 32),
    "llama-33b": RecallModelSpec("llama-33b-recall", "llama", 48),
    "pythia-6.7b": RecallModelSpec("pythia-6.7b-recall", "pythia", 16),
    "pythia-12b": RecallModelSpec("pythia-12b-recall", "pythia", 32),
}


def _position_features(max_len: int, dim: int) -> tuple[np.ndarray, np.ndarray]:
    """Rotary-style positional features and the exact one-step shift matrix.

    Returns ``(features, shift)`` where ``features[j]`` is the unit-norm
    feature vector of position ``j`` and ``features[j] @ shift == features[j + 1]``
    (row-vector convention, matching :class:`~repro.model.layers.Linear`).
    """
    num_blocks = dim // 2
    freqs = np.pi * np.geomspace(0.02, 0.9, num_blocks)
    positions = np.arange(max_len)[:, None] * freqs[None, :]
    features = np.empty((max_len, dim))
    features[:, 0::2] = np.cos(positions)
    features[:, 1::2] = np.sin(positions)
    features /= np.sqrt(num_blocks)

    shift = np.zeros((dim, dim))
    for block, freq in enumerate(freqs):
        c, s = np.cos(freq), np.sin(freq)
        i = 2 * block
        shift[i, i] = c
        shift[i, i + 1] = s
        shift[i + 1, i] = -s
        shift[i + 1, i + 1] = c
    return features, shift


def _token_codes(vocab_size: int, dim: int,
                 generator: np.random.Generator) -> np.ndarray:
    """Unit-norm random codes in the first ``dim - 1`` coordinates.

    The last coordinate is reserved for the binding marker added to key
    tokens, so ordinary codes stay exactly orthogonal to it.
    """
    codes = np.zeros((vocab_size, dim))
    raw = generator.normal(0.0, 1.0, size=(vocab_size, dim - 1))
    raw /= np.linalg.norm(raw, axis=1, keepdims=True)
    codes[:, : dim - 1] = raw
    return codes


def _block(matrix: np.ndarray, row_block: int, col_block: int, m: int,
           content: np.ndarray) -> None:
    """Write ``content`` (m x m) into the given subspace block of ``matrix``."""
    matrix[row_block * m:(row_block + 1) * m,
           col_block * m:(col_block + 1) * m] = content


# Subspace block indices within the residual stream.
_E, _P, _S, _O = 0, 1, 2, 3


def build_recall_model(spec: RecallModelSpec | str, seed: int = 0) -> TransformerModel:
    """Construct the two-layer retrieval model for ``spec``.

    ``spec`` may be a :class:`RecallModelSpec` or a paper-scale model name
    registered in :data:`RECALL_SPECS` (e.g. ``"opt-13b"``).
    """
    if isinstance(spec, str):
        try:
            spec = RECALL_SPECS[spec]
        except KeyError as exc:
            raise ConfigurationError(
                f"no recall spec registered for {spec!r}; known: "
                f"{sorted(RECALL_SPECS)}"
            ) from exc

    m = spec.subspace_dim
    hidden = spec.hidden_size
    vocab = spec.vocabulary
    config = spec.to_model_config()
    generator = rng(seed)

    token_codes = _token_codes(vocab.vocab_size, m, generator)
    # Key tokens carry the binding marker in the reserved last coordinate so
    # that binding sites (positions following a key) are recognizable to the
    # attention-sink bias regardless of which key they define.  The unmarked
    # codes are kept for the query->key match map so that a query's attention
    # query does not leak onto other bindings through the shared marker.
    unmarked_key_codes = {
        pair: token_codes[vocab.key(pair)].copy() for pair in range(vocab.max_pairs)
    }
    marker = np.zeros(m)
    marker[m - 1] = 1.0
    for pair in range(vocab.max_pairs):
        key_id = vocab.key(pair)
        token_codes[key_id] = (token_codes[key_id] + marker) / np.sqrt(2.0)

    pos_features, shift = _position_features(spec.max_seq_len, m)

    # Embedding: token code in the E subspace.
    embedding_table = np.zeros((vocab.vocab_size, hidden))
    embedding_table[:, _E * m:(_E + 1) * m] = token_codes
    embedding = Embedding(embedding_table)

    # Positional encoding: position feature in the P subspace.
    positional = np.zeros((spec.max_seq_len, hidden))
    positional[:, _P * m:(_P + 1) * m] = pos_features

    identity_m = np.eye(m)
    # Attention divides logits by sqrt(head_dim); pre-scale so the matched
    # logit lands at spec.match_logit and the sink at spec.sink_logit.
    match_gain = spec.match_logit * np.sqrt(hidden)
    sink_gain = spec.sink_logit * np.sqrt(hidden) * np.sqrt(2.0)

    # ----------------------- layer 1: previous-token head ----------------- #
    w_q1 = np.zeros((hidden, hidden))
    _block(w_q1, _P, _P, m, match_gain * identity_m)
    w_k1 = np.zeros((hidden, hidden))
    # Key of position j is its position feature advanced by one step, so the
    # query of position t matches exactly the key of position t - 1.
    _block(w_k1, _P, _P, m, shift)
    w_v1 = np.zeros((hidden, hidden))
    _block(w_v1, _E, _S, m, identity_m)  # copy token id -> S subspace
    w_o1 = np.eye(hidden)

    # ----------------------- layer 2: retrieval head ---------------------- #
    # Query tokens target the code of their associated *key* token, so only
    # the original binding site (whose S subspace holds the key code) matches
    # — repetitions of the query token elsewhere do not.
    query_to_key = np.zeros((m, m))
    for pair in range(vocab.max_pairs):
        query_code = token_codes[vocab.query(pair)]
        # Target only the key-specific part of the binding site's code (no
        # marker component), rescaled so the matched logit stays at
        # match_logit despite the marker split of the stored key code.
        target = unmarked_key_codes[pair] * np.sqrt(2.0)
        query_to_key += np.outer(query_code, target)

    w_q2 = np.zeros((hidden, hidden))
    _block(w_q2, _E, _S, m, match_gain * query_to_key)
    # Constant attention sink on the binding marker: every step hands the
    # binding sites a moderate share of attention, keeping them heavy hitters.
    b_q2 = np.zeros(hidden)
    b_q2[_S * m:(_S + 1) * m] = sink_gain * marker

    w_k2 = np.zeros((hidden, hidden))
    _block(w_k2, _S, _S, m, identity_m)  # previous-token id stored at j
    w_v2 = np.zeros((hidden, hidden))
    _block(w_v2, _E, _O, m, identity_m)  # copy token id at j -> O subspace
    w_o2 = np.eye(hidden)

    def _attention(layer_idx, wq, wk, wv, wo, bq=None) -> MultiHeadAttention:
        return MultiHeadAttention(
            layer_idx=layer_idx,
            num_heads=1,
            hidden_size=hidden,
            w_q=Linear(wq, bias=bq),
            w_k=Linear(wk, bias=None),
            w_v=Linear(wv, bias=None),
            w_o=Linear(wo, bias=None),
        )

    def _zero_ffn() -> FeedForward:
        return FeedForward(
            up=Linear(np.zeros((hidden, config.ffn_size)), bias=None),
            down=Linear(np.zeros((config.ffn_size, hidden)), bias=None),
        )

    layers = [
        DecoderLayer(attention=_attention(0, w_q1, w_k1, w_v1, w_o1),
                     ffn=_zero_ffn(), norm_attn=None, norm_ffn=None),
        DecoderLayer(attention=_attention(1, w_q2, w_k2, w_v2, w_o2, b_q2),
                     ffn=_zero_ffn(), norm_attn=None, norm_ffn=None),
    ]

    # LM head: read the O subspace against the token codes.
    lm_weight = np.zeros((hidden, vocab.vocab_size))
    lm_weight[_O * m:(_O + 1) * m, :] = spec.readout_gain * token_codes.T
    lm_head = Linear(lm_weight, bias=None)

    return TransformerModel(
        config=config,
        embedding=embedding,
        layers=layers,
        final_norm=None,
        lm_head=lm_head,
        positional=positional,
    )
