"""Decoder-only transformer model executable in NumPy.

The model follows the structure sketched in Figure 2(a) of the paper: an
embedding layer, a stack of identical transformer layers (multi-head
attention + feed-forward network, each with a residual connection and layer
normalization), and a linear language-modelling head.

The model is inference-only.  KV caching and the attention policy are
injected per run via :class:`InferenceSession`, so the same weights can be
evaluated under dense, local, strided, H2O, or SWA attention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError
from repro.attention.base import AttentionPolicy
from repro.attention.variants import DenseAttentionPolicy
from repro.kvcache.cache import ModelKVCache
from repro.model.attention import MultiHeadAttention
from repro.model.config import ModelConfig
from repro.model.layers import Embedding, FeedForward, LayerNorm, Linear, sinusoidal_positions


@dataclass
class DecoderLayer:
    """One transformer decoder layer: MHA + FFN with pre-norm residuals."""

    attention: MultiHeadAttention
    ffn: FeedForward
    norm_attn: LayerNorm | None
    norm_ffn: LayerNorm | None

    def forward(self, x: np.ndarray, cache, policy: AttentionPolicy):
        attn_in = self.norm_attn(x) if self.norm_attn is not None else x
        attn_out = self.attention.forward(attn_in, cache, policy)
        x = x + attn_out.hidden
        ffn_in = self.norm_ffn(x) if self.norm_ffn is not None else x
        x = x + self.ffn(ffn_in)
        return x, attn_out

    def num_parameters(self) -> int:
        total = self.attention.num_parameters() + self.ffn.num_parameters()
        for norm in (self.norm_attn, self.norm_ffn):
            if norm is not None:
                total += norm.num_parameters()
        return total


@dataclass
class StepRecord:
    """Attention weights and kept positions of one forward call, per layer."""

    step_index: int
    seq_len: int
    weights: list[np.ndarray]
    key_positions: list[np.ndarray]


class TransformerModel:
    """Decoder-only transformer with injectable KV-cache attention policy."""

    def __init__(self, config: ModelConfig, embedding: Embedding,
                 layers: list[DecoderLayer], final_norm: LayerNorm | None,
                 lm_head: Linear,
                 positional: np.ndarray | None = None) -> None:
        if len(layers) != config.num_layers:
            raise ConfigurationError(
                f"expected {config.num_layers} layers, got {len(layers)}"
            )
        self.config = config
        self.embedding = embedding
        self.layers = layers
        self.final_norm = final_norm
        self.lm_head = lm_head
        if positional is None:
            positional = sinusoidal_positions(config.max_seq_len, config.hidden_size)
        self.positional = positional

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        total = self.embedding.num_parameters() + self.lm_head.num_parameters()
        total += sum(layer.num_parameters() for layer in self.layers)
        if self.final_norm is not None:
            total += self.final_norm.num_parameters()
        return total

    def new_cache(self, batch_size: int,
                  kv_quantization=None) -> ModelKVCache:
        return ModelKVCache(
            num_layers=self.config.num_layers,
            batch_size=batch_size,
            num_heads=self.config.num_heads,
            head_dim=self.config.head_dim,
            quantization=kv_quantization,
        )

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def forward(self, token_ids: np.ndarray, cache: ModelKVCache,
                policy: AttentionPolicy, start_position: int) -> tuple[np.ndarray, StepRecord]:
        """Run the decoder stack over ``token_ids`` of shape ``(batch, q_len)``.

        Returns logits of shape ``(batch, q_len, vocab)`` and the per-layer
        attention record of this call.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ConfigurationError("token_ids must be (batch, q_len)")
        batch, q_len = token_ids.shape
        end = start_position + q_len
        if end > self.config.max_seq_len:
            raise ConfigurationError(
                f"sequence length {end} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )

        hidden = self.embedding(token_ids) + self.positional[start_position:end]

        weights: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        for layer, layer_cache in zip(self.layers, cache.layers):
            hidden, attn_out = layer.forward(hidden, layer_cache, policy)
            weights.append(attn_out.weights)
            positions.append(attn_out.key_positions)

        if self.final_norm is not None:
            hidden = self.final_norm(hidden)
        logits = self.lm_head(hidden)
        record = StepRecord(step_index=start_position, seq_len=end,
                            weights=weights, key_positions=positions)
        return logits, record


class InferenceSession:
    """Stateful autoregressive inference over a :class:`TransformerModel`.

    Owns the KV cache and the attention policy for one generation run and
    keeps the per-step attention records needed by the analysis code.
    """

    def __init__(self, model: TransformerModel, batch_size: int,
                 policy: AttentionPolicy | None = None,
                 record_attention: bool = True,
                 kv_quantization=None) -> None:
        self.model = model
        self.batch_size = batch_size
        self.policy = policy if policy is not None else DenseAttentionPolicy()
        self.policy.reset(model.config.num_layers)
        self.cache = model.new_cache(batch_size, kv_quantization=kv_quantization)
        self.record_attention = record_attention
        self.records: list[StepRecord] = []
        self._position = 0

    @property
    def seq_len(self) -> int:
        """Number of tokens processed so far."""
        return self._position

    def prefill(self, token_ids: np.ndarray) -> np.ndarray:
        """Process the full prompt at once; returns logits for every position."""
        if self._position != 0:
            raise ConfigurationError("prefill must be the first call of a session")
        logits, record = self.model.forward(
            token_ids, self.cache, self.policy, start_position=0
        )
        self._position = token_ids.shape[1]
        if self.record_attention:
            self.records.append(record)
        return logits

    def decode_step(self, token_ids: np.ndarray) -> np.ndarray:
        """Process one token per batch element; returns next-token logits."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[:, None]
        if token_ids.shape != (self.batch_size, 1):
            raise ConfigurationError(
                f"decode_step expects shape ({self.batch_size}, 1); "
                f"got {token_ids.shape}"
            )
        logits, record = self.model.forward(
            token_ids, self.cache, self.policy, start_position=self._position
        )
        self._position += 1
        if self.record_attention:
            self.records.append(record)
        return logits[:, -1]

    def kv_cache_bytes(self, dtype_bytes: float = 2.0) -> float:
        """Current KV-cache size in bytes at the given element width."""
        return self.cache.size_bytes(dtype_bytes)
