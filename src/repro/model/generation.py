"""Autoregressive text generation over the functional transformer.

Implements the prefilling + decoding loop of Figure 2 (a) with greedy or
temperature sampling, returning generated tokens plus the per-step attention
records and KV-cache sizes needed by the analysis experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._common import ConfigurationError, rng
from repro.attention.base import AttentionPolicy
from repro.model.transformer import InferenceSession, StepRecord, TransformerModel


@dataclass
class GenerationResult:
    """Output of :func:`generate`."""

    prompt_tokens: np.ndarray
    generated_tokens: np.ndarray
    records: list[StepRecord] = field(default_factory=list)
    kv_bytes_per_step: list[float] = field(default_factory=list)

    @property
    def sequences(self) -> np.ndarray:
        """Full sequences (prompt + generated), shape ``(batch, total_len)``."""
        return np.concatenate([self.prompt_tokens, self.generated_tokens], axis=1)

    @property
    def num_generated(self) -> int:
        return self.generated_tokens.shape[1]


def _select_next(logits: np.ndarray, temperature: float,
                 generator: np.random.Generator) -> np.ndarray:
    """Pick next tokens from logits of shape ``(batch, vocab)``."""
    if temperature <= 0.0:
        return logits.argmax(axis=-1)
    scaled = logits / temperature
    scaled -= scaled.max(axis=-1, keepdims=True)
    probs = np.exp(scaled)
    probs /= probs.sum(axis=-1, keepdims=True)
    return np.array([
        generator.choice(probs.shape[1], p=row) for row in probs
    ])


def generate(model: TransformerModel, prompt_tokens: np.ndarray,
             max_new_tokens: int, policy: AttentionPolicy | None = None,
             temperature: float = 0.0, eos_token: int | None = None,
             seed: int = 0, record_attention: bool = True,
             kv_dtype_bytes: float = 2.0) -> GenerationResult:
    """Generate ``max_new_tokens`` continuations for each prompt.

    Parameters
    ----------
    prompt_tokens:
        Array of shape ``(batch, prompt_len)``.
    policy:
        Attention policy applied during decoding (dense if ``None``).
    temperature:
        0 means greedy decoding; otherwise softmax sampling.
    eos_token:
        Decoding stops early for the whole batch once *every* sequence has
        emitted this token (mirrors the paper's ``<EOS>`` behaviour).
    """
    prompt_tokens = np.asarray(prompt_tokens)
    if prompt_tokens.ndim != 2:
        raise ConfigurationError("prompt_tokens must be (batch, prompt_len)")
    if max_new_tokens <= 0:
        raise ConfigurationError("max_new_tokens must be positive")

    batch = prompt_tokens.shape[0]
    generator = rng(seed)
    session = InferenceSession(model, batch_size=batch, policy=policy,
                               record_attention=record_attention)

    logits = session.prefill(prompt_tokens)
    next_tokens = _select_next(logits[:, -1], temperature, generator)

    generated = [next_tokens]
    kv_bytes = [session.kv_cache_bytes(kv_dtype_bytes)]
    finished = np.zeros(batch, dtype=bool)
    if eos_token is not None:
        finished |= next_tokens == eos_token

    for _ in range(max_new_tokens - 1):
        if eos_token is not None and bool(finished.all()):
            break
        logits = session.decode_step(next_tokens)
        next_tokens = _select_next(logits, temperature, generator)
        generated.append(next_tokens)
        kv_bytes.append(session.kv_cache_bytes(kv_dtype_bytes))
        if eos_token is not None:
            finished |= next_tokens == eos_token

    result = GenerationResult(
        prompt_tokens=prompt_tokens,
        generated_tokens=np.stack(generated, axis=1),
        records=session.records,
        kv_bytes_per_step=kv_bytes,
    )
    return result


def teacher_forced_logits(model: TransformerModel, token_ids: np.ndarray,
                          policy: AttentionPolicy | None = None,
                          prefill_len: int = 8,
                          record_attention: bool = False,
                          kv_quantization=None
                          ) -> tuple[np.ndarray, InferenceSession]:
    """Run a sequence through the model one token at a time (teacher forcing).

    The first ``prefill_len`` tokens are processed densely in one prefill
    pass (the paper applies sparsity only during decoding); every following
    token is fed through :meth:`InferenceSession.decode_step` under the given
    policy, which emulates evaluating the model with a sparsified KV cache.

    Returns logits of shape ``(batch, seq_len - 1, vocab)`` aligned so that
    ``logits[:, t]`` predicts ``token_ids[:, t + 1]``, plus the session (for
    attention-record inspection).
    """
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 2:
        raise ConfigurationError("token_ids must be (batch, seq_len)")
    batch, seq_len = token_ids.shape
    prefill_len = int(np.clip(prefill_len, 1, seq_len - 1))

    session = InferenceSession(model, batch_size=batch, policy=policy,
                               record_attention=record_attention,
                               kv_quantization=kv_quantization)
    prefill_logits = session.prefill(token_ids[:, :prefill_len])

    all_logits = [prefill_logits[:, :-1], prefill_logits[:, -1:]]
    for t in range(prefill_len, seq_len - 1):
        step_logits = session.decode_step(token_ids[:, t])
        all_logits.append(step_logits[:, None, :])
    logits = np.concatenate(all_logits, axis=1)
    return logits, session
