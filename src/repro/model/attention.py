"""Multi-head attention with a pluggable KV-cache policy.

This is the functional (NumPy-executable) attention layer.  It supports the
two phases of autoregressive inference described in Figure 2 of the paper:

* **prefill** — all input tokens are processed at once and their KV tensors
  are written to the cache;
* **decode** — one token at a time; its query attends over the cached KV
  tensors of the positions selected by the active
  :class:`~repro.attention.base.AttentionPolicy`.

The layer also reports the attention weights of every call so that the
sparsity, distribution, and heat-map experiments (Figures 3–5, 10) can be
run without re-implementing attention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError
from repro.attention.base import AttentionPolicy
from repro.kvcache.cache import LayerKVCache
from repro.model.layers import Linear, causal_mask, masked_softmax


@dataclass
class AttentionOutput:
    """Result of one attention call."""

    hidden: np.ndarray
    weights: np.ndarray
    key_positions: np.ndarray


class MultiHeadAttention:
    """Multi-head self-attention with token-level KV caching."""

    def __init__(self, layer_idx: int, num_heads: int, hidden_size: int,
                 w_q: Linear, w_k: Linear, w_v: Linear, w_o: Linear) -> None:
        if hidden_size % num_heads != 0:
            raise ConfigurationError("hidden_size must be divisible by num_heads")
        self.layer_idx = layer_idx
        self.num_heads = num_heads
        self.hidden_size = hidden_size
        self.head_dim = hidden_size // num_heads
        self.w_q = w_q
        self.w_k = w_k
        self.w_v = w_v
        self.w_o = w_o

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def project_kv(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project hidden states to per-token keys and values.

        Returns arrays of shape ``(batch, seq, heads, head_dim)`` — the
        layout used by :class:`~repro.kvcache.cache.LayerKVCache`.
        """
        batch, seq, _ = x.shape
        keys = self.w_k(x).reshape(batch, seq, self.num_heads, self.head_dim)
        values = self.w_v(x).reshape(batch, seq, self.num_heads, self.head_dim)
        return keys, values

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, cache: LayerKVCache,
                policy: AttentionPolicy | None = None) -> AttentionOutput:
        """Run attention for ``x`` of shape ``(batch, q_len, hidden)``.

        The new tokens' KV tensors are appended to ``cache`` before the
        policy selects which cached positions to attend to.  During prefill
        (``q_len > 1``) attention is always dense and causal, matching the
        paper's protocol of applying sparsity only at the decoding stage.
        """
        if x.ndim != 3:
            raise ConfigurationError("attention input must be (batch, seq, hidden)")
        batch, q_len, hidden = x.shape
        if hidden != self.hidden_size:
            raise ConfigurationError(
                f"hidden size mismatch: {hidden} != {self.hidden_size}"
            )

        keys, values = self.project_kv(x)
        cache.append(keys, values)
        seq_len = cache.seq_len

        queries = self._split_heads(self.w_q(x).reshape(batch, q_len, hidden))

        if q_len > 1 or policy is None:
            positions = np.arange(seq_len)
        else:
            selected = policy.select(self.layer_idx, seq_len)
            positions = np.arange(seq_len) if selected is None else np.asarray(selected)

        cached_k, cached_v = cache.gather(positions)
        # (batch, heads, kept, head_dim)
        k_heads = cached_k.transpose(0, 2, 1, 3)
        v_heads = cached_v.transpose(0, 2, 1, 3)

        logits = queries @ k_heads.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)

        if q_len > 1:
            mask = causal_mask(q_len, seq_len)
        else:
            mask = None
        weights = masked_softmax(logits, mask)
        context = weights @ v_heads
        hidden_out = self.w_o(self._merge_heads(context))

        if policy is not None:
            policy.observe(self.layer_idx, positions, weights)

        return AttentionOutput(hidden=hidden_out, weights=weights,
                               key_positions=positions)

    def num_parameters(self) -> int:
        return sum(p.num_parameters() for p in (self.w_q, self.w_k, self.w_v, self.w_o))
