"""Shared skeleton for system-level inference simulators.

Every system the paper compares (ALISA, FlexGen, vLLM, HuggingFace
Accelerate, DeepSpeed-ZeRO, plus a GPU-only reference) is expressed as a
*placement policy* over the same substrate: the analytic cost model charges
GPU compute, the memory hierarchy tracks capacity and raises OOM, and the
PCIe link charges every byte moved between CPU and GPU.

A concrete system implements two hooks:

* :meth:`InferenceSimulator.plan_prefill` — where the prompt's KV tensors go;
* :meth:`InferenceSimulator.plan_decode_step` — what moves at each step.

Both return a :class:`SystemStepPlan`; the base class turns plans into
:class:`~repro.systems.trace.StepTiming` records and an
:class:`~repro.systems.trace.InferenceTrace`.  The pricing helpers
(:meth:`InferenceSimulator.prefill_timing`,
:meth:`InferenceSimulator.step_timing`) are also driven step-by-step by the
online serving engine (:mod:`repro.serving.engine`), which manages request
admission and KV residency itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

import numpy as np

from repro._common import ConfigurationError, OutOfMemoryError
from repro.hardware.presets import HardwareSpec
from repro.model.config import ModelConfig, get_config
from repro.systems.cost import LLMCostModel, ParallelismSpec
from repro.systems.memory import MemoryHierarchy, PCIeLink
from repro.systems.trace import InferenceTrace, StepTiming
from repro.workloads.descriptors import Workload

WEIGHTS = "weights"
ACTIVATIONS = "activations"
KV_GPU = "kv-cache-gpu"
KV_CPU = "kv-cache-cpu"


@dataclass(frozen=True)
class SystemStepPlan:
    """Placement and movement decisions for one step of a simulated system."""

    phase: str
    kv_gpu_tokens: float
    kv_cpu_tokens: float
    kept_kv: int | None = None
    local_window: int = 0
    load_kv_tokens: float = 0.0
    offload_kv_tokens: float = 0.0
    recompute_tokens: float = 0.0
    quantize_tokens: float = 0.0
    cpu_attention_tokens: float = 0.0
    extra_h2d_bytes: float = 0.0
    extra_overhead_s: float = 0.0


@dataclass(frozen=True)
class EpochPlan:
    """Vectorized decode-step plans for one fixed-composition epoch.

    The array-of-structs counterpart of a list of
    :class:`SystemStepPlan` records: one entry per decode step, with the
    same field semantics.  ``None`` fields mean "all zeros" (for token
    movement) or "dense attention at every step" (``kept_kv``), so simple
    systems do not have to materialize zero arrays.
    """

    phases: tuple[str, ...]
    kv_gpu_tokens: np.ndarray
    kv_cpu_tokens: np.ndarray
    kept_kv: np.ndarray | None = None
    local_windows: np.ndarray | None = None
    load_kv_tokens: np.ndarray | None = None
    offload_kv_tokens: np.ndarray | None = None
    recompute_tokens: np.ndarray | None = None
    quantize_tokens: np.ndarray | None = None
    cpu_attention_tokens: np.ndarray | None = None
    extra_h2d_bytes: np.ndarray | None = None
    extra_overhead_s: np.ndarray | None = None

    @property
    def num_steps(self) -> int:
        return len(self.phases)

    @classmethod
    def from_step_plans(cls, plans: list[SystemStepPlan],
                        workload: Workload) -> "EpochPlan":
        """Pack per-step :class:`SystemStepPlan` records into arrays.

        This is the generic-fallback packer used for simulators that only
        implement :meth:`InferenceSimulator.plan_decode_step`.  A per-step
        ``kept_kv`` of ``None`` (dense attention) is replaced by the step's
        sequence length, which prices identically (the cost model clamps
        ``kept_kv`` to the sequence length).
        """
        seq_lens = [workload.input_len + step + 1
                    for step in range(len(plans))]
        return cls(
            phases=tuple(plan.phase for plan in plans),
            kv_gpu_tokens=np.array([p.kv_gpu_tokens for p in plans]),
            kv_cpu_tokens=np.array([p.kv_cpu_tokens for p in plans]),
            kept_kv=np.array([
                seq if plan.kept_kv is None else plan.kept_kv
                for seq, plan in zip(seq_lens, plans)]),
            local_windows=np.array([p.local_window for p in plans]),
            load_kv_tokens=np.array([p.load_kv_tokens for p in plans]),
            offload_kv_tokens=np.array([p.offload_kv_tokens for p in plans]),
            recompute_tokens=np.array([p.recompute_tokens for p in plans]),
            quantize_tokens=np.array([p.quantize_tokens for p in plans]),
            cpu_attention_tokens=np.array([p.cpu_attention_tokens
                                           for p in plans]),
            extra_h2d_bytes=np.array([p.extra_h2d_bytes for p in plans]),
            extra_overhead_s=np.array([p.extra_overhead_s for p in plans]),
        )


@dataclass(frozen=True)
class EpochTimings:
    """Vectorized pricing of every decode step of one epoch.

    Produced by :meth:`InferenceSimulator.epoch_timings`; one array entry
    per step, field-for-field identical to the :class:`StepTiming` records
    the step loop would produce (``gpu_used_bytes``/``cpu_used_bytes`` are
    filled in by :meth:`InferenceSimulator.run` after applying memory).
    ``h2d_bytes``/``d2h_bytes`` are the per-step PCIe link traffic
    (reloads plus any extra host-to-device bytes, and offloads) that the
    step loop would have recorded on ``memory.link``.
    """

    sequence_lengths: np.ndarray
    phases: tuple[str, ...]
    compute_times: np.ndarray
    transfer_times: np.ndarray
    recompute_times: np.ndarray
    overhead_times: np.ndarray
    total_times: np.ndarray
    comm_times: np.ndarray
    gpu_kv_bytes: np.ndarray
    cpu_kv_bytes: np.ndarray
    bytes_offloaded: np.ndarray
    bytes_reloaded: np.ndarray
    h2d_bytes: np.ndarray
    d2h_bytes: np.ndarray

    @property
    def num_steps(self) -> int:
        return len(self.phases)

    @property
    def pcie_bytes(self) -> float:
        """Total PCIe traffic of the full epoch (reporting helper)."""
        return float(np.sum(self.h2d_bytes) + np.sum(self.d2h_bytes))


class InferenceSimulator(ABC):
    """Base class: runs the prefill + decode loop over step plans."""

    #: Display name used in experiment tables.
    name: str = "base"

    #: Whether the system overlaps PCIe transfers with GPU compute (FlexGen,
    #: vLLM, and ALISA pipeline I/O against compute layer by layer; naive
    #: offloading does not).  When enabled, only the *exposed* transfer time
    #: (the part not hidden behind compute) is charged to the step.
    overlap_io: bool = False

    def __init__(self, model: ModelConfig | str, hardware: HardwareSpec,
                 compute_dtype: str = "fp16", kv_dtype: str = "fp16",
                 weights_on_gpu: bool = True,
                 parallelism: ParallelismSpec | None = None,
                 exact_stepping: bool = False) -> None:
        self.config = get_config(model) if isinstance(model, str) else model
        self.hardware = hardware
        #: Escape hatch mirroring ``SchedulePolicy(exact=True)``: price
        #: decode epochs with the legacy per-step Python loop instead of
        #: the vectorized fast path (bit-identical results, much slower).
        self.exact_stepping = exact_stepping
        if parallelism is None:
            # Multi-GPU nodes default to tensor parallelism across all GPUs;
            # the cost model validates degree == gpu_count either way.
            parallelism = (ParallelismSpec() if hardware.gpu_count == 1
                           else ParallelismSpec(mode="tp",
                                                degree=hardware.gpu_count))
        self.parallelism = parallelism
        self.cost_model = LLMCostModel(self.config, hardware, compute_dtype,
                                       parallelism=parallelism)
        self.kv_dtype = kv_dtype
        self.weights_on_gpu = weights_on_gpu

    # ------------------------------------------------------------------ #
    # hooks for concrete systems
    # ------------------------------------------------------------------ #
    @abstractmethod
    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        """Place the prompt's KV tensors after the prefilling stage."""

    @abstractmethod
    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        """Plan decoding step ``step`` (0-based)."""

    def prepare(self, workload: Workload) -> None:
        """Reset any per-run state before a simulation (optional hook).

        The continuous-batching serving engine calls this once per decode
        epoch (whenever batch composition changes), so implementations with
        expensive offline planning should serve repeats incrementally — see
        :meth:`repro.core.engine.AlisaSystem.prepare`, which backs its
        schedule search with a :class:`~repro.core.schedule_cache.ScheduleCache`.
        """

    def schedule_stats(self) -> dict[str, int]:
        """Counters describing how offline planning was served (optional).

        Systems without an offline planning stage return an empty dict; the
        serving engine attaches the per-serve increments to its trace
        metadata for observability.
        """
        return {}

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        """Plan every decode step of ``workload`` in one call.

        Concrete systems override this with an array-wise implementation of
        their per-step formula; this generic fallback loops
        :meth:`plan_decode_step` so third-party simulators keep working
        unchanged (they still get vectorized *pricing* via
        :meth:`epoch_timings`, just not vectorized planning).
        """
        plans = [self.plan_decode_step(step, workload)
                 for step in range(workload.output_len)]
        return EpochPlan.from_step_plans(plans, workload)

    def pricing_is_shape_pure(self) -> bool:
        """Whether a priced epoch is a pure function of the workload shape.

        True for every stateless placement policy.  Systems whose per-shape
        plan depends on solver *history* (ALISA's warm-started/canonical
        schedule search seeds from previously solved shapes) return False,
        and the cluster layer then keeps their priced-epoch caches per
        replica: sharing one across replicas with independent solver
        caches could silently change which schedule prices a shape.
        """
        return True

    def pricing_signature(self) -> tuple:
        """Hashable identity of this simulator's pricing function.

        Two simulators with equal signatures price identical workload
        shapes identically (given equal solver history — see
        :meth:`pricing_is_shape_pure`), so serving-layer caches (prefill
        plans, priced epochs) may be shared between their engines —
        :class:`~repro.cluster.group.ReplicaGroup` does exactly that for
        replicas built from one factory.  Subclasses with extra pricing
        knobs must extend the tuple (see ``AlisaSystem``).
        """
        hw = self.hardware
        link = hw.interconnect
        return (
            type(self).__qualname__, self.config.name, hw.name,
            hw.gpu.name, hw.gpu.memory_bytes, hw.gpu.fp16_flops,
            hw.gpu.hbm_bandwidth, hw.gpu.compute_efficiency,
            hw.cpu.name, hw.cpu.memory_bytes, hw.cpu.flops,
            hw.cpu.dram_bandwidth, hw.pcie_bandwidth, hw.gpu_count,
            None if link is None else (link.name, link.bandwidth,
                                       link.latency_s),
            self.cost_model.dtype, self.kv_dtype, self.weights_on_gpu,
            self.parallelism.mode, self.parallelism.degree,
            self.parallelism.pp_microbatches, self.overlap_io,
            self.exact_stepping,
        )

    # ------------------------------------------------------------------ #
    # shared machinery
    # ------------------------------------------------------------------ #
    def kv_token_bytes(self, workload: Workload) -> float:
        """Bytes of one token's KV tensors across layers and batch."""
        return self.cost_model.kv_bytes_per_token(workload.batch_size,
                                                  self.kv_dtype)

    def _apply_memory(self, plan: SystemStepPlan, workload: Workload,
                      memory: MemoryHierarchy) -> None:
        per_token = self.kv_token_bytes(workload)
        memory.gpu.resize(KV_GPU, plan.kv_gpu_tokens * per_token)
        memory.cpu.resize(KV_CPU, plan.kv_cpu_tokens * per_token)

    def _transfer_time(self, plan: SystemStepPlan, workload: Workload,
                       memory: MemoryHierarchy) -> float:
        per_token = self.kv_token_bytes(workload)
        time = 0.0
        time += memory.link.host_to_device(plan.load_kv_tokens * per_token
                                           + plan.extra_h2d_bytes)
        time += memory.link.device_to_host(plan.offload_kv_tokens * per_token)
        return time

    def prefill_timing(self, plan: SystemStepPlan, workload: Workload,
                       memory: MemoryHierarchy) -> float:
        """Wall-clock time of the prefilling stage under ``plan``.

        Charges GPU compute, PCIe transfers, and — exactly like the decode
        loop — the (de)quantization overhead for any KV tokens the plan
        compresses on their way to CPU memory (Section V-B).
        """
        compute = self.cost_model.prefill_time(workload.batch_size,
                                               workload.input_len)
        transfer = self._transfer_time(plan, workload, memory)
        overhead = plan.extra_overhead_s
        if plan.quantize_tokens > 0:
            overhead += self.cost_model.quantize_time(
                workload.batch_size, int(round(plan.quantize_tokens))
            )
        return compute + transfer + overhead

    def step_timing(self, plan: SystemStepPlan, step: int, workload: Workload,
                    memory: MemoryHierarchy) -> StepTiming:
        """Price one decode-step plan into a :class:`StepTiming`.

        Pure pricing: PCIe traffic is recorded on ``memory.link`` but no
        capacity is allocated, so callers that manage residency themselves
        (the continuous-batching serving engine) can reuse the exact
        accounting of :meth:`run`.  ``gpu_used_bytes``/``cpu_used_bytes`` are
        left zero; :meth:`run` fills them in after applying the plan.
        """
        seq_len = workload.input_len + step + 1
        per_token = self.kv_token_bytes(workload)
        compute = self.cost_model.decode_step_time(
            workload.batch_size, kv_len=seq_len, kept_kv=plan.kept_kv,
            local_window=plan.local_window,
        )
        transfer = self._transfer_time(plan, workload, memory)
        recompute = self.cost_model.recompute_time(
            workload.batch_size, int(round(plan.recompute_tokens))
        )
        if self.overlap_io:
            transfer = max(0.0, transfer - compute - recompute)
        if plan.cpu_attention_tokens > 0:
            # Attention over CPU-resident KV is computed CPU-side and
            # sits on the critical path (counted as KV-caching time).
            transfer += self.cost_model.cpu_attention_time(
                workload.batch_size, plan.cpu_attention_tokens,
                self.kv_dtype,
            )
        overhead = plan.extra_overhead_s
        if plan.quantize_tokens > 0:
            overhead += self.cost_model.quantize_time(
                workload.batch_size, int(round(plan.quantize_tokens))
            )
        return StepTiming(
            step=step, sequence_length=seq_len, phase=plan.phase,
            compute_time=compute, transfer_time=transfer,
            recompute_time=recompute, overhead_time=overhead,
            gpu_kv_bytes=plan.kv_gpu_tokens * per_token,
            cpu_kv_bytes=plan.kv_cpu_tokens * per_token,
            bytes_offloaded=plan.offload_kv_tokens * per_token,
            bytes_reloaded=plan.load_kv_tokens * per_token,
        )

    def epoch_timings(self, workload: Workload,
                      link: PCIeLink | None = None) -> EpochTimings:
        """Price all ``output_len`` decode steps of ``workload`` at once.

        The vectorized counterpart of calling :meth:`plan_decode_step` +
        :meth:`step_timing` once per step: every per-step formula is
        applied array-wise in the same operation order, so the resulting
        arrays are bit-identical to the step loop's values (pinned by
        ``tests/test_epoch_pricing.py``).  Pure pricing — no memory is
        allocated and no traffic is recorded; ``link`` only supplies the
        PCIe latency/bandwidth (defaults to the node's own link).
        """
        plan = self.plan_decode_epoch(workload)
        num_steps = plan.num_steps
        if link is None:
            link = PCIeLink(self.hardware.node_pcie_bandwidth)

        def filled(values: np.ndarray | None) -> np.ndarray:
            return np.zeros(num_steps) if values is None else values

        seq_lens = workload.input_len + np.arange(num_steps) + 1
        per_token = self.kv_token_bytes(workload)
        load = filled(plan.load_kv_tokens)
        offload = filled(plan.offload_kv_tokens)
        h2d_bytes = load * per_token + filled(plan.extra_h2d_bytes)
        d2h_bytes = offload * per_token
        if np.any(h2d_bytes < 0) or np.any(d2h_bytes < 0):
            raise ConfigurationError("transfer size must be non-negative")

        compute = self.cost_model.decode_step_time_batch(
            workload.batch_size, seq_lens, plan.kept_kv, plan.local_windows)
        transfer = (
            np.where(h2d_bytes > 0,
                     link.latency_s + h2d_bytes / link.bandwidth_bytes_per_s,
                     0.0)
            + np.where(d2h_bytes > 0,
                       link.latency_s + d2h_bytes / link.bandwidth_bytes_per_s,
                       0.0)
        )
        recompute = self.cost_model.recompute_time_batch(
            workload.batch_size, np.rint(filled(plan.recompute_tokens)))
        if self.overlap_io:
            transfer = np.maximum(0.0, transfer - compute - recompute)
        transfer = transfer + self.cost_model.cpu_attention_time_batch(
            workload.batch_size, filled(plan.cpu_attention_tokens),
            self.kv_dtype)
        quantized = filled(plan.quantize_tokens)
        overhead = filled(plan.extra_overhead_s) + np.where(
            quantized > 0,
            self.cost_model.quantize_time_batch(workload.batch_size,
                                                np.rint(quantized)),
            0.0)
        return EpochTimings(
            sequence_lengths=seq_lens,
            phases=plan.phases,
            compute_times=compute,
            transfer_times=transfer,
            recompute_times=recompute,
            overhead_times=overhead,
            total_times=compute + transfer + recompute + overhead,
            comm_times=np.full(num_steps, self.parallel_comm_time(workload)),
            gpu_kv_bytes=plan.kv_gpu_tokens * per_token,
            cpu_kv_bytes=plan.kv_cpu_tokens * per_token,
            bytes_offloaded=offload * per_token,
            bytes_reloaded=load * per_token,
            h2d_bytes=h2d_bytes,
            d2h_bytes=d2h_bytes,
        )

    def run(self, workload: Workload) -> InferenceTrace:
        """Simulate one end-to-end inference run of ``workload``.

        Decode steps are priced through the vectorized epoch fast path
        (:meth:`epoch_timings`) unless ``exact_stepping=True`` restores the
        legacy per-step loop; both produce bit-identical traces.
        """
        memory = MemoryHierarchy.from_hardware(self.hardware)
        trace = InferenceTrace(
            system=self.name, model=self.config.name,
            batch_size=workload.batch_size, input_len=workload.input_len,
            output_len=workload.output_len,
            metadata={"hardware": self.hardware.name, "kv_dtype": self.kv_dtype},
        )
        self.prepare(workload)
        try:
            self._allocate_static(workload, memory)

            prefill_plan = self.plan_prefill(workload)
            trace.prefill_time = self.prefill_timing(prefill_plan, workload,
                                                     memory)
            self._apply_memory(prefill_plan, workload, memory)

            if self.exact_stepping:
                for step in range(workload.output_len):
                    plan = self.plan_decode_step(step, workload)
                    timing = self.step_timing(plan, step, workload, memory)
                    self._apply_memory(plan, workload, memory)
                    trace.add_step(replace(
                        timing,
                        gpu_used_bytes=memory.gpu.used_bytes,
                        cpu_used_bytes=memory.cpu.used_bytes,
                    ))
            else:
                self._run_decode_fast(workload, memory, trace)
        except OutOfMemoryError as exc:
            trace.oom = True
            trace.oom_reason = str(exc)
        return trace

    def _run_decode_fast(self, workload: Workload, memory: MemoryHierarchy,
                         trace: InferenceTrace) -> None:
        """Epoch-priced decode loop of :meth:`run`.

        Pricing is vectorized; only the per-step memory-ledger updates
        (which carry the OOM semantics and the ``*_used_bytes`` snapshots)
        and the trace records remain per step.
        """
        epoch = self.epoch_timings(workload, memory.link)
        for step in range(epoch.num_steps):
            memory.gpu.resize(KV_GPU, float(epoch.gpu_kv_bytes[step]))
            memory.cpu.resize(KV_CPU, float(epoch.cpu_kv_bytes[step]))
            trace.add_step(StepTiming(
                step=step,
                sequence_length=int(epoch.sequence_lengths[step]),
                phase=epoch.phases[step],
                compute_time=float(epoch.compute_times[step]),
                transfer_time=float(epoch.transfer_times[step]),
                recompute_time=float(epoch.recompute_times[step]),
                overhead_time=float(epoch.overhead_times[step]),
                gpu_kv_bytes=float(epoch.gpu_kv_bytes[step]),
                cpu_kv_bytes=float(epoch.cpu_kv_bytes[step]),
                gpu_used_bytes=memory.gpu.used_bytes,
                cpu_used_bytes=memory.cpu.used_bytes,
                bytes_offloaded=float(epoch.bytes_offloaded[step]),
                bytes_reloaded=float(epoch.bytes_reloaded[step]),
            ))

    # ------------------------------------------------------------------ #
    def _allocate_static(self, workload: Workload,
                         memory: MemoryHierarchy) -> None:
        """Allocate weights and activations before any KV tensors."""
        weight_bytes = self.cost_model.weight_bytes()
        if self.weights_on_gpu:
            memory.gpu.allocate(WEIGHTS, weight_bytes)
        else:
            memory.cpu.allocate(WEIGHTS, weight_bytes)
        memory.gpu.allocate(
            ACTIVATIONS,
            self.cost_model.activation_bytes(workload.batch_size,
                                             workload.input_len),
        )

    # ------------------------------------------------------------------ #
    def parallel_comm_time(self, workload: Workload,
                           query_len: int = 1) -> float:
        """Interconnect time of one forward pass under TP/PP (0 on 1 GPU)."""
        return self.cost_model.parallel_comm_time(workload.batch_size,
                                                  query_len)

    def gpu_kv_budget_tokens(self, workload: Workload,
                             reserve_fraction: float = 0.05) -> int:
        """KV tokens that fit in node GPU memory next to weights/activations.

        The byte accounting (aggregate capacity, weights charged once,
        activations per GPU) lives in
        :meth:`~repro.systems.cost.LLMCostModel.kv_budget_bytes`, shared
        with the offline scheduler's capacity constraint.
        """
        capacity = self.cost_model.kv_budget_bytes(
            workload.batch_size, workload.input_len,
            weights_on_gpu=self.weights_on_gpu,
            reserve_fraction=reserve_fraction)
        per_token = self.kv_token_bytes(workload)
        return max(1, int(capacity // per_token)) if capacity > 0 else 1
