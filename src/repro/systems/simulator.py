"""Shared skeleton for system-level inference simulators.

Every system the paper compares (ALISA, FlexGen, vLLM, HuggingFace
Accelerate, DeepSpeed-ZeRO, plus a GPU-only reference) is expressed as a
*placement policy* over the same substrate: the analytic cost model charges
GPU compute, the memory hierarchy tracks capacity and raises OOM, and the
PCIe link charges every byte moved between CPU and GPU.

A concrete system implements two hooks:

* :meth:`InferenceSimulator.plan_prefill` — where the prompt's KV tensors go;
* :meth:`InferenceSimulator.plan_decode_step` — what moves at each step.

Both return a :class:`SystemStepPlan`; the base class turns plans into
:class:`~repro.systems.trace.StepTiming` records and an
:class:`~repro.systems.trace.InferenceTrace`.  The pricing helpers
(:meth:`InferenceSimulator.prefill_timing`,
:meth:`InferenceSimulator.step_timing`) are also driven step-by-step by the
online serving engine (:mod:`repro.serving.engine`), which manages request
admission and KV residency itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

from repro._common import OutOfMemoryError
from repro.hardware.presets import HardwareSpec
from repro.model.config import ModelConfig, get_config
from repro.systems.cost import LLMCostModel, ParallelismSpec
from repro.systems.memory import MemoryHierarchy
from repro.systems.trace import InferenceTrace, StepTiming
from repro.workloads.descriptors import Workload

WEIGHTS = "weights"
ACTIVATIONS = "activations"
KV_GPU = "kv-cache-gpu"
KV_CPU = "kv-cache-cpu"


@dataclass(frozen=True)
class SystemStepPlan:
    """Placement and movement decisions for one step of a simulated system."""

    phase: str
    kv_gpu_tokens: float
    kv_cpu_tokens: float
    kept_kv: int | None = None
    local_window: int = 0
    load_kv_tokens: float = 0.0
    offload_kv_tokens: float = 0.0
    recompute_tokens: float = 0.0
    quantize_tokens: float = 0.0
    cpu_attention_tokens: float = 0.0
    extra_h2d_bytes: float = 0.0
    extra_overhead_s: float = 0.0


class InferenceSimulator(ABC):
    """Base class: runs the prefill + decode loop over step plans."""

    #: Display name used in experiment tables.
    name: str = "base"

    #: Whether the system overlaps PCIe transfers with GPU compute (FlexGen,
    #: vLLM, and ALISA pipeline I/O against compute layer by layer; naive
    #: offloading does not).  When enabled, only the *exposed* transfer time
    #: (the part not hidden behind compute) is charged to the step.
    overlap_io: bool = False

    def __init__(self, model: ModelConfig | str, hardware: HardwareSpec,
                 compute_dtype: str = "fp16", kv_dtype: str = "fp16",
                 weights_on_gpu: bool = True,
                 parallelism: ParallelismSpec | None = None) -> None:
        self.config = get_config(model) if isinstance(model, str) else model
        self.hardware = hardware
        if parallelism is None:
            # Multi-GPU nodes default to tensor parallelism across all GPUs;
            # the cost model validates degree == gpu_count either way.
            parallelism = (ParallelismSpec() if hardware.gpu_count == 1
                           else ParallelismSpec(mode="tp",
                                                degree=hardware.gpu_count))
        self.parallelism = parallelism
        self.cost_model = LLMCostModel(self.config, hardware, compute_dtype,
                                       parallelism=parallelism)
        self.kv_dtype = kv_dtype
        self.weights_on_gpu = weights_on_gpu

    # ------------------------------------------------------------------ #
    # hooks for concrete systems
    # ------------------------------------------------------------------ #
    @abstractmethod
    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        """Place the prompt's KV tensors after the prefilling stage."""

    @abstractmethod
    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        """Plan decoding step ``step`` (0-based)."""

    def prepare(self, workload: Workload) -> None:
        """Reset any per-run state before a simulation (optional hook).

        The continuous-batching serving engine calls this once per decode
        epoch (whenever batch composition changes), so implementations with
        expensive offline planning should serve repeats incrementally — see
        :meth:`repro.core.engine.AlisaSystem.prepare`, which backs its
        schedule search with a :class:`~repro.core.schedule_cache.ScheduleCache`.
        """

    def schedule_stats(self) -> dict[str, int]:
        """Counters describing how offline planning was served (optional).

        Systems without an offline planning stage return an empty dict; the
        serving engine attaches the per-serve increments to its trace
        metadata for observability.
        """
        return {}

    # ------------------------------------------------------------------ #
    # shared machinery
    # ------------------------------------------------------------------ #
    def kv_token_bytes(self, workload: Workload) -> float:
        """Bytes of one token's KV tensors across layers and batch."""
        return self.cost_model.kv_bytes_per_token(workload.batch_size,
                                                  self.kv_dtype)

    def _apply_memory(self, plan: SystemStepPlan, workload: Workload,
                      memory: MemoryHierarchy) -> None:
        per_token = self.kv_token_bytes(workload)
        memory.gpu.resize(KV_GPU, plan.kv_gpu_tokens * per_token)
        memory.cpu.resize(KV_CPU, plan.kv_cpu_tokens * per_token)

    def _transfer_time(self, plan: SystemStepPlan, workload: Workload,
                       memory: MemoryHierarchy) -> float:
        per_token = self.kv_token_bytes(workload)
        time = 0.0
        time += memory.link.host_to_device(plan.load_kv_tokens * per_token
                                           + plan.extra_h2d_bytes)
        time += memory.link.device_to_host(plan.offload_kv_tokens * per_token)
        return time

    def prefill_timing(self, plan: SystemStepPlan, workload: Workload,
                       memory: MemoryHierarchy) -> float:
        """Wall-clock time of the prefilling stage under ``plan``.

        Charges GPU compute, PCIe transfers, and — exactly like the decode
        loop — the (de)quantization overhead for any KV tokens the plan
        compresses on their way to CPU memory (Section V-B).
        """
        compute = self.cost_model.prefill_time(workload.batch_size,
                                               workload.input_len)
        transfer = self._transfer_time(plan, workload, memory)
        overhead = plan.extra_overhead_s
        if plan.quantize_tokens > 0:
            overhead += self.cost_model.quantize_time(
                workload.batch_size, int(round(plan.quantize_tokens))
            )
        return compute + transfer + overhead

    def step_timing(self, plan: SystemStepPlan, step: int, workload: Workload,
                    memory: MemoryHierarchy) -> StepTiming:
        """Price one decode-step plan into a :class:`StepTiming`.

        Pure pricing: PCIe traffic is recorded on ``memory.link`` but no
        capacity is allocated, so callers that manage residency themselves
        (the continuous-batching serving engine) can reuse the exact
        accounting of :meth:`run`.  ``gpu_used_bytes``/``cpu_used_bytes`` are
        left zero; :meth:`run` fills them in after applying the plan.
        """
        seq_len = workload.input_len + step + 1
        per_token = self.kv_token_bytes(workload)
        compute = self.cost_model.decode_step_time(
            workload.batch_size, kv_len=seq_len, kept_kv=plan.kept_kv,
            local_window=plan.local_window,
        )
        transfer = self._transfer_time(plan, workload, memory)
        recompute = self.cost_model.recompute_time(
            workload.batch_size, int(round(plan.recompute_tokens))
        )
        if self.overlap_io:
            transfer = max(0.0, transfer - compute - recompute)
        if plan.cpu_attention_tokens > 0:
            # Attention over CPU-resident KV is computed CPU-side and
            # sits on the critical path (counted as KV-caching time).
            transfer += self.cost_model.cpu_attention_time(
                workload.batch_size, plan.cpu_attention_tokens,
                self.kv_dtype,
            )
        overhead = plan.extra_overhead_s
        if plan.quantize_tokens > 0:
            overhead += self.cost_model.quantize_time(
                workload.batch_size, int(round(plan.quantize_tokens))
            )
        return StepTiming(
            step=step, sequence_length=seq_len, phase=plan.phase,
            compute_time=compute, transfer_time=transfer,
            recompute_time=recompute, overhead_time=overhead,
            gpu_kv_bytes=plan.kv_gpu_tokens * per_token,
            cpu_kv_bytes=plan.kv_cpu_tokens * per_token,
            bytes_offloaded=plan.offload_kv_tokens * per_token,
            bytes_reloaded=plan.load_kv_tokens * per_token,
        )

    def run(self, workload: Workload) -> InferenceTrace:
        """Simulate one end-to-end inference run of ``workload``."""
        memory = MemoryHierarchy.from_hardware(self.hardware)
        trace = InferenceTrace(
            system=self.name, model=self.config.name,
            batch_size=workload.batch_size, input_len=workload.input_len,
            output_len=workload.output_len,
            metadata={"hardware": self.hardware.name, "kv_dtype": self.kv_dtype},
        )
        self.prepare(workload)
        try:
            self._allocate_static(workload, memory)

            prefill_plan = self.plan_prefill(workload)
            trace.prefill_time = self.prefill_timing(prefill_plan, workload,
                                                     memory)
            self._apply_memory(prefill_plan, workload, memory)

            for step in range(workload.output_len):
                plan = self.plan_decode_step(step, workload)
                timing = self.step_timing(plan, step, workload, memory)
                self._apply_memory(plan, workload, memory)
                trace.add_step(replace(
                    timing,
                    gpu_used_bytes=memory.gpu.used_bytes,
                    cpu_used_bytes=memory.cpu.used_bytes,
                ))
        except OutOfMemoryError as exc:
            trace.oom = True
            trace.oom_reason = str(exc)
        return trace

    # ------------------------------------------------------------------ #
    def _allocate_static(self, workload: Workload,
                         memory: MemoryHierarchy) -> None:
        """Allocate weights and activations before any KV tensors."""
        weight_bytes = self.cost_model.weight_bytes()
        if self.weights_on_gpu:
            memory.gpu.allocate(WEIGHTS, weight_bytes)
        else:
            memory.cpu.allocate(WEIGHTS, weight_bytes)
        memory.gpu.allocate(
            ACTIVATIONS,
            self.cost_model.activation_bytes(workload.batch_size,
                                             workload.input_len),
        )

    # ------------------------------------------------------------------ #
    def parallel_comm_time(self, workload: Workload,
                           query_len: int = 1) -> float:
        """Interconnect time of one forward pass under TP/PP (0 on 1 GPU)."""
        return self.cost_model.parallel_comm_time(workload.batch_size,
                                                  query_len)

    def gpu_kv_budget_tokens(self, workload: Workload,
                             reserve_fraction: float = 0.05) -> int:
        """KV tokens that fit in node GPU memory next to weights/activations.

        The byte accounting (aggregate capacity, weights charged once,
        activations per GPU) lives in
        :meth:`~repro.systems.cost.LLMCostModel.kv_budget_bytes`, shared
        with the offline scheduler's capacity constraint.
        """
        capacity = self.cost_model.kv_budget_bytes(
            workload.batch_size, workload.input_len,
            weights_on_gpu=self.weights_on_gpu,
            reserve_fraction=reserve_fraction)
        per_token = self.kv_token_bytes(workload)
        return max(1, int(capacity // per_token)) if capacity > 0 else 1
