"""Simulated memory devices and the GPU-CPU interconnect.

These classes model the *capacity* and *traffic* side of LLM inference on a
GPU-CPU node (single- or multi-GPU — multi-GPU nodes pool their HBM and
host links, see :meth:`MemoryHierarchy.from_hardware`): every byte of
weights, activations, and KV tensors is
allocated on a named device with a finite capacity, and every KV offload or
reload crosses the PCIe link, which charges transfer time against the step.

The simulator is byte-accurate but intentionally simple: allocations are
named ledger entries, not address ranges, because fragmentation is not part
of what the paper evaluates (vLLM's paged memory is modelled at the level of
block counts in :mod:`repro.baselines.vllm_system`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._common import ConfigurationError, OutOfMemoryError, validate_positive


@dataclass
class MemoryDevice:
    """A memory pool with finite capacity and an allocation ledger."""

    name: str
    capacity_bytes: float
    _allocations: dict[str, float] = field(default_factory=dict, repr=False)
    peak_bytes: float = 0.0

    def __post_init__(self) -> None:
        validate_positive(capacity_bytes=self.capacity_bytes)

    @property
    def used_bytes(self) -> float:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def allocations(self) -> dict[str, float]:
        """Snapshot of the current allocation ledger (label -> bytes)."""
        return dict(self._allocations)

    def allocate(self, label: str, num_bytes: float) -> None:
        """Allocate (or grow) the ledger entry ``label`` by ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        if num_bytes > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {num_bytes / 1e9:.2f} GB for "
                f"{label!r}; {self.free_bytes / 1e9:.2f} GB free of "
                f"{self.capacity_bytes / 1e9:.2f} GB"
            )
        self._allocations[label] = self._allocations.get(label, 0.0) + num_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def resize(self, label: str, num_bytes: float) -> None:
        """Set the ledger entry ``label`` to exactly ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError("allocation size must be non-negative")
        current = self._allocations.get(label, 0.0)
        delta = num_bytes - current
        if delta > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot grow {label!r} by {delta / 1e9:.2f} GB; "
                f"{self.free_bytes / 1e9:.2f} GB free"
            )
        if num_bytes == 0.0:
            self._allocations.pop(label, None)
        else:
            self._allocations[label] = num_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def free(self, label: str, num_bytes: float | None = None) -> None:
        """Free ``num_bytes`` from ``label`` (all of it if ``None``)."""
        current = self._allocations.get(label, 0.0)
        if num_bytes is None or num_bytes >= current:
            self._allocations.pop(label, None)
            return
        if num_bytes < 0:
            raise ConfigurationError("free size must be non-negative")
        self._allocations[label] = current - num_bytes

    def usage(self, label: str) -> float:
        return self._allocations.get(label, 0.0)

    def would_fit(self, num_bytes: float) -> bool:
        return num_bytes <= self.free_bytes


@dataclass
class PCIeLink:
    """The CPU-GPU interconnect; charges time for every byte moved."""

    bandwidth_bytes_per_s: float
    latency_s: float = 10e-6
    bytes_host_to_device: float = 0.0
    bytes_device_to_host: float = 0.0

    def __post_init__(self) -> None:
        validate_positive(bandwidth_bytes_per_s=self.bandwidth_bytes_per_s)
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` one way (0 bytes costs nothing)."""
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def host_to_device(self, num_bytes: float) -> float:
        """Record a CPU->GPU transfer and return its time."""
        time = self.transfer_time(num_bytes)
        self.bytes_host_to_device += num_bytes
        return time

    def device_to_host(self, num_bytes: float) -> float:
        """Record a GPU->CPU transfer and return its time."""
        time = self.transfer_time(num_bytes)
        self.bytes_device_to_host += num_bytes
        return time

    @property
    def total_bytes(self) -> float:
        return self.bytes_host_to_device + self.bytes_device_to_host


@dataclass
class MemoryHierarchy:
    """GPU memory + CPU memory + the PCIe link between them."""

    gpu: MemoryDevice
    cpu: MemoryDevice
    link: PCIeLink

    @classmethod
    def from_hardware(cls, hardware) -> "MemoryHierarchy":
        """Build a hierarchy from a :class:`repro.hardware.HardwareSpec`.

        Multi-GPU nodes pool their GPU memory into one device and drive
        their host links concurrently (one per GPU), so the GPU capacity
        and the link bandwidth aggregate over ``gpu_count``.
        """
        return cls(
            gpu=MemoryDevice(hardware.gpu.name,
                             hardware.node_gpu_memory_bytes),
            cpu=MemoryDevice(hardware.cpu.name, hardware.cpu.memory_bytes),
            link=PCIeLink(hardware.node_pcie_bandwidth),
        )

    def snapshot(self) -> dict[str, float]:
        """Current memory usage and cumulative traffic, for traces."""
        return {
            "gpu_used_bytes": self.gpu.used_bytes,
            "gpu_peak_bytes": self.gpu.peak_bytes,
            "cpu_used_bytes": self.cpu.used_bytes,
            "cpu_peak_bytes": self.cpu.peak_bytes,
            "pcie_total_bytes": self.link.total_bytes,
        }
