"""System-level substrates: memory devices, PCIe link, cost model, traces."""

from repro.systems.cost import (
    AttentionBreakdown,
    LLMCostModel,
    OpCost,
    ParallelismSpec,
)
from repro.systems.memory import MemoryDevice, MemoryHierarchy, PCIeLink
from repro.systems.trace import InferenceTrace, StepTiming

__all__ = [
    "AttentionBreakdown",
    "InferenceTrace",
    "LLMCostModel",
    "MemoryDevice",
    "MemoryHierarchy",
    "OpCost",
    "ParallelismSpec",
    "PCIeLink",
    "StepTiming",
]
