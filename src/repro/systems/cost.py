"""Analytic (roofline) performance model for transformer inference.

The paper's throughput results are governed by three quantities:

* compute time of the MHA and FFN blocks (GEMM-dominated),
* HBM traffic for weights and KV tensors on the GPU,
* PCIe traffic when KV tensors are offloaded to CPU memory.

This module provides a roofline-style cost model over the *paper-scale*
model configurations: each operator is charged
``max(flops / attainable_flops, bytes / hbm_bandwidth)`` on the GPU, and
CPU-GPU movement is charged against the PCIe link by the system simulators.
The absolute numbers are approximations; the experiments only rely on the
relative behaviour (compute vs. I/O crossovers, scaling with batch size and
sequence length), which the roofline captures.

Multi-GPU parallelism
---------------------
A :class:`ParallelismSpec` layers tensor- or pipeline-parallel execution on
top of the single-GPU roofline:

* **tensor parallelism** (``mode="tp"``) shards every GEMM and the KV cache
  head-wise across ``degree`` GPUs, dividing per-step compute by the degree
  and adding two ring all-reduces of the layer activations per layer
  (:meth:`LLMCostModel.tp_allreduce_time`);
* **pipeline parallelism** (``mode="pp"``) splits the layer stack into
  ``degree`` stages, dividing per-step compute by the degree, inflating it
  by the GPipe bubble factor ``(m + d - 1) / m`` for ``m`` microbatches,
  and adding ``degree - 1`` point-to-point activation transfers per pass
  (:meth:`LLMCostModel.pp_boundary_time`).

KV offload traffic, recomputation, and (de)quantization are sharded too:
each GPU moves and processes only its shard, concurrently, so those terms
scale with ``1 / degree`` (the host links operate in parallel —
:attr:`LLMCostModel.effective_pcie_bandwidth`).  At ``degree == 1`` every
adjustment is an exact no-op, so single-GPU costs are bit-identical to the
pre-parallelism model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._common import ConfigurationError, dtype_bytes, validate_positive
from repro.hardware.presets import HardwareSpec
from repro.model.config import ModelConfig

#: Parallelism strategies understood by :class:`ParallelismSpec`.
PARALLELISM_MODES = ("none", "tp", "pp")


@dataclass(frozen=True)
class ParallelismSpec:
    """How one model replica is spread over the GPUs of a node.

    ``mode``
        ``"none"`` (single GPU), ``"tp"`` (tensor parallel), or ``"pp"``
        (pipeline parallel).
    ``degree``
        Number of GPUs cooperating on the replica; must equal the node's
        ``gpu_count`` (the serving layer shards its KV budget one shard per
        GPU).
    ``pp_microbatches``
        Microbatches per pipeline pass (``m`` of the GPipe bubble factor
        ``(m + d - 1) / m``); ignored outside ``mode="pp"``.
    """

    mode: str = "none"
    degree: int = 1
    pp_microbatches: int = 4

    def __post_init__(self) -> None:
        if self.mode not in PARALLELISM_MODES:
            raise ConfigurationError(
                f"unknown parallelism mode {self.mode!r}; "
                f"known: {PARALLELISM_MODES}"
            )
        validate_positive(degree=self.degree,
                          pp_microbatches=self.pp_microbatches)
        if self.mode == "none" and self.degree != 1:
            raise ConfigurationError(
                "mode 'none' requires degree 1; use 'tp' or 'pp' for "
                "multi-GPU execution"
            )
        if self.mode != "none" and self.degree < 2:
            raise ConfigurationError(
                f"mode {self.mode!r} requires degree >= 2, got {self.degree}"
            )

    @classmethod
    def parse(cls, spec: str, pp_microbatches: int = 4) -> "ParallelismSpec":
        """Parse a compact axis label: ``"none"``, ``"tp-2"``, ``"pp-4"``.

        ``"1gpu"`` and degree-1 labels (``"tp-1"``) normalize to the
        single-GPU spec, so sweep axes can mix single- and multi-GPU
        entries uniformly.
        """
        label = spec.strip().lower()
        if label in ("none", "single", "1gpu"):
            return cls()
        for mode in ("tp", "pp"):
            if label.startswith(mode):
                digits = label[len(mode):].lstrip("-x")
                if digits.isdigit():
                    degree = int(digits)
                    if degree == 1:
                        return cls()
                    return cls(mode=mode, degree=degree,
                               pp_microbatches=pp_microbatches)
        raise ConfigurationError(
            f"cannot parse parallelism spec {spec!r}; expected 'none', "
            "'tp-<degree>', or 'pp-<degree>'"
        )

    @property
    def label(self) -> str:
        """Compact label used in experiment rows (inverse of :meth:`parse`)."""
        return "none" if self.degree == 1 else f"{self.mode}-{self.degree}"


@dataclass(frozen=True)
class OpCost:
    """Cost of a single operator instance."""

    name: str
    flops: float
    bytes_moved: float
    time_s: float

    @property
    def achieved_flops(self) -> float:
        """Attained FLOP/s (the FLOPS annotation of Figure 11)."""
        return self.flops / self.time_s if self.time_s > 0 else 0.0


@dataclass
class AttentionBreakdown:
    """Per-operator costs of one attention module call (Figure 11)."""

    ops: list[OpCost] = field(default_factory=list)

    def add(self, op: OpCost) -> None:
        self.ops.append(op)

    @property
    def total_time(self) -> float:
        return sum(op.time_s for op in self.ops)

    def as_dict(self) -> dict[str, float]:
        return {op.name: op.time_s for op in self.ops}


class LLMCostModel:
    """Roofline cost model for one model configuration on one node."""

    def __init__(self, config: ModelConfig, hardware: HardwareSpec,
                 dtype: str = "fp16",
                 parallelism: ParallelismSpec | None = None) -> None:
        self.config = config
        self.hardware = hardware
        self.dtype = dtype
        self.bytes_per_element = dtype_bytes(dtype)
        validate_positive(bytes_per_element=self.bytes_per_element)
        self.parallelism = parallelism or ParallelismSpec()
        if self.parallelism.degree != hardware.gpu_count:
            raise ConfigurationError(
                f"parallelism degree {self.parallelism.degree} must match the "
                f"node's GPU count {hardware.gpu_count} (one KV shard per GPU)"
            )
        if self.parallelism.degree > 1 and hardware.interconnect is None:
            raise ConfigurationError(
                f"node {hardware.name!r} has no interconnect; multi-GPU "
                "execution needs one for its collective-communication terms"
            )

    @property
    def effective_pcie_bandwidth(self) -> float:
        """Aggregate host-link bandwidth (each GPU moves its own KV shard)."""
        return self.hardware.node_pcie_bandwidth

    def kv_budget_bytes(self, batch_size: int, input_len: int,
                        weights_on_gpu: bool = True,
                        reserve_fraction: float = 0.05) -> float:
        """Node GPU bytes left for KV tensors next to weights/activations.

        The single source of the (sharded) memory-capacity accounting:
        capacity aggregates over all GPUs of the node, weights are charged
        once (TP shards them head-wise, PP stage-wise), and activations are
        charged per GPU (every rank keeps a working copy at the TP/PP
        boundaries).  Both the serving admission budget
        (:meth:`repro.systems.simulator.InferenceSimulator.gpu_kv_budget_tokens`)
        and the offline scheduler's capacity constraint
        (:func:`repro.core.optimizer.gpu_kv_budget_tokens`) derive from
        this, so they can never diverge.  May be negative when weights and
        activations alone overflow the node.
        """
        gpu_count = self.hardware.gpu_count
        capacity = (self.hardware.gpu.memory_bytes * gpu_count
                    * (1.0 - reserve_fraction))
        if weights_on_gpu:
            capacity -= self.weight_bytes()
        capacity -= gpu_count * self.activation_bytes(batch_size, input_len)
        return capacity

    # ------------------------------------------------------------------ #
    # static sizes
    # ------------------------------------------------------------------ #
    def weight_bytes(self) -> float:
        """Total model weight size in the compute dtype."""
        return self.config.num_parameters() * self.bytes_per_element

    def layer_weight_bytes(self) -> float:
        h = self.config.hidden_size
        per_layer_params = 4 * h * h + 2 * h * self.config.ffn_size
        return per_layer_params * self.bytes_per_element

    def kv_bytes_per_token(self, batch_size: int, kv_dtype: str | None = None) -> float:
        """KV-cache bytes contributed by one token across all layers."""
        width = dtype_bytes(kv_dtype) if kv_dtype else self.bytes_per_element
        return 2.0 * width * self.config.num_layers * self.config.hidden_size * batch_size

    def kv_bytes_per_token_per_layer(self, batch_size: int,
                                     kv_dtype: str | None = None) -> float:
        return self.kv_bytes_per_token(batch_size, kv_dtype) / self.config.num_layers

    def kv_bytes(self, batch_size: int, num_tokens: int,
                 kv_dtype: str | None = None) -> float:
        return self.kv_bytes_per_token(batch_size, kv_dtype) * num_tokens

    def activation_bytes(self, batch_size: int, seq_len: int) -> float:
        """Live activation footprint for one forward pass (one layer deep)."""
        h = self.config.hidden_size
        return 4.0 * batch_size * seq_len * h * self.bytes_per_element

    # ------------------------------------------------------------------ #
    # roofline primitives
    # ------------------------------------------------------------------ #
    def _roofline(self, name: str, flops: float, bytes_moved: float,
                  min_time: float = 2e-6) -> OpCost:
        compute_time = flops / self.hardware.gpu.effective_flops
        memory_time = bytes_moved / self.hardware.gpu.hbm_bandwidth
        return OpCost(name=name, flops=flops, bytes_moved=bytes_moved,
                      time_s=max(compute_time, memory_time, min_time))

    # ------------------------------------------------------------------ #
    # multi-GPU communication terms (tensor / pipeline parallelism)
    # ------------------------------------------------------------------ #
    def _activation_message_bytes(self, batch_size: int,
                                  query_len: int) -> float:
        """Bytes of the per-layer activation tensor exchanged between GPUs."""
        return (batch_size * query_len * self.config.hidden_size
                * self.bytes_per_element)

    def tp_allreduce_time(self, batch_size: int, query_len: int = 1) -> float:
        """Per-layer all-reduce time under tensor parallelism.

        Each transformer layer ends its attention and FFN blocks with one
        ring all-reduce of the activation tensor: ``2 * (d - 1)``
        communication steps, each moving ``1/d`` of the message and paying
        the interconnect latency.  Returns 0 outside ``mode="tp"``.
        """
        p = self.parallelism
        if p.mode != "tp":
            return 0.0
        link = self.hardware.interconnect
        message = self._activation_message_bytes(batch_size, query_len)
        steps = 2.0 * (p.degree - 1)
        per_allreduce = steps * link.latency_s \
            + steps * (message / p.degree) / link.bandwidth
        return 2.0 * per_allreduce

    def pp_boundary_time(self, batch_size: int, query_len: int = 1) -> float:
        """Stage-boundary activation transfers of one pipeline pass.

        A ``d``-stage pipeline hands the activation tensor across ``d - 1``
        boundaries per (micro)batch pass.  Returns 0 outside ``mode="pp"``.
        """
        p = self.parallelism
        if p.mode != "pp":
            return 0.0
        link = self.hardware.interconnect
        message = self._activation_message_bytes(batch_size, query_len)
        return (p.degree - 1) * (link.latency_s + message / link.bandwidth)

    def pp_bubble_factor(self) -> float:
        """GPipe bubble inflation ``(m + d - 1) / m`` (1.0 outside PP)."""
        p = self.parallelism
        if p.mode != "pp":
            return 1.0
        return (p.pp_microbatches + p.degree - 1) / p.pp_microbatches

    def parallel_comm_time(self, batch_size: int, query_len: int = 1) -> float:
        """Communication time one forward pass spends on the interconnect.

        TP: two ring all-reduces per layer across all layers; PP: the
        stage-boundary transfers.  Pipeline bubble idle time is *not*
        counted here — it inflates compute, not communication.
        """
        p = self.parallelism
        if p.degree == 1:
            return 0.0
        if p.mode == "tp":
            return self.config.num_layers * self.tp_allreduce_time(batch_size,
                                                                   query_len)
        return self.pp_boundary_time(batch_size, query_len)

    def _parallel_forward_time(self, base_time: float, batch_size: int,
                               query_len: int) -> float:
        """Layer a single-GPU forward-pass time onto the parallel node.

        Exact identity at ``degree == 1``.  TP divides compute by the degree
        (weights, heads, and FFN columns are sharded) and adds the per-layer
        all-reduces; PP divides compute across stages, inflates it by the
        pipeline bubble, and adds the boundary transfers.
        """
        p = self.parallelism
        if p.degree == 1:
            return base_time
        if p.mode == "tp":
            return base_time / p.degree + self.parallel_comm_time(batch_size,
                                                                  query_len)
        return (base_time / p.degree * self.pp_bubble_factor()
                + self.pp_boundary_time(batch_size, query_len))

    def _shard_scale(self) -> float:
        """Concurrency factor for work sharded one slice per GPU.

        KV recomputation and (de)quantization touch only the owning shard's
        slice of the cache; the shards work in parallel, so the node-level
        time divides by the degree (exactly 1.0 on a single GPU).
        """
        return 1.0 / self.parallelism.degree

    # ------------------------------------------------------------------ #
    # attention module breakdown (Figure 11)
    # ------------------------------------------------------------------ #
    def attention_breakdown(self, batch_size: int, kv_len: int,
                            kept_kv: int | None = None,
                            local_window: int = 0,
                            query_len: int = 1) -> AttentionBreakdown:
        """Cost of a single attention-module call, operator by operator.

        ``kept_kv`` is the number of KV tokens that actually participate
        (``None`` means dense attention over all ``kv_len`` tokens);
        ``local_window`` is the number of recent attention rows summed by
        SWA's local attention sum (0 disables the extra SWA operators).
        """
        if kv_len <= 0 or batch_size <= 0 or query_len <= 0:
            raise ConfigurationError("batch_size, kv_len, query_len must be positive")
        kept = kv_len if kept_kv is None else min(kept_kv, kv_len)
        h = self.config.hidden_size
        heads = self.config.num_heads
        width = self.bytes_per_element
        b, q = batch_size, query_len

        breakdown = AttentionBreakdown()

        # QKV projection of the new token(s).
        breakdown.add(self._roofline(
            "qkv_proj",
            flops=2.0 * 3.0 * b * q * h * h,
            bytes_moved=3.0 * h * h * width + 4.0 * b * q * h * width,
        ))

        if local_window > 0:
            # SWA local attention sum: add `local_window` rows of length kv_len
            # per head (vector adds, very low arithmetic intensity).  These and
            # the gather below are small kernel-launch-bound ops, hence the
            # larger floor time (the Figure 11 overhead).
            breakdown.add(self._roofline(
                "local_attention_sum",
                flops=1.0 * b * heads * local_window * kv_len,
                bytes_moved=b * heads * local_window * kv_len * width,
                min_time=10e-6,
            ))
            # Gather sparse KV tensors into a packed dense tensor.
            breakdown.add(self._roofline(
                "sparse_kv_gather",
                flops=0.0,
                bytes_moved=2.0 * 2.0 * b * kept * h * width,
                min_time=10e-6,
            ))

        # QK^T over the kept tokens.
        breakdown.add(self._roofline(
            "qk_matmul",
            flops=2.0 * b * q * kept * h,
            bytes_moved=(b * kept * h + b * q * h + b * heads * q * kept) * width,
        ))
        # Softmax over the attention weights.
        breakdown.add(self._roofline(
            "softmax",
            flops=5.0 * b * heads * q * kept,
            bytes_moved=2.0 * b * heads * q * kept * width,
        ))
        # Attention-weight x V.
        breakdown.add(self._roofline(
            "av_matmul",
            flops=2.0 * b * q * kept * h,
            bytes_moved=(b * kept * h + b * q * h) * width,
        ))
        # Output projection.
        breakdown.add(self._roofline(
            "out_proj",
            flops=2.0 * b * q * h * h,
            bytes_moved=(h * h + 2.0 * b * q * h) * width,
        ))
        return breakdown

    # ------------------------------------------------------------------ #
    # block- and step-level times
    # ------------------------------------------------------------------ #
    def attention_time(self, batch_size: int, kv_len: int,
                       kept_kv: int | None = None, local_window: int = 0,
                       query_len: int = 1) -> float:
        return self.attention_breakdown(
            batch_size, kv_len, kept_kv, local_window, query_len
        ).total_time

    # ------------------------------------------------------------------ #
    # vectorized (epoch-granular) pricing
    #
    # Each *_batch method applies the scalar method's formula elementwise
    # over per-step arrays, preserving the exact operation order (and the
    # roofline floor times), so a priced epoch is bit-identical to pricing
    # its steps one by one.  The bit-identity is pinned by the property
    # tests in tests/test_epoch_pricing.py.
    # ------------------------------------------------------------------ #
    def _roofline_time_batch(self, flops: np.ndarray, bytes_moved: np.ndarray,
                             min_time: float = 2e-6) -> np.ndarray:
        compute_time = flops / self.hardware.gpu.effective_flops
        memory_time = bytes_moved / self.hardware.gpu.hbm_bandwidth
        return np.maximum(np.maximum(compute_time, memory_time), min_time)

    def attention_time_batch(self, batch_size: int, kv_lens: np.ndarray,
                             kept_kv: np.ndarray | None = None,
                             local_windows: np.ndarray | None = None) -> np.ndarray:
        """Vectorized :meth:`attention_time` over per-step arrays (q = 1).

        ``kept_kv is None`` means dense attention at every step;
        ``local_windows is None`` means no SWA operators at any step (a
        per-step window of 0 also skips them, matching the scalar path).
        """
        kv_len = np.asarray(kv_lens, dtype=np.float64)
        kept = (kv_len if kept_kv is None
                else np.minimum(np.asarray(kept_kv, dtype=np.float64), kv_len))
        h = self.config.hidden_size
        heads = self.config.num_heads
        width = self.bytes_per_element
        b, q = batch_size, 1

        qkv = self._roofline_time_batch(
            np.float64(2.0 * 3.0 * b * q * h * h),
            np.float64(3.0 * h * h * width + 4.0 * b * q * h * width),
        )
        qk = self._roofline_time_batch(
            2.0 * b * q * kept * h,
            (b * kept * h + b * q * h + b * heads * q * kept) * width,
        )
        soft = self._roofline_time_batch(
            5.0 * b * heads * q * kept,
            2.0 * b * heads * q * kept * width,
        )
        av = self._roofline_time_batch(
            2.0 * b * q * kept * h,
            (b * kept * h + b * q * h) * width,
        )
        out = self._roofline_time_batch(
            np.float64(2.0 * b * q * h * h),
            np.float64((h * h + 2.0 * b * q * h) * width),
        )
        dense_total = qkv + qk + soft + av + out
        if local_windows is None:
            return dense_total

        window = np.asarray(local_windows, dtype=np.float64)
        local = self._roofline_time_batch(
            1.0 * b * heads * window * kv_len,
            b * heads * window * kv_len * width,
            min_time=10e-6,
        )
        gather = self._roofline_time_batch(
            np.zeros_like(kv_len),
            2.0 * 2.0 * b * kept * h * width,
            min_time=10e-6,
        )
        swa_total = qkv + local + gather + qk + soft + av + out
        return np.where(window > 0, swa_total, dense_total)

    def decode_step_time_batch(self, batch_size: int, kv_lens: np.ndarray,
                               kept_kv: np.ndarray | None = None,
                               local_windows: np.ndarray | None = None) -> np.ndarray:
        """Vectorized :meth:`decode_step_time` over per-step arrays."""
        attention = self.attention_time_batch(batch_size, kv_lens, kept_kv,
                                              local_windows)
        base = self.config.num_layers * (attention + self.ffn_time(batch_size))
        return self._parallel_forward_time(base, batch_size, query_len=1)

    def quantize_time_batch(self, batch_size: int,
                            num_tokens: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`quantize_time` over an array of token counts."""
        tokens = np.asarray(num_tokens, dtype=np.float64)
        elements = 2.0 * batch_size * tokens * self.config.hidden_size \
            * self.config.num_layers
        time = self._shard_scale() * self._roofline_time_batch(
            2.0 * elements, 3.0 * elements)
        return np.where(tokens > 0, time, 0.0)

    def cpu_attention_time_batch(self, batch_size: int,
                                 cpu_tokens: np.ndarray,
                                 kv_dtype: str | None = None,
                                 efficiency: float = 0.5) -> np.ndarray:
        """Vectorized :meth:`cpu_attention_time` over an array of tokens."""
        tokens = np.asarray(cpu_tokens, dtype=np.float64)
        kv_bytes = self.kv_bytes_per_token(batch_size, kv_dtype) * tokens
        flop_time = (4.0 * batch_size * tokens * self.config.hidden_size
                     * self.config.num_layers) / self.hardware.cpu.flops
        bandwidth = self.hardware.cpu.dram_bandwidth * efficiency
        time = np.maximum(kv_bytes / bandwidth, flop_time)
        return np.where(tokens > 0, time, 0.0)

    def ffn_time(self, batch_size: int, query_len: int = 1) -> float:
        h = self.config.hidden_size
        f = self.config.ffn_size
        flops = 2.0 * 2.0 * batch_size * query_len * h * f
        bytes_moved = (2.0 * h * f + 2.0 * batch_size * query_len * (h + f)) \
            * self.bytes_per_element
        return self._roofline("ffn", flops, bytes_moved).time_s

    def decode_layer_time(self, batch_size: int, kv_len: int,
                          kept_kv: int | None = None,
                          local_window: int = 0) -> float:
        """Compute time of one transformer layer for one decoding step."""
        return (self.attention_time(batch_size, kv_len, kept_kv, local_window)
                + self.ffn_time(batch_size))

    def decode_step_time(self, batch_size: int, kv_len: int,
                         kept_kv: int | None = None,
                         local_window: int = 0) -> float:
        """GPU time of one decoding step across all layers (with TP/PP)."""
        base = self.config.num_layers * self.decode_layer_time(
            batch_size, kv_len, kept_kv, local_window
        )
        return self._parallel_forward_time(base, batch_size, query_len=1)

    def prefill_time(self, batch_size: int, prompt_len: int) -> float:
        """GPU time of the prefilling stage (dense attention, with TP/PP)."""
        attention = self.attention_time(batch_size, prompt_len,
                                        query_len=prompt_len)
        ffn = self.ffn_time(batch_size, query_len=prompt_len)
        base = self.config.num_layers * (attention + ffn)
        return self._parallel_forward_time(base, batch_size,
                                           query_len=prompt_len)

    def recompute_time(self, batch_size: int, num_tokens: int,
                       num_layers: int | None = None) -> float:
        """Time to recompute the K and V projections of ``num_tokens`` tokens.

        This is the cost Phase III pays instead of reloading those tokens'
        KV tensors from CPU memory (the ``T^r`` term of Equation 5).
        """
        if num_tokens <= 0:
            return 0.0
        h = self.config.hidden_size
        layers = self.config.num_layers if num_layers is None else num_layers
        flops = 2.0 * 2.0 * batch_size * num_tokens * h * h  # K and V projections
        bytes_moved = (2.0 * h * h + 3.0 * batch_size * num_tokens * h) \
            * self.bytes_per_element
        return layers * self._shard_scale() \
            * self._roofline("recompute_kv", flops, bytes_moved).time_s

    def recompute_time_batch(self, batch_size: int,
                             num_tokens: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`recompute_time` over an array of token counts.

        Applies the same roofline (identical FLOP/byte formulas and floor
        time) elementwise, so the scheduler optimizer can price hundreds of
        candidate step plans without a Python call per step.
        """
        tokens = np.asarray(num_tokens, dtype=np.float64)
        h = self.config.hidden_size
        flops = 2.0 * 2.0 * batch_size * tokens * h * h
        bytes_moved = (2.0 * h * h + 3.0 * batch_size * tokens * h) \
            * self.bytes_per_element
        time = np.maximum(flops / self.hardware.gpu.effective_flops,
                          bytes_moved / self.hardware.gpu.hbm_bandwidth)
        time = self.config.num_layers * self._shard_scale() \
            * np.maximum(time, 2e-6)
        return np.where(tokens > 0, time, 0.0)

    def quantize_time(self, batch_size: int, num_tokens: int) -> float:
        """Time to (de)quantize the KV tensors of ``num_tokens`` tokens."""
        if num_tokens <= 0:
            return 0.0
        elements = 2.0 * batch_size * num_tokens * self.config.hidden_size \
            * self.config.num_layers
        return self._shard_scale() \
            * self._roofline("kv_quantize", flops=2.0 * elements,
                             bytes_moved=3.0 * elements).time_s

    def cpu_attention_time(self, batch_size: int, cpu_tokens: float,
                           kv_dtype: str | None = None,
                           efficiency: float = 0.5) -> float:
        """Time to compute attention over CPU-resident KV tensors on the CPU.

        FlexGen computes attention next to the data when KV tensors live in
        CPU memory (moving the whole cache over PCIe every step would be far
        slower).  Attention is memory-bound, so the cost is the CPU-resident
        KV bytes divided by the attainable DRAM bandwidth.
        """
        if cpu_tokens <= 0:
            return 0.0
        kv_bytes = self.kv_bytes_per_token(batch_size, kv_dtype) * cpu_tokens
        flop_time = (4.0 * batch_size * cpu_tokens * self.config.hidden_size
                     * self.config.num_layers) / self.hardware.cpu.flops
        bandwidth = self.hardware.cpu.dram_bandwidth * efficiency
        return max(kv_bytes / bandwidth, flop_time)

    def pcie_time(self, num_bytes: float) -> float:
        """One-way PCIe transfer time for ``num_bytes`` (Equation 3).

        On a multi-GPU node the KV cache is sharded one slice per GPU and
        every GPU drives its own host link, so the node-level transfer runs
        at the aggregate bandwidth.
        """
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.effective_pcie_bandwidth
