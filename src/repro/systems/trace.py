"""Execution traces produced by the system-level inference simulators.

Every simulated system (ALISA and all baselines) runs the same decode loop
and records one :class:`StepTiming` per generated token plus an end-of-run
summary.  Experiments and benchmarks consume these traces to produce the
rows and series of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._common import ConfigurationError


@dataclass(frozen=True)
class StepTiming:
    """Timing and memory state of a single decoding step."""

    step: int
    sequence_length: int
    phase: str
    compute_time: float
    transfer_time: float
    recompute_time: float
    overhead_time: float = 0.0
    gpu_kv_bytes: float = 0.0
    cpu_kv_bytes: float = 0.0
    gpu_used_bytes: float = 0.0
    cpu_used_bytes: float = 0.0
    bytes_offloaded: float = 0.0
    bytes_reloaded: float = 0.0

    @property
    def total_time(self) -> float:
        return (self.compute_time + self.transfer_time + self.recompute_time
                + self.overhead_time)


@dataclass
class InferenceTrace:
    """End-to-end record of one simulated inference run."""

    system: str
    model: str
    batch_size: int
    input_len: int
    output_len: int
    prefill_time: float = 0.0
    steps: list[StepTiming] = field(default_factory=list)
    oom: bool = False
    oom_reason: str | None = None
    metadata: dict = field(default_factory=dict)

    def add_step(self, step: StepTiming) -> None:
        self.steps.append(step)

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    @property
    def decode_time(self) -> float:
        return sum(step.total_time for step in self.steps)

    @property
    def total_time(self) -> float:
        return self.prefill_time + self.decode_time

    @property
    def generated_tokens(self) -> int:
        return self.batch_size * len(self.steps)

    @property
    def throughput(self) -> float:
        """Token throughput: generated tokens / end-to-end time (Section VI-A)."""
        if self.oom:
            return 0.0
        if self.total_time <= 0:
            raise ConfigurationError("trace has no recorded time")
        return self.generated_tokens / self.total_time

    @property
    def peak_gpu_bytes(self) -> float:
        if not self.steps:
            return 0.0
        return max(step.gpu_used_bytes for step in self.steps)

    @property
    def peak_cpu_bytes(self) -> float:
        if not self.steps:
            return 0.0
        return max(step.cpu_used_bytes for step in self.steps)

    def time_by_component(self) -> dict[str, float]:
        """Total time split into compute / transfer / recompute / overhead."""
        return {
            "prefill": self.prefill_time,
            "compute": sum(s.compute_time for s in self.steps),
            "transfer": sum(s.transfer_time for s in self.steps),
            "recompute": sum(s.recompute_time for s in self.steps),
            "overhead": sum(s.overhead_time for s in self.steps),
        }

    def time_by_phase(self) -> dict[str, float]:
        """Total decode time grouped by scheduling phase."""
        totals: dict[str, float] = {}
        for step in self.steps:
            totals[step.phase] = totals.get(step.phase, 0.0) + step.total_time
        return totals

    def steps_in_phase(self, phase: str) -> list[StepTiming]:
        return [step for step in self.steps if step.phase == phase]

    def phase_boundaries(self) -> dict[str, tuple[int, int]]:
        """First and last sequence length observed in each phase."""
        bounds: dict[str, tuple[int, int]] = {}
        for step in self.steps:
            lo, hi = bounds.get(step.phase, (step.sequence_length, step.sequence_length))
            bounds[step.phase] = (min(lo, step.sequence_length),
                                  max(hi, step.sequence_length))
        return bounds

    def summary(self) -> dict:
        """Flat summary dictionary used by experiment reports."""
        return {
            "system": self.system,
            "model": self.model,
            "batch_size": self.batch_size,
            "input_len": self.input_len,
            "output_len": self.output_len,
            "oom": self.oom,
            "throughput_tokens_per_s": self.throughput if not self.oom else 0.0,
            "total_time_s": self.total_time,
            "prefill_time_s": self.prefill_time,
            "decode_time_s": self.decode_time,
            "peak_gpu_gb": self.peak_gpu_bytes / 1e9,
            "peak_cpu_gb": self.peak_cpu_bytes / 1e9,
            **{f"time_{k}_s": v for k, v in self.time_by_component().items()},
        }
