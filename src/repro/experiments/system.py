"""System-level experiments: Figures 9, 11, and 12.

* ``fig09_throughput`` — end-to-end token throughput of ALISA (80% KV
  sparsity) against DeepSpeed-ZeRO, HuggingFace Accelerate, FlexGen, and
  vLLM across batch sizes.
* ``fig11_attention_breakdown`` — per-operator execution time (and attained
  FLOPS) of a single attention module for dense attention and SWA at several
  KV sparsities.
* ``fig12_breakdown`` — (a) per-phase time and memory of FlexGen vs ALISA,
  (b) impact of recomputation, and (c) the ablation over SWA / dynamic
  scheduling / compression.
"""

from __future__ import annotations

from repro.baselines import BASELINE_SYSTEMS
from repro.core.engine import AlisaSystem
from repro.core.swa import SWAConfig
from repro.experiments.base import ExperimentResult, register
from repro.hardware.presets import hardware_for_model
from repro.model.config import get_config
from repro.systems.cost import LLMCostModel
from repro.workloads.descriptors import ALPACA_WORKLOAD, FIGURE9_BATCH_SIZES


@register("fig09_throughput",
          "End-to-end throughput of ALISA vs baselines on the Alpaca "
          "workload (Figure 9)")
def fig09_throughput(models: tuple[str, ...] = ("opt-6.7b", "opt-13b",
                                                "opt-30b", "llama-7b",
                                                "llama-13b", "llama-33b"),
                     batch_sizes: tuple[int, ...] = FIGURE9_BATCH_SIZES,
                     kv_sparsity: float = 0.8,
                     output_len: int | None = None) -> ExperimentResult:
    result = ExperimentResult("fig09_throughput", "Figure 9: throughput")
    systems = ("deepspeed-zero", "accelerate", "flexgen", "vllm")
    for model in models:
        hardware = hardware_for_model(model)
        for batch_size in batch_sizes:
            workload = ALPACA_WORKLOAD.with_batch_size(batch_size)
            if output_len is not None:
                workload = type(workload)(batch_size, workload.input_len,
                                          output_len, name=workload.name)
            throughputs = {}
            for system_name in systems:
                system = BASELINE_SYSTEMS[system_name](model, hardware)
                trace = system.run(workload)
                throughputs[system_name] = trace
            alisa = AlisaSystem(model, hardware, kv_sparsity=kv_sparsity)
            alisa_trace = alisa.run(workload)
            flexgen = throughputs["flexgen"]
            vllm = throughputs["vllm"]
            for system_name, trace in {**throughputs, "alisa": alisa_trace}.items():
                result.add(
                    model=model, hardware=hardware.name, batch_size=batch_size,
                    system=system_name, oom=trace.oom,
                    throughput_tokens_per_s=trace.throughput,
                    total_time_s=trace.total_time,
                    speedup_vs_flexgen=(trace.throughput / flexgen.throughput
                                        if not trace.oom and not flexgen.oom
                                        else 0.0),
                    speedup_vs_vllm=(trace.throughput / vllm.throughput
                                     if not trace.oom and not vllm.oom else 0.0),
                )
    return result


@register("fig11_attention_breakdown",
          "Execution-time breakdown of a single attention module (Figure 11)")
def fig11_attention_breakdown(models: tuple[str, ...] = ("opt-6.7b", "opt-13b",
                                                         "opt-30b"),
                              batch_size: int = 64, seq_len: int = 128,
                              kv_sparsities: tuple[float, ...] = (0.0, 0.5, 0.8)
                              ) -> ExperimentResult:
    result = ExperimentResult("fig11_attention_breakdown",
                              "Figure 11: attention module breakdown")
    for model in models:
        config = get_config(model)
        hardware = hardware_for_model(model)
        cost = LLMCostModel(config, hardware)
        for kv_sparsity in kv_sparsities:
            if kv_sparsity == 0.0:
                breakdown = cost.attention_breakdown(batch_size, seq_len)
                label = "dense"
            else:
                swa = SWAConfig.from_sparsity(kv_sparsity)
                num_local, num_global = swa.split_budget(seq_len)
                breakdown = cost.attention_breakdown(
                    batch_size, seq_len, kept_kv=num_local + num_global,
                    local_window=num_local,
                )
                label = f"swa-{int(kv_sparsity * 100)}%"
            for op in breakdown.ops:
                result.add(model=model, configuration=label,
                           kv_sparsity=kv_sparsity, op=op.name,
                           time_us=op.time_s * 1e6, flops=op.flops,
                           achieved_gflops=op.achieved_flops / 1e9)
            result.add(model=model, configuration=label,
                       kv_sparsity=kv_sparsity, op="total",
                       time_us=breakdown.total_time * 1e6,
                       flops=sum(op.flops for op in breakdown.ops),
                       achieved_gflops=0.0)
    return result


@register("fig12_breakdown",
          "Per-phase breakdown, recomputation impact, and ablation for "
          "OPT-30B (Figure 12)")
def fig12_breakdown(model: str = "opt-30b", batch_size: int = 64,
                    input_len: int = 128, output_len: int = 512,
                    kv_sparsities: tuple[float, ...] = (0.5, 0.8)
                    ) -> ExperimentResult:
    result = ExperimentResult("fig12_breakdown", "Figure 12: LLM inference breakdown")
    hardware = hardware_for_model(model)
    workload = ALPACA_WORKLOAD.with_batch_size(batch_size)
    workload = type(workload)(batch_size, input_len, output_len,
                              name="fig12-workload")

    # (a) phase-by-phase time and memory: FlexGen vs ALISA.  Compression is
    # disabled here (and in the recomputation study) so that its contribution
    # is isolated in the ablation series, matching the paper's protocol; with
    # INT8 KV the compressed cache fits the GPU for much longer and Phase III
    # is rarely entered at all.
    flexgen_trace = BASELINE_SYSTEMS["flexgen"](model, hardware).run(workload)
    for kv_sparsity in kv_sparsities:
        alisa_trace = AlisaSystem(model, hardware, kv_sparsity=kv_sparsity,
                                  use_compression=False).run(workload)
        for system_name, trace in (("flexgen", flexgen_trace),
                                   ("alisa", alisa_trace)):
            boundaries = trace.phase_boundaries()
            by_phase = trace.time_by_phase()
            for phase, elapsed in by_phase.items():
                steps = trace.steps_in_phase(phase)
                last = steps[-1]
                result.add(series="phase_breakdown", system=system_name,
                           kv_sparsity=kv_sparsity, phase=phase,
                           end_seq_len=boundaries[phase][1],
                           time_s=elapsed,
                           gpu_kv_gb=last.gpu_kv_bytes / 1e9,
                           cpu_kv_gb=last.cpu_kv_bytes / 1e9,
                           gpu_used_gb=last.gpu_used_bytes / 1e9)

        # (b) impact of recomputation at this KV sparsity.
        no_recompute = AlisaSystem(model, hardware, kv_sparsity=kv_sparsity,
                                   use_compression=False,
                                   enable_recomputation=False).run(workload)
        result.add(series="recomputation", system="alisa",
                   kv_sparsity=kv_sparsity, phase="all",
                   end_seq_len=workload.max_seq_len,
                   time_s=alisa_trace.total_time,
                   gpu_kv_gb=0.0, cpu_kv_gb=0.0, gpu_used_gb=0.0,
                   time_without_recompute_s=no_recompute.total_time,
                   recompute_speedup=(no_recompute.total_time
                                      / alisa_trace.total_time))

        # (c) ablation: SWA only -> + dynamic scheduling -> + compression.
        ablations = {
            "swa_only": dict(use_dynamic_scheduling=False, use_compression=False),
            "swa_ds": dict(use_dynamic_scheduling=True, use_compression=False),
            "swa_ds_compression": dict(use_dynamic_scheduling=True,
                                       use_compression=True),
        }
        for label, flags in ablations.items():
            trace = AlisaSystem(model, hardware, kv_sparsity=kv_sparsity,
                                **flags).run(workload)
            result.add(series="ablation", system=label,
                       kv_sparsity=kv_sparsity, phase="all",
                       end_seq_len=workload.max_seq_len,
                       time_s=trace.total_time,
                       gpu_kv_gb=0.0, cpu_kv_gb=0.0, gpu_used_gb=0.0,
                       throughput_tokens_per_s=trace.throughput,
                       speedup_vs_flexgen=(trace.throughput
                                           / flexgen_trace.throughput))
    return result
