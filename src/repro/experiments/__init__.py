"""Experiment drivers, one per paper figure/table (see DESIGN.md)."""

from repro.experiments import (  # noqa: F401 (registration)
    algorithm,
    motivation,
    serving,
    system,
)
from repro.experiments.base import (
    ExperimentResult,
    list_experiments,
    run_experiment,
)

__all__ = ["ExperimentResult", "list_experiments", "run_experiment"]
