"""Command-line entry point: ``python -m repro.experiments <name>``.

Run ``python -m repro.experiments --list`` to enumerate the available
experiments (one per paper figure/table) and
``python -m repro.experiments fig09_throughput`` to print its table.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a figure or table from the ALISA paper.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--max-rows", type=int, default=40,
                        help="maximum number of table rows to print")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name, description in list_experiments().items():
            print(f"{name:28s} {description}")
        return 0

    result = run_experiment(args.experiment)
    print(f"# {result.experiment}: {result.description}")
    print(result.to_table(max_rows=args.max_rows))
    if len(result.rows) > args.max_rows:
        print(f"... ({len(result.rows)} rows total)")
    for key, value in result.notes.items():
        print(f"note: {key} = {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
