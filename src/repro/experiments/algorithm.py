"""Algorithm-level experiments: Figures 3, 4, 5, 8, and 10.

These experiments run the functional (NumPy) models:

* ``fig03_sparsity`` — attention-weight sparsity across decoding steps and
  layers for two model scales.
* ``fig04_distributions`` — average attention-score distributions of dense,
  local, strided, and SWA attention plus their Spearman correlation to dense.
* ``fig05_attention_maps`` — average dense attention-weight map at sequence
  length 16.
* ``fig08_accuracy`` — accuracy / negative perplexity versus KV sparsity for
  every attention method, model family, and dataset stand-in.
* ``fig10_attainable_sparsity`` — attention-weight sparsity attained by SWA
  as a function of KV sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.attention.variants import make_policy
from repro.evaluation.accuracy import sweep_sparsity
from repro.evaluation.correlation import spearman_correlation
from repro.evaluation.sparsity import (
    average_attention_map,
    average_received_attention,
    sparsity_over_steps,
)
from repro.experiments.base import ExperimentResult, register
from repro.model.builder import build_random_model
from repro.model.generation import generate
from repro.workloads.corpus import zipf_prompt_batch
from repro.workloads.recall import ALL_DATASETS

#: Executable stand-ins used by the attention-statistics experiments.
SPARSITY_MODELS = {"opt-6.7b": "opt-tiny", "opt-30b": "opt-base"}


def _dense_run(stand_in: str, prompt_len: int, num_steps: int, seed: int,
               policy_name: str = "dense", kv_sparsity: float = 0.0):
    model = build_random_model(stand_in, seed=seed)
    prompts = zipf_prompt_batch(1, prompt_len, model.config.vocab_size, seed=seed)
    policy = make_policy(policy_name, kv_sparsity=kv_sparsity)
    return model, generate(model, prompts, max_new_tokens=num_steps, policy=policy)


@register("fig03_sparsity",
          "Attention-weight sparsity across steps and layers (Figure 3)")
def fig03_sparsity(prompt_len: int = 48, num_steps: int = 32,
                   seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("fig03_sparsity", "Figure 3: attention sparsity")
    for paper_name, stand_in in SPARSITY_MODELS.items():
        _, run = _dense_run(stand_in, prompt_len, num_steps, seed)
        sparsity = sparsity_over_steps(run.records)
        for step_idx in range(sparsity.shape[0]):
            for layer_idx in range(sparsity.shape[1]):
                result.add(model=paper_name, stand_in=stand_in,
                           step=step_idx, layer=layer_idx,
                           sparsity=float(sparsity[step_idx, layer_idx]))
        result.notes[f"{paper_name}_mean_sparsity"] = float(sparsity.mean())
    return result


@register("fig04_distributions",
          "Attention-score distributions and Spearman correlation vs dense "
          "attention (Figure 4)")
def fig04_distributions(dataset: str = "wikitext-2", model: str = "opt-13b",
                        kv_sparsity: float = 0.6, layer: int = 1,
                        seed: int = 0, num_steps: int | None = None,
                        prompt_len: int | None = None) -> ExperimentResult:
    """Compare how each method distributes attention over the sequence.

    The comparison runs the constructed retrieval model on one recall
    sequence under every policy and accumulates the attention each position
    receives in the retrieval layer; dense attention concentrates the mass
    on the binding sites (a power-law-shaped distribution), and the Spearman
    correlation measures how well each sparse method reproduces it.
    ``num_steps``/``prompt_len`` are accepted for API symmetry with the other
    drivers and shorten the evaluated sequence when set.
    """
    from repro.model.constructed import build_recall_model
    from repro.model.generation import teacher_forced_logits
    from repro.workloads.recall import ALL_DATASETS, generate_recall_dataset

    result = ExperimentResult("fig04_distributions",
                              "Figure 4: score distributions and correlation")
    config = ALL_DATASETS[dataset].with_sequences(1)
    sequence = generate_recall_dataset(config, seed=seed).sequences[0]
    tokens = sequence.tokens[None, :]
    if num_steps is not None:
        limit = min(tokens.shape[1], config.prefill_len + num_steps)
        tokens = tokens[:, :limit]
    recall_model = build_recall_model(model, seed=seed)
    total_len = tokens.shape[1]

    reference = None
    for policy_name in ("dense", "local", "strided", "swa"):
        sparsity = 0.0 if policy_name == "dense" else kv_sparsity
        policy = make_policy(policy_name, kv_sparsity=sparsity)
        _, session = teacher_forced_logits(recall_model, tokens, policy=policy,
                                           prefill_len=config.prefill_len,
                                           record_attention=True)
        received = average_received_attention(session.records, layer, total_len)
        if policy_name == "dense":
            reference = received
            rho = 1.0
        else:
            rho = spearman_correlation(reference, received)
        top10 = max(1, int(0.1 * received.size))
        order = np.sort(received)[::-1]
        result.add(policy=policy_name, kv_sparsity=sparsity, spearman_rho=rho,
                   top10pct_mass=float(order[:top10].sum() / max(order.sum(), 1e-12)),
                   max_score=float(order[0]))
    return result


@register("fig05_attention_maps",
          "Average dense attention-weight map (Figure 5)")
def fig05_attention_maps(seq_len: int = 16, seed: int = 0,
                         layer: int = 2) -> ExperimentResult:
    result = ExperimentResult("fig05_attention_maps",
                              "Figure 5: average attention map")
    stand_in = SPARSITY_MODELS["opt-6.7b"]
    model = build_random_model(stand_in, seed=seed)
    prompts = zipf_prompt_batch(4, seq_len, model.config.vocab_size, seed=seed)
    run = generate(model, prompts, max_new_tokens=1,
                   policy=make_policy("dense"))
    attention_map = average_attention_map(run.records, layer, seq_len)
    for i in range(seq_len):
        for j in range(seq_len):
            if j > i:
                continue  # causal mask
            result.add(query_position=i, key_position=j,
                       weight=float(attention_map[i, j]))
    result.notes["map_shape"] = (seq_len, seq_len)
    return result


@register("fig08_accuracy",
          "Accuracy / negative perplexity vs KV sparsity for dense, local, "
          "strided, SWA and ALISA (Figure 8)")
def fig08_accuracy(models: tuple[str, ...] = ("opt-6.7b", "opt-13b",
                                              "llama-7b", "llama-13b",
                                              "pythia-6.7b"),
                   datasets: tuple[str, ...] = ("wikitext-2", "alpaca",
                                                "piqa", "copa"),
                   sparsities: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
                   num_sequences: int = 4, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("fig08_accuracy", "Figure 8: accuracy sweep")
    for model in models:
        for dataset in datasets:
            config = ALL_DATASETS[dataset]
            for row in sweep_sparsity(model, config, sparsities=sparsities,
                                      num_sequences=num_sequences, seed=seed):
                result.add(**row.as_dict())
    return result


@register("fig10_attainable_sparsity",
          "Attention-weight sparsity attained by SWA vs KV sparsity (Figure 10)")
def fig10_attainable_sparsity(prompt_len: int = 48, num_steps: int = 32,
                              kv_sparsities: tuple[float, ...] = (0.0, 0.2, 0.4,
                                                                  0.6, 0.8),
                              seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("fig10_attainable_sparsity",
                              "Figure 10: attainable attention sparsity")
    for paper_name, stand_in in SPARSITY_MODELS.items():
        for kv_sparsity in kv_sparsities:
            policy_name = "dense" if kv_sparsity == 0.0 else "swa"
            _, run = _dense_run(stand_in, prompt_len, num_steps, seed,
                                policy_name=policy_name,
                                kv_sparsity=kv_sparsity)
            # Measure over decode steps: tokens SWA dropped count as zeros.
            fractions = []
            for record in run.records[1:]:
                seq_len = record.seq_len
                for weights, positions in zip(record.weights,
                                              record.key_positions):
                    row_max = weights.max(axis=-1, keepdims=True)
                    above = weights >= 0.01 * row_max
                    kept_above = above.mean(axis=(0, 1, 2)).sum()
                    fractions.append(1.0 - kept_above / seq_len)
            result.add(model=paper_name, kv_sparsity=kv_sparsity,
                       attention_sparsity=float(np.mean(fractions)))
    return result
