"""Experiment driver infrastructure.

Each paper figure/table is reproduced by a function returning an
:class:`ExperimentResult` — a list of flat row dictionaries plus metadata —
so that benchmarks, tests, and the CLI can all consume the same outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro._common import ConfigurationError


@dataclass
class ExperimentResult:
    """Rows reproducing one paper artifact (figure or table)."""

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def add(self, **row) -> None:
        self.rows.append(row)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]

    def filter(self, **criteria) -> list[dict]:
        """Rows matching all given column=value criteria."""
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                out.append(row)
        return out

    def to_table(self, max_rows: int | None = None) -> str:
        """Render rows as an aligned text table."""
        if not self.rows:
            return f"[{self.experiment}] no rows"
        columns = list(self.rows[0].keys())
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
        widths = [max(len(col), *(len(r[i]) for r in rendered))
                  for i, col in enumerate(columns)]
        lines = [
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
            "  ".join("-" * widths[i] for i in range(len(columns))),
        ]
        lines.extend("  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in rendered)
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


#: Global registry of experiment drivers: name -> (description, callable).
_REGISTRY: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {}


def register(name: str, description: str):
    """Decorator registering an experiment driver under ``name``."""

    def decorator(func: Callable[..., ExperimentResult]):
        _REGISTRY[name] = (description, func)
        return func

    return decorator


def list_experiments() -> dict[str, str]:
    """Mapping of registered experiment names to their descriptions."""
    return {name: desc for name, (desc, _) in sorted(_REGISTRY.items())}


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by name."""
    try:
        _, func = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}"
        ) from exc
    return func(**kwargs)
