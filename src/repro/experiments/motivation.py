"""Motivation experiments: Figure 1 and Figure 2 (c).

* ``fig01_motivation`` — execution-time and memory breakdown of OPT-6.7B
  inference under three workloads when KV tensors are kept on GPU, split
  50/50 with CPU memory, or kept fully in CPU memory (FlexGen-style).
* ``fig02_kv_caching`` — execution time and memory usage per decoding step
  with and without KV caching.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSystem
from repro.baselines.reference import GPUOnlySystem
from repro.experiments.base import ExperimentResult, register
from repro.hardware.presets import V100_32GB_NODE
from repro.systems.cost import LLMCostModel
from repro.model.config import get_config
from repro.workloads.descriptors import FIGURE1_WORKLOADS, Workload


@register("fig01_motivation",
          "Time and memory breakdown for OPT-6.7B under GPU-only, 50% and "
          "100% CPU KV placement (Figure 1)")
def fig01_motivation(model: str = "opt-6.7b", output_len: int | None = None,
                     workloads=FIGURE1_WORKLOADS) -> ExperimentResult:
    result = ExperimentResult("fig01_motivation",
                              "Figure 1: motivation breakdown")
    hardware = V100_32GB_NODE
    config = get_config(model)
    cost = LLMCostModel(config, hardware)
    placements = {
        "gpu-only": None,
        "cpu-50%": 0.5,
        "cpu-100%": 1.0,
    }
    for workload in workloads:
        if output_len is not None:
            workload = Workload(workload.batch_size, workload.input_len,
                                output_len, name=workload.name)
        for placement, cpu_fraction in placements.items():
            if cpu_fraction is None:
                system = GPUOnlySystem(model, hardware)
            else:
                system = FlexGenSystem(model, hardware,
                                       cpu_fraction=cpu_fraction)
            trace = system.run(workload)
            components = trace.time_by_component()
            kv_bytes = cost.kv_bytes(workload.batch_size, workload.max_seq_len)
            result.add(
                workload=workload.name,
                batch_size=workload.batch_size,
                placement=placement,
                oom=trace.oom,
                total_time_s=trace.total_time,
                compute_time_s=components["compute"] + components["prefill"],
                memory_access_time_s=components["transfer"],
                weights_gb=cost.weight_bytes() / 1e9,
                activations_gb=cost.activation_bytes(
                    workload.batch_size, workload.input_len) / 1e9,
                kv_tensors_gb=kv_bytes / 1e9,
                peak_gpu_gb=trace.peak_gpu_bytes / 1e9,
                gpu_capacity_gb=hardware.gpu.memory_bytes / 1e9,
            )
    return result


@register("fig02_kv_caching",
          "Execution time and GPU memory per decoding step with and without "
          "KV caching (Figure 2 c)")
def fig02_kv_caching(model: str = "opt-6.7b", batch_size: int = 8,
                     prompt_len: int = 32, num_steps: int = 128,
                     stride: int = 8) -> ExperimentResult:
    result = ExperimentResult("fig02_kv_caching",
                              "Figure 2(c): KV caching vs recomputation")
    config = get_config(model)
    cost = LLMCostModel(config, V100_32GB_NODE)
    for step in range(0, num_steps, stride):
        seq_len = prompt_len + step + 1
        with_cache = cost.decode_step_time(batch_size, kv_len=seq_len)
        # Without KV caching every step recomputes attention over the whole
        # sequence (quadratic work), i.e. a full prefill-shaped pass.
        without_cache = cost.prefill_time(batch_size, seq_len)
        result.add(
            step=step,
            seq_len=seq_len,
            with_cache_time_s=with_cache,
            without_cache_time_s=without_cache,
            with_cache_kv_gb=cost.kv_bytes(batch_size, seq_len) / 1e9,
            without_cache_kv_gb=0.0,
        )
    return result
