"""Online serving experiment: ALISA vs. vLLM vs. FlexGen under load.

Extends the paper's offline throughput protocol (Section VI, Figure 9) to
online continuous batching: requests arrive over time (Poisson or bursty),
are admitted FCFS against the GPU KV budget, and report the tail-latency and
goodput metrics a serving deployment cares about.  The Figure 9 crossover
reappears as an *admission* effect — ALISA's INT8 KV cache and sparse
attention let it keep more requests in flight, so its advantage grows with
the arrival rate exactly as it grows with batch size offline.

The sweep also carries a **parallelism axis**: each entry of ``parallelism``
(``"none"``, ``"tp-2"``, ``"pp-4"``, ...) builds an ``xN`` node from the
model's single-GPU preset at equal per-GPU memory and serves the same
arrival traces through the sharded engine, so one invocation compares
1/2/4-GPU nodes under tensor and pipeline parallelism.  Per-configuration
rows report the communication-time share and peak per-shard occupancy next
to the latency percentiles.
"""

from __future__ import annotations

from repro.baselines import BASELINE_SYSTEMS
from repro.core.engine import AlisaSystem
from repro.core.schedule_cache import SchedulePolicy
from repro.experiments.base import ExperimentResult, register
from repro.hardware.presets import get_interconnect, hardware_for_model, multi_gpu
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import ParallelismSpec
from repro.workloads.arrivals import generate_requests

#: Systems compared in the serving sweep: constructors keyed by name.
SERVING_SYSTEMS = {
    "flexgen": BASELINE_SYSTEMS["flexgen"],
    "vllm": BASELINE_SYSTEMS["vllm"],
    "alisa": lambda model, hardware: AlisaSystem(model, hardware,
                                                 kv_sparsity=0.8),
}

#: Scheduler-cache counters surfaced per result row (zero for systems
#: without an offline planning stage).
SOLVER_STAT_COLUMNS = ("exact_hits", "canonical_hits", "warm_solves",
                       "full_solves")


def max_sustained_rate(result: ExperimentResult, system: str = "alisa",
                       parallelism: str = "none",
                       max_queueing_delay_s: float = 1.0) -> float:
    """Highest swept arrival rate a configuration sustains.

    A rate counts as *sustained* when the mean queueing delay stays below
    ``max_queueing_delay_s`` — past the capacity knee, FCFS admission makes
    the queue (and with it the mean delay) grow with every extra request,
    so this threshold cleanly separates under- from over-subscribed rates.
    Returns 0.0 when no swept rate is sustained.
    """
    label = ParallelismSpec.parse(parallelism).label
    rates = [row["rate_req_per_s"]
             for row in result.filter(system=system, parallelism=label)
             if row["mean_queueing_delay_s"] <= max_queueing_delay_s]
    return max(rates, default=0.0)


@register("serving_rate_sweep",
          "Online continuous-batching latency and goodput of ALISA vs "
          "vLLM vs FlexGen under an arrival-rate sweep")
def serving_rate_sweep(model: str = "opt-6.7b",
                       rates: tuple[float, ...] = (1.0, 4.0, 16.0),
                       num_requests: int = 24,
                       pattern: str = "poisson",
                       input_len: int | None = 256,
                       output_len: int | None = 256,
                       seed: int = 0,
                       ttft_slo_s: float = 5.0,
                       tpot_slo_s: float = 0.2,
                       exact_schedules: bool = False,
                       parallelism: tuple[str, ...] = ("none",),
                       interconnect: str = "nvlink",
                       pp_microbatches: int = 4) -> ExperimentResult:
    """Sweep the request arrival rate and report serving metrics.

    ``input_len``/``output_len`` of ``None`` sample ShareGPT-style
    heavy-tailed lengths instead of the fixed Alpaca-like shape.

    ``parallelism`` entries (``"none"``, ``"tp-2"``, ``"pp-4"``, ...) are
    served on an ``xN`` node derived from the model's preset at equal
    per-GPU memory, joined by the named ``interconnect`` preset; every
    (system, parallelism) pair sees the same arrival traces, so rows are
    directly comparable across the axis.

    Each system is built once per parallelism entry and reused across the
    whole sweep, so ALISA's schedule cache stays warm from rate to rate;
    per-serve solver counters are reported in the ``solver_*`` columns.
    ``exact_schedules=True`` makes ALISA re-solve with the paper's full
    grid search for every new epoch shape (byte-identical schedules, much
    slower at high arrival rates).
    """
    result = ExperimentResult(
        "serving_rate_sweep",
        "Serving: TTFT/TPOT percentiles and goodput vs arrival rate",
    )
    base_hardware = hardware_for_model(model)
    link = get_interconnect(interconnect)
    policy = SchedulePolicy(exact=exact_schedules)
    engines: dict[tuple[str, str], ContinuousBatchingEngine] = {}
    specs: dict[str, ParallelismSpec] = {}
    for entry in parallelism:
        spec = ParallelismSpec.parse(entry, pp_microbatches=pp_microbatches)
        specs[spec.label] = spec
        hardware = multi_gpu(base_hardware, spec.degree, link)
        for system_name, build in SERVING_SYSTEMS.items():
            if system_name == "alisa":
                simulator = AlisaSystem(model, hardware, kv_sparsity=0.8,
                                        schedule_policy=policy,
                                        parallelism=spec)
            else:
                simulator = build(model, hardware, parallelism=spec)
            engines[(spec.label, system_name)] = \
                ContinuousBatchingEngine(simulator)
    for rate in rates:
        requests = generate_requests(num_requests, rate, pattern=pattern,
                                     seed=seed, input_len=input_len,
                                     output_len=output_len)
        for (label, system_name), engine in engines.items():
            spec = specs[label]
            trace = engine.serve(requests)
            summary = trace.summary()
            solver = trace.metadata.get("scheduler", {})
            shards = trace.metadata["shards"]
            result.add(
                model=model, hardware=engine.simulator.hardware.name,
                system=system_name, parallelism=label,
                gpu_count=spec.degree,
                rate_req_per_s=rate, pattern=pattern,
                num_requests=summary["num_requests"],
                duration_s=summary["duration_s"],
                throughput_tokens_per_s=summary["throughput_tokens_per_s"],
                goodput_tokens_per_s=trace.goodput(ttft_slo_s=ttft_slo_s,
                                                   tpot_slo_s=tpot_slo_s),
                mean_queueing_delay_s=summary["mean_queueing_delay_s"],
                p50_ttft_s=summary["p50_ttft_s"],
                p99_ttft_s=summary["p99_ttft_s"],
                p50_tpot_s=summary["p50_tpot_s"],
                p99_tpot_s=summary["p99_tpot_s"],
                p99_latency_s=summary["p99_latency_s"],
                kv_budget_tokens=trace.metadata["kv_budget_tokens"],
                peak_reserved_tokens=trace.metadata["peak_reserved_tokens"],
                peak_shard_occupancy=max(
                    (shard["peak_occupancy"] for shard in shards),
                    default=0.0),
                comm_time_share=trace.metadata["comm_time_share"],
                **{f"solver_{name}": solver.get(name, 0)
                   for name in SOLVER_STAT_COLUMNS},
            )
    result.notes["ttft_slo_s"] = ttft_slo_s
    result.notes["tpot_slo_s"] = tpot_slo_s
    result.notes["exact_schedules"] = exact_schedules
    result.notes["parallelism"] = tuple(specs)
    result.notes["interconnect"] = link.name
    result.notes["lengths"] = (
        "sharegpt" if input_len is None or output_len is None
        else f"fixed s={input_len} n={output_len}"
    )
    return result
