"""Online serving experiment: ALISA vs. vLLM vs. FlexGen under load.

Extends the paper's offline throughput protocol (Section VI, Figure 9) to
online continuous batching: requests arrive over time (Poisson or bursty),
are admitted FCFS against the GPU KV budget, and report the tail-latency and
goodput metrics a serving deployment cares about.  The Figure 9 crossover
reappears as an *admission* effect — ALISA's INT8 KV cache and sparse
attention let it keep more requests in flight, so its advantage grows with
the arrival rate exactly as it grows with batch size offline.

The sweep also carries a **parallelism axis**: each entry of ``parallelism``
(``"none"``, ``"tp-2"``, ``"pp-4"``, ...) builds an ``xN`` node from the
model's single-GPU preset at equal per-GPU memory and serves the same
arrival traces through the sharded engine, so one invocation compares
1/2/4-GPU nodes under tensor and pipeline parallelism.  Per-configuration
rows report the communication-time share and peak per-shard occupancy next
to the latency percentiles.

On top of that sits the **cluster axis**: ``cluster`` entries
(``"tp-4"``, ``"2x(tp-2)"``, ``"4x(tp-1)"``) describe data-parallel
replica groups (:mod:`repro.cluster`) — N sharded replicas behind a
load-balancing router — and one invocation compares scale-up against
scale-out at equal total GPU count, per routing policy.
"""

from __future__ import annotations

from repro._common import ConfigurationError
from repro.baselines import BASELINE_SYSTEMS
from repro.cluster import ClusterLayout, ReplicaGroup
from repro.core.engine import AlisaSystem
from repro.core.schedule_cache import SchedulePolicy
from repro.experiments.base import ExperimentResult, register
from repro.hardware.presets import (
    get_interconnect,
    hardware_for_model,
    multi_gpu,
    validate_equal_gpu_count,
)
from repro.serving import ContinuousBatchingEngine
from repro.systems.cost import ParallelismSpec
from repro.workloads.arrivals import generate_requests

#: Systems compared in the serving sweep: constructors keyed by name.
SERVING_SYSTEMS = {
    "flexgen": BASELINE_SYSTEMS["flexgen"],
    "vllm": BASELINE_SYSTEMS["vllm"],
    "alisa": lambda model, hardware: AlisaSystem(model, hardware,
                                                 kv_sparsity=0.8),
}

#: Scheduler-cache counters surfaced per result row (zero for systems
#: without an offline planning stage).
SOLVER_STAT_COLUMNS = ("exact_hits", "canonical_hits", "warm_solves",
                       "full_solves")


def max_sustained_rate(result: ExperimentResult, system: str = "alisa",
                       parallelism: str = "none",
                       max_queueing_delay_s: float = 1.0,
                       cluster: str | None = None,
                       routing: str | None = None) -> float:
    """Highest swept arrival rate a configuration sustains.

    A rate counts as *sustained* when the mean queueing delay stays below
    ``max_queueing_delay_s`` — past the capacity knee, FCFS admission makes
    the queue (and with it the mean delay) grow with every extra request,
    so this threshold cleanly separates under- from over-subscribed rates.
    Returns 0.0 when no swept rate is sustained.

    ``cluster`` (a cluster axis label, any spelling
    :meth:`~repro.cluster.ClusterLayout.parse` accepts) selects rows of a
    cluster sweep instead of the parallelism axis; ``routing`` narrows to
    one routing policy when the sweep carried several.
    """
    if cluster is not None:
        criteria = {"system": system,
                    "cluster": ClusterLayout.parse(cluster).label}
        if routing is not None:
            criteria["routing"] = routing
    else:
        criteria = {"system": system,
                    "parallelism": ParallelismSpec.parse(parallelism).label}
    rates = [row["rate_req_per_s"]
             for row in result.filter(**criteria)
             if row["mean_queueing_delay_s"] <= max_queueing_delay_s]
    return max(rates, default=0.0)


@register("serving_rate_sweep",
          "Online continuous-batching latency and goodput of ALISA vs "
          "vLLM vs FlexGen under an arrival-rate sweep")
def serving_rate_sweep(model: str = "opt-6.7b",
                       rates: tuple[float, ...] = (1.0, 4.0, 16.0),
                       num_requests: int = 24,
                       pattern: str = "poisson",
                       input_len: int | None = 256,
                       output_len: int | None = 256,
                       seed: int = 0,
                       ttft_slo_s: float = 5.0,
                       tpot_slo_s: float = 0.2,
                       exact_schedules: bool = False,
                       exact_stepping: bool = False,
                       parallelism: tuple[str, ...] = ("none",),
                       interconnect: str = "nvlink",
                       pp_microbatches: int = 4,
                       cluster: tuple[str, ...] | None = None,
                       routing: tuple[str, ...] | str | None = None,
                       require_equal_gpus: bool = True,
                       record_mode: str = "full",
                       workload=None,
                       slo_classes: dict | None = None,
                       preemption: str | None = None,
                       prefill_chunk_tokens: int | None = None,
                       closed_loop: bool = False,
                       observers=None,
                       faults=None,
                       retry=None,
                       shedding=None) -> ExperimentResult:
    """Sweep the request arrival rate and report serving metrics.

    ``input_len``/``output_len`` of ``None`` sample ShareGPT-style
    heavy-tailed lengths instead of the fixed Alpaca-like shape.

    ``workload`` swaps the synthetic single-shot arrivals for a workload
    object carrying its own request generator — anything with
    ``with_rate(rate)`` returning a generator whose ``requests()`` yields
    the trace, i.e. a :func:`repro.workloads.sessions` multi-turn session
    trace.  Each swept rate re-derives the workload at that rate with the
    same seed, and ``input_len``/``output_len``/``pattern`` are ignored in
    favour of the workload's own shape.  Session traces light up the
    engine's prefix-reuse accounting; every row then reports a non-trivial
    ``prefix_hit_rate``.

    ``slo_classes`` (e.g. ``{"interactive": (2.0, 0.1)}``) adds one
    ``goodput_<class>_tokens_per_s`` column per configured class, computed
    against that class's own TTFT/TPOT SLOs.  ``preemption`` (``"retain"``
    or ``"recompute"``) builds every engine with priority scheduling:
    interactive arrivals may evict running batch requests at epoch
    boundaries (see ``ContinuousBatchingEngine``); incompatible with
    ``exact_stepping=True``.

    ``prefill_chunk_tokens`` builds every engine with chunked prefill:
    prefills are split into budget-sized chunks interleaved with decode,
    bounding any preemptor's wait to one chunk's priced time (the
    ``p99_preemption_latency_s`` and ``prefill_chunks_per_request``
    columns report the effect).  ``closed_loop=True`` serves each rate
    through ``workload.closed_loop()`` — turn ``t+1`` of every session
    arrives at turn ``t``'s *simulated* completion plus think time —
    and requires a session ``workload``.  Both are event-path only
    (incompatible with ``exact_stepping=True``).

    ``parallelism`` entries (``"none"``, ``"tp-2"``, ``"pp-4"``, ...) are
    served on an ``xN`` node derived from the model's preset at equal
    per-GPU memory, joined by the named ``interconnect`` preset; every
    (system, parallelism) pair sees the same arrival traces, so rows are
    directly comparable across the axis.

    ``cluster`` switches the sweep to the data-parallel axis instead:
    entries (``"tp-4"``, ``"2x(tp-2)"``, ``"4x(tp-1)"``) become
    :class:`~repro.cluster.ReplicaGroup` configurations served once per
    ``routing`` policy (``"round-robin"`` — the default, ``"jsq"``,
    ``"least-loaded"``), with the trace/router seed shared so the
    comparison is deterministic.
    ``require_equal_gpus`` (default on) rejects cluster entries that spend
    unequal total GPU counts, keeping the comparison honest; the two axes
    are mutually exclusive.

    Each system is built once per parallelism/cluster entry and reused
    across the whole sweep, so ALISA's schedule caches stay warm from rate
    to rate; per-serve solver counters are reported in the ``solver_*``
    columns.  ``exact_schedules=True`` makes ALISA re-solve with the
    paper's full grid search for every new epoch shape (byte-identical
    schedules, much slower at high arrival rates).  ``exact_stepping=True``
    prices decode epochs with the legacy per-step loop instead of the
    vectorized epoch fast path (bit-identical traces, much slower — see
    docs/serving.md, "Epoch pricing fast path").

    ``record_mode="streaming"`` serves every row through bounded-memory
    streaming traces (:mod:`repro.serving.sketches`): exact counts,
    throughput, delays, and goodput; P² estimates for the latency
    percentiles.  Use it when ``num_requests`` is large enough that
    retaining per-request records would dominate memory.

    ``observers`` is a zero-argument factory returning a fresh observer
    list for every serve row (observers such as
    :class:`repro.obs.SpanTracer` are single-serve) — e.g.
    ``observers=lambda: [SpanTracer()]``.  When the factory yields a
    :class:`~repro.obs.SpanTracer` and ``slo_classes`` is set, every row
    gains the SLO-violation attribution columns (``slo_violations`` and
    the ``blame_*_s`` per-component totals over violating requests);
    without it they report zeros.  See ``docs/observability.md``.

    ``faults`` (a :class:`repro.faults.FaultSchedule`) injects the same
    replica-outage schedule into every serve row; ``retry`` and
    ``shedding`` tune the recovery path (see :mod:`repro.faults` and
    ``docs/robustness.md``).  Every row always carries the resilience
    columns (``num_failed``, ``num_shed``, ``num_retries``,
    ``availability``) — zeros and availability 1.0 on fault-free sweeps —
    so results stay rectangular across the axis.
    """
    if observers is not None and not callable(observers):
        raise ConfigurationError(
            "observers must be a zero-argument factory returning a fresh "
            "observer list per serve row (e.g. lambda: [SpanTracer()])"
        )
    result = ExperimentResult(
        "serving_rate_sweep",
        "Serving: TTFT/TPOT percentiles and goodput vs arrival rate",
    )
    base_hardware = hardware_for_model(model)
    link = get_interconnect(interconnect)
    policy = SchedulePolicy(exact=exact_schedules)
    if closed_loop and (workload is None
                        or not hasattr(workload, "closed_loop")):
        raise ConfigurationError(
            "closed_loop=True needs a session workload carrying a "
            "closed_loop() source (pass workload=sessions(...))"
        )
    if cluster is None:
        if routing is not None:
            raise ConfigurationError(
                "routing only applies to the cluster axis; pass "
                "cluster=(...) alongside it"
            )
    else:
        if tuple(parallelism) != ("none",):
            raise ConfigurationError(
                "the cluster and parallelism axes are mutually exclusive; "
                "put per-replica sharding inside the cluster entries "
                "(e.g. cluster=('2x(tp-2)',))"
            )
        return _cluster_rate_sweep(
            result, model=model, base_hardware=base_hardware, link=link,
            schedule_policy=policy, rates=rates, num_requests=num_requests,
            pattern=pattern, input_len=input_len, output_len=output_len,
            seed=seed, ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s,
            exact_schedules=exact_schedules, exact_stepping=exact_stepping,
            cluster=cluster, routing=routing,
            pp_microbatches=pp_microbatches,
            require_equal_gpus=require_equal_gpus,
            record_mode=record_mode, workload=workload,
            slo_classes=slo_classes, preemption=preemption,
            prefill_chunk_tokens=prefill_chunk_tokens,
            closed_loop=closed_loop, observers=observers,
            faults=faults, retry=retry, shedding=shedding)
    engines: dict[tuple[str, str], ContinuousBatchingEngine] = {}
    specs: dict[str, ParallelismSpec] = {}
    for entry in parallelism:
        spec = ParallelismSpec.parse(entry, pp_microbatches=pp_microbatches)
        specs[spec.label] = spec
        hardware = multi_gpu(base_hardware, spec.degree, link)
        for system_name, build in SERVING_SYSTEMS.items():
            simulator = _build_simulator(system_name, build, model, hardware,
                                         spec, policy, exact_stepping)
            engines[(spec.label, system_name)] = \
                ContinuousBatchingEngine(
                    simulator, preemption=preemption,
                    prefill_chunk_tokens=prefill_chunk_tokens)
    for rate in rates:
        # Closed-loop sources are single-use (arrivals are consumed as the
        # engine feeds completions back), so each serve gets a fresh one.
        requests = (None if closed_loop else
                    _rate_requests(rate, workload, num_requests, pattern,
                                   seed, input_len, output_len))
        for (label, system_name), engine in engines.items():
            spec = specs[label]
            source = (workload.with_rate(rate).closed_loop()
                      if closed_loop else requests)
            trace = engine.serve(source, record_mode=record_mode,
                                 ttft_slo_s=ttft_slo_s,
                                 tpot_slo_s=tpot_slo_s,
                                 class_slos=slo_classes,
                                 observers=(observers()
                                            if observers is not None
                                            else None),
                                 faults=faults, retry=retry,
                                 shedding=shedding)
            summary = trace.summary()
            solver = trace.metadata.get("scheduler", {})
            shards = trace.metadata["shards"]
            result.add(
                model=model, hardware=engine.simulator.hardware.name,
                system=system_name, parallelism=label,
                gpu_count=spec.degree,
                rate_req_per_s=rate, pattern=pattern,
                num_requests=summary["num_requests"],
                duration_s=summary["duration_s"],
                throughput_tokens_per_s=summary["throughput_tokens_per_s"],
                goodput_tokens_per_s=trace.goodput(ttft_slo_s=ttft_slo_s,
                                                   tpot_slo_s=tpot_slo_s),
                mean_queueing_delay_s=summary["mean_queueing_delay_s"],
                p50_ttft_s=summary["p50_ttft_s"],
                p99_ttft_s=summary["p99_ttft_s"],
                p50_tpot_s=summary["p50_tpot_s"],
                p99_tpot_s=summary["p99_tpot_s"],
                p99_latency_s=summary["p99_latency_s"],
                kv_budget_tokens=trace.metadata["kv_budget_tokens"],
                peak_reserved_tokens=trace.metadata["peak_reserved_tokens"],
                peak_shard_occupancy=max(
                    (shard["peak_occupancy"] for shard in shards),
                    default=0.0),
                comm_time_share=trace.metadata["comm_time_share"],
                prefix_hit_rate=summary["prefix_hit_rate"],
                num_preemptions=summary["num_preemptions"],
                p99_preemption_latency_s=summary[
                    "p99_preemption_latency_s"],
                prefill_chunks_per_request=summary[
                    "prefill_chunks_per_request"],
                **_per_class_columns(trace, slo_classes),
                **_attribution_columns(trace),
                **_resilience_columns(trace),
                **{f"solver_{name}": solver.get(name, 0)
                   for name in SOLVER_STAT_COLUMNS},
            )
    result.notes["ttft_slo_s"] = ttft_slo_s
    result.notes["tpot_slo_s"] = tpot_slo_s
    result.notes["exact_schedules"] = exact_schedules
    result.notes["exact_stepping"] = exact_stepping
    result.notes["record_mode"] = record_mode
    result.notes["parallelism"] = tuple(specs)
    result.notes["interconnect"] = link.name
    _note_workload(result, workload, slo_classes, preemption,
                   input_len, output_len,
                   prefill_chunk_tokens=prefill_chunk_tokens,
                   closed_loop=closed_loop, faults=faults)
    return result


def _rate_requests(rate, workload, num_requests, pattern, seed,
                   input_len, output_len):
    """The request trace one swept rate serves (shared by both axes)."""
    if workload is not None:
        return workload.with_rate(rate).requests()
    return generate_requests(num_requests, rate, pattern=pattern, seed=seed,
                             input_len=input_len, output_len=output_len)


def _per_class_columns(trace, slo_classes) -> dict:
    """``goodput_<class>_tokens_per_s`` columns for configured classes."""
    if not slo_classes:
        return {}
    per_class = trace.per_class_summary(slo_classes)
    return {f"goodput_{name}_tokens_per_s":
            per_class.get(name, {}).get("goodput_tokens_per_s", 0.0)
            for name in sorted(slo_classes)}


#: Latency components in the SLO-violation blame columns.
ATTRIBUTION_COLUMNS = ("queueing_s", "prefill_s", "preemption_s", "decode_s")


def _attribution_columns(trace) -> dict:
    """SLO-violation blame columns — zeros unless a
    :class:`repro.obs.SpanTracer` observed the serve with ``slo_classes``
    configured, so sweep rows stay rectangular either way."""
    table = trace.metadata.get("slo_attribution") or {}
    totals = {key: 0.0 for key in ATTRIBUTION_COLUMNS}
    for entry in table.get("classes", {}).values():
        for key in ATTRIBUTION_COLUMNS:
            totals[key] += entry[key]
    columns = {"slo_violations": table.get("violations", 0)}
    columns.update({f"blame_{key}": value
                    for key, value in totals.items()})
    return columns


def _resilience_columns(trace) -> dict:
    """Fault-injection columns — zeros (availability 1.0) on fault-free
    serves, so sweep rows stay rectangular either way."""
    resilience = trace.metadata.get("resilience") or {}
    return {
        "num_failed": trace.num_failed,
        "num_shed": trace.num_shed,
        "num_retries": trace.num_retries,
        "availability": resilience.get("availability", 1.0),
    }


def _note_workload(result, workload, slo_classes, preemption,
                   input_len, output_len, prefill_chunk_tokens=None,
                   closed_loop=False, faults=None) -> None:
    """Workload/SLO-class notes shared by both sweep axes."""
    result.notes["workload"] = ("sessions" if workload is not None
                                else "single-shot")
    result.notes["slo_classes"] = (dict(slo_classes) if slo_classes else None)
    result.notes["preemption"] = preemption
    result.notes["prefill_chunk_tokens"] = prefill_chunk_tokens
    result.notes["closed_loop"] = closed_loop
    result.notes["faults"] = faults is not None
    if workload is not None:
        result.notes["lengths"] = "sessions"
    else:
        result.notes["lengths"] = (
            "sharegpt" if input_len is None or output_len is None
            else f"fixed s={input_len} n={output_len}"
        )


def _build_simulator(system_name, build, model, node, parallelism,
                     schedule_policy, exact_stepping=False):
    """One serving simulator for a sweep row.

    The single place both sweep axes construct systems, so ALISA's serving
    configuration (``kv_sparsity=0.8`` plus the sweep's schedule policy
    and stepping mode) can never diverge between the single-node and
    cluster paths.
    """
    if system_name == "alisa":
        return AlisaSystem(model, node, kv_sparsity=0.8,
                           schedule_policy=schedule_policy,
                           parallelism=parallelism,
                           exact_stepping=exact_stepping)
    return build(model, node, parallelism=parallelism,
                 exact_stepping=exact_stepping)


def _cluster_rate_sweep(result: ExperimentResult, *, model, base_hardware,
                        link, schedule_policy, rates, num_requests, pattern,
                        input_len, output_len, seed, ttft_slo_s, tpot_slo_s,
                        exact_schedules, exact_stepping, cluster, routing,
                        pp_microbatches, require_equal_gpus,
                        record_mode="full", workload=None, slo_classes=None,
                        preemption=None, prefill_chunk_tokens=None,
                        closed_loop=False, observers=None, faults=None,
                        retry=None, shedding=None) -> ExperimentResult:
    """Cluster-axis body of :func:`serving_rate_sweep`.

    One :class:`ReplicaGroup` per (cluster entry, system), reused across
    every rate and routing policy so the per-replica schedule caches stay
    warm for the whole sweep.
    """
    if routing is None:
        routing = ("round-robin",)
    policies = (routing,) if isinstance(routing, str) else tuple(routing)
    if not policies:
        raise ConfigurationError("routing needs at least one policy")
    layouts: dict[str, ClusterLayout] = {}
    for entry in cluster:
        layout = ClusterLayout.parse(entry, pp_microbatches=pp_microbatches)
        layouts.setdefault(layout.label, layout)
    if not layouts:
        raise ConfigurationError("cluster needs at least one layout entry")
    if require_equal_gpus:
        validate_equal_gpu_count(*[layout.cluster_spec(base_hardware, link)
                                   for layout in layouts.values()])

    def factory_for(system_name, build):
        def factory(node, parallelism):
            return _build_simulator(system_name, build, model, node,
                                    parallelism, schedule_policy,
                                    exact_stepping)
        return factory

    groups: dict[tuple[str, str], ReplicaGroup] = {}
    for label, layout in layouts.items():
        for system_name, build in SERVING_SYSTEMS.items():
            groups[(label, system_name)] = ReplicaGroup.from_layout(
                factory_for(system_name, build), layout, base_hardware,
                interconnect=link, seed=seed, preemption=preemption,
                prefill_chunk_tokens=prefill_chunk_tokens)

    for rate in rates:
        requests = (None if closed_loop else
                    _rate_requests(rate, workload, num_requests, pattern,
                                   seed, input_len, output_len))
        for (label, system_name), group in groups.items():
            layout = layouts[label]
            for route_policy in policies:
                source = (workload.with_rate(rate).closed_loop()
                          if closed_loop else requests)
                trace = group.serve(source, policy=route_policy, seed=seed,
                                    record_mode=record_mode,
                                    ttft_slo_s=ttft_slo_s,
                                    tpot_slo_s=tpot_slo_s,
                                    class_slos=slo_classes,
                                    observers=(observers()
                                               if observers is not None
                                               else None),
                                    faults=faults, retry=retry,
                                    shedding=shedding)
                summary = trace.summary()
                solver = trace.metadata.get("scheduler", {})
                result.add(
                    model=model, hardware=group.cluster.node.name,
                    system=system_name, cluster=label,
                    num_replicas=layout.num_replicas,
                    parallelism=layout.parallelism.label,
                    gpu_count=layout.total_gpus, routing=route_policy,
                    rate_req_per_s=rate, pattern=pattern,
                    num_requests=summary["num_requests"],
                    duration_s=summary["duration_s"],
                    throughput_tokens_per_s=summary[
                        "throughput_tokens_per_s"],
                    goodput_tokens_per_s=trace.goodput(
                        ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s),
                    mean_queueing_delay_s=summary["mean_queueing_delay_s"],
                    p50_ttft_s=summary["p50_ttft_s"],
                    p99_ttft_s=summary["p99_ttft_s"],
                    p50_tpot_s=summary["p50_tpot_s"],
                    p99_tpot_s=summary["p99_tpot_s"],
                    p99_latency_s=summary["p99_latency_s"],
                    kv_budget_tokens=trace.metadata["kv_budget_tokens"],
                    tokens_imbalance=summary["tokens_imbalance"],
                    dispatch_counts=tuple(
                        trace.metadata["routing"]["dispatch_counts"]),
                    prefix_hit_rate=summary["prefix_hit_rate"],
                    num_preemptions=summary["num_preemptions"],
                    p99_preemption_latency_s=summary[
                        "p99_preemption_latency_s"],
                    prefill_chunks_per_request=summary[
                        "prefill_chunks_per_request"],
                    **_per_class_columns(trace, slo_classes),
                    **_attribution_columns(trace),
                    **_resilience_columns(trace),
                    **{f"solver_{name}": solver.get(name, 0)
                       for name in SOLVER_STAT_COLUMNS},
                )
    result.notes["ttft_slo_s"] = ttft_slo_s
    result.notes["tpot_slo_s"] = tpot_slo_s
    result.notes["exact_schedules"] = exact_schedules
    result.notes["exact_stepping"] = exact_stepping
    result.notes["record_mode"] = record_mode
    result.notes["cluster"] = tuple(layouts)
    result.notes["routing"] = policies
    result.notes["interconnect"] = link.name
    result.notes["seed"] = seed
    _note_workload(result, workload, slo_classes, preemption,
                   input_len, output_len,
                   prefill_chunk_tokens=prefill_chunk_tokens,
                   closed_loop=closed_loop, faults=faults)
    return result
