"""ALISA reproduction: sparsity-aware KV caching for LLM inference.

The package is organised as:

* :mod:`repro.core` — the paper's contribution: Sparse Window Attention,
  the three-phase dynamic scheduler, the offline scheduler optimizer, KV
  compression, and the composed ALISA engine.
* :mod:`repro.model` — a NumPy transformer substrate (functional inference).
* :mod:`repro.attention` — dense/local/strided/H2O/SWA attention policies.
* :mod:`repro.kvcache` — KV-cache data structures.
* :mod:`repro.systems` — memory devices, PCIe link, analytic cost model.
* :mod:`repro.hardware` — hardware presets (V100, H100, Xeon host).
* :mod:`repro.baselines` — FlexGen/vLLM/Accelerate/DeepSpeed-style systems.
* :mod:`repro.workloads` — synthetic corpora and task generators.
* :mod:`repro.cluster` — data-parallel replica groups and request routing.
* :mod:`repro.evaluation` — perplexity, accuracy, sparsity, throughput.
* :mod:`repro.experiments` — one driver per paper figure/table.
"""

from repro._common import ConfigurationError, OutOfMemoryError, ReproError

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "OutOfMemoryError",
    "ReproError",
    "__version__",
]
