"""Offline scheduler optimization (Section V-A, Equations 3–6).

ALISA picks the offload ratio ``alpha``, recompute ratio ``beta``, and phase
switch steps ``p1``/``p2`` *offline*, before inference starts.  The paper
splits the problem into a data-transfer part (solved from hardware/software
constraints: memory capacity, PCIe bandwidth, KV tensor sizes) and a
computation part (solved by profiling compute and recompute times), then
applies a greedy search over the combined objective.

This module reproduces that flow:

* :class:`CostParameters` collects the Table II notation for one run;
* :func:`gpu_kv_budget_tokens` solves the capacity constraint, yielding
  ``p1`` (the step at which KV tensors stop fitting in GPU memory);
* :class:`ProfileTable` plays the role of the paper's offline profiling,
  caching compute/recompute times from the analytic cost model;
* :class:`SchedulerOptimizer` performs the grid/greedy search over
  ``alpha``, ``beta``, and ``p2`` and returns the best
  :class:`~repro.core.scheduler.SchedulerConfig`.

Two search entry points are provided.  :meth:`SchedulerOptimizer.solve` is
the paper's full grid search, evaluating every candidate by rolling a
:class:`~repro.core.scheduler.DynamicScheduler` through the whole decode —
this is the byte-exact reference path.  :meth:`SchedulerOptimizer.solve_incremental`
prices candidates through a vectorized replica of the same objective
(:class:`_FastObjective`) and, when given a warm-start seed from a
previously solved nearby shape, refines it by coordinate descent over the
candidate grids instead of sweeping the full grid; the serving hot path
uses it through :mod:`repro.core.schedule_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, dtype_bytes, validate_fraction
from repro.core.scheduler import DynamicScheduler, SchedulerConfig, StepPlan
from repro.core.swa import SWAConfig
from repro.systems.cost import LLMCostModel
from repro.workloads.descriptors import Workload


@dataclass(frozen=True)
class CostParameters:
    """The notation of Table II, bundled for one run."""

    hidden_size: int          # h
    num_layers: int           # l
    batch_size: int           # b
    input_len: int            # s
    output_len: int           # n
    caching_ratio: float      # r
    pcie_bandwidth: float     # B
    kv_dtype: str = "fp16"

    @property
    def kv_bytes_per_token(self) -> float:
        """The paper's ``4 * b * l * h`` bytes per token (FP16), generalized
        to other KV dtypes."""
        return (2.0 * dtype_bytes(self.kv_dtype) * self.batch_size
                * self.num_layers * self.hidden_size)

    def transfer_time(self, moved_tokens: float) -> float:
        """Equation 3: time to move ``moved_tokens`` tokens over PCIe."""
        if moved_tokens < 0:
            raise ConfigurationError("moved_tokens must be non-negative")
        return moved_tokens * self.kv_bytes_per_token / self.pcie_bandwidth


def gpu_kv_budget_tokens(cost_model: LLMCostModel, workload: Workload,
                         kv_dtype: str = "fp16",
                         weights_on_gpu: bool = True,
                         reserve_fraction: float = 0.05) -> int:
    """How many KV tokens fit in node GPU memory for this model and workload.

    The byte accounting (multi-GPU aggregation, weights charged once,
    activations per GPU) is
    :meth:`~repro.systems.cost.LLMCostModel.kv_budget_bytes` — the same
    source the serving engine's admission budget uses, so the scheduler's
    capacity constraint can never diverge from admission control.
    """
    validate_fraction(reserve_fraction=reserve_fraction)
    budget_bytes = max(0.0, cost_model.kv_budget_bytes(
        workload.batch_size, workload.input_len,
        weights_on_gpu=weights_on_gpu, reserve_fraction=reserve_fraction))
    per_token = cost_model.kv_bytes_per_token(workload.batch_size, kv_dtype)
    if per_token <= 0:
        raise ConfigurationError("per-token KV size must be positive")
    return max(1, int(budget_bytes // per_token))


def phase1_end_step(budget_tokens: int, workload: Workload) -> int:
    """First decoding step at which KV tensors no longer fit in GPU memory.

    This is ``p1``: solved purely from the capacity constraint, as the paper
    does for the data-transfer sub-problem.
    """
    first_overflow = budget_tokens - workload.input_len
    return int(np.clip(first_overflow, 0, workload.output_len))


class ProfileTable:
    """Cached compute/recompute/transfer costs (the paper's offline profiling).

    The caches may be shared across :class:`ProfileTable` instances of the
    same batch size and SWA configuration (sequence-length cost entries are
    shape-independent otherwise), which lets repeated serving re-solves skip
    re-profiling overlapping sequence ranges.
    """

    def __init__(self, cost_model: LLMCostModel, workload: Workload,
                 swa: SWAConfig, kv_dtype: str = "fp16",
                 shared_caches: tuple[dict, dict] | None = None) -> None:
        self.cost_model = cost_model
        self.workload = workload
        self.swa = swa
        self.kv_dtype = kv_dtype
        if shared_caches is not None:
            self._compute_cache, self._recompute_cache = shared_caches
        else:
            self._compute_cache = {}
            self._recompute_cache = {}

    def compute_time(self, sequence_length: int) -> float:
        """GPU compute time of one decoding step at the given sequence length."""
        if sequence_length not in self._compute_cache:
            num_local, num_global = self.swa.split_budget(sequence_length)
            self._compute_cache[sequence_length] = self.cost_model.decode_step_time(
                self.workload.batch_size,
                kv_len=sequence_length,
                kept_kv=num_local + num_global,
                local_window=num_local,
            )
        return self._compute_cache[sequence_length]

    def ensure_compute_range(self, seq_lens: np.ndarray) -> None:
        """Bulk-fill the compute cache for ``seq_lens`` in one array pass.

        Prices every uncached sequence length through the cost model's
        vectorized step formula — bit-identical to :meth:`compute_time`'s
        scalar path, so callers see the same values either way, just
        without a Python pricing call per sequence length.
        """
        missing = [int(q) for q in np.unique(np.asarray(seq_lens))
                   if int(q) not in self._compute_cache]
        if not missing:
            return
        seq = np.asarray(missing, dtype=np.int64)
        num_local, num_global = self.swa.split_budget_batch(seq)
        times = self.cost_model.decode_step_time_batch(
            self.workload.batch_size, seq,
            kept_kv=num_local + num_global, local_windows=num_local)
        for sequence_length, time in zip(missing, times):
            self._compute_cache[sequence_length] = float(time)

    def recompute_time(self, num_tokens: float) -> float:
        """Time to recompute the KV projections of ``num_tokens`` tokens."""
        key = int(round(num_tokens))
        if key not in self._recompute_cache:
            self._recompute_cache[key] = self.cost_model.recompute_time(
                self.workload.batch_size, key
            )
        return self._recompute_cache[key]

    def transfer_time(self, moved_tokens: float) -> float:
        per_token = self.cost_model.kv_bytes_per_token(
            self.workload.batch_size, self.kv_dtype
        )
        return self.cost_model.pcie_time(moved_tokens * per_token)


@dataclass(frozen=True)
class ScheduleSolution:
    """Output of the offline search."""

    config: SchedulerConfig
    estimated_time: float
    gpu_budget_tokens: int
    evaluated_candidates: int


class _FastObjective:
    """Vectorized replica of the Equation 5 objective for one solve.

    Mirrors the token-placement recurrence of
    :meth:`~repro.core.scheduler.DynamicScheduler.plan_step` with NumPy
    arrays instead of per-step :class:`StepPlan` objects.  Phases I/II admit
    a closed form (nothing is ever deleted before ``p2``, so the CPU target
    depends only on the sequence length); only the Phase III deletion state
    is carried through a scalar loop over the ``p2..n`` suffix.  Candidate
    costs match :meth:`SchedulerOptimizer.evaluate` up to floating-point
    summation order (the placement integers are identical).
    """

    def __init__(self, cost_model: LLMCostModel, workload: Workload,
                 swa: SWAConfig, profile: ProfileTable, kv_dtype: str,
                 gpu_budget: int, phase2_step: int) -> None:
        self.n = workload.output_len
        self.budget = gpu_budget
        s = workload.input_len
        steps = np.arange(self.n)
        seq = s + steps + 1

        # Vectorized SWAConfig.split_budget over every decode step.
        total = np.floor(seq * swa.caching_ratio + 0.5).astype(np.int64)
        total = np.minimum(np.maximum(2, total), seq)
        num_local = np.floor(total * swa.local_fraction + 0.5).astype(np.int64)
        num_local = np.minimum(np.maximum(1, num_local), seq)
        num_global = np.maximum(0, np.minimum(total - num_local,
                                              seq - num_local))
        bump = (num_global == 0) & (seq > num_local) & (total > num_local)
        num_global = np.where(bump, 1, num_global)

        self.num_global = num_global.astype(np.float64)
        # Steps running in Phase II or III (Phase I moves nothing).
        self.off_phase = (steps >= phase2_step) | (seq > gpu_budget)
        # d == 0 closed forms, valid everywhere before the first deletion.
        self.non_local0 = np.maximum(0, seq - num_local)
        self.min_cpu0 = np.maximum(0, seq - gpu_budget)
        self.non_local_total = np.maximum(1, seq - num_local)
        self.prefill_cpu = max(0, s - gpu_budget)

        # Per-step GPU compute time is candidate-independent: precompute the
        # whole-run total once (through the shared ProfileTable cache,
        # bulk-filled array-wise).
        profile.ensure_compute_range(seq)
        self.compute_total = float(
            sum(profile.compute_time(int(q)) for q in seq)
        )
        per_token = cost_model.kv_bytes_per_token(workload.batch_size,
                                                  kv_dtype)
        self._transfer_per_token = \
            per_token / cost_model.effective_pcie_bandwidth
        self._cost_model = cost_model
        self._batch_size = workload.batch_size
        # Python-list views for the Phase III scalar recurrence.
        self._seq_list = seq.tolist()
        self._num_local_list = num_local.tolist()

    def _cpu_deleted(self, alpha: float, beta: float,
                     phase3_step: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-step CPU-resident and deleted token counts for a candidate."""
        target = np.floor(alpha * self.non_local0 + 0.5).astype(np.int64)
        target = np.minimum(np.maximum(target, self.min_cpu0),
                            self.non_local0)
        cpu = np.where(self.off_phase, target, 0)
        deleted = np.zeros(self.n, dtype=np.int64)
        if beta > 0.0 and phase3_step < self.n:
            seq_list, local_list = self._seq_list, self._num_local_list
            budget = self.budget
            d = 0
            for j in range(phase3_step, self.n):
                non_local = seq_list[j] - d - local_list[j]
                if non_local < 0:
                    non_local = 0
                tc = int(alpha * non_local + 0.5)
                min_cpu = seq_list[j] - d - budget
                if tc < min_cpu:
                    tc = min_cpu
                if tc > non_local:
                    tc = non_local
                target_deleted = int(beta * (tc + d) + 0.5)
                newly = target_deleted - d
                if newly < 0:
                    newly = 0
                if newly > tc:
                    newly = tc
                d += newly
                cpu[j] = tc - newly
                deleted[j] = d
        return cpu, deleted

    def cost(self, alpha: float, beta: float, phase3_step: int) -> float:
        """Objective of Equation 5 for one ``(alpha, beta, p2)`` candidate."""
        cpu, deleted = self._cpu_deleted(alpha, beta, phase3_step)
        offload = np.maximum(0, np.diff(cpu, prepend=self.prefill_cpu))
        load = self.num_global * (cpu / self.non_local_total)
        moved = float(load.sum() + offload.sum())
        transfer = moved * self._transfer_per_token
        recompute = 0.0
        if deleted[-1] > 0:
            recompute_tokens = np.rint(
                self.num_global * (deleted / self.non_local_total)
            )
            recompute = float(self._cost_model.recompute_time_batch(
                self._batch_size, recompute_tokens
            ).sum())
        return self.compute_total + transfer + recompute


class SchedulerOptimizer:
    """Greedy/grid search over ``alpha``, ``beta``, ``p2`` (Equation 5)."""

    def __init__(self, cost_model: LLMCostModel, workload: Workload,
                 swa: SWAConfig, kv_dtype: str = "fp16",
                 alpha_grid: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9, 1.0),
                 beta_grid: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
                 num_p2_candidates: int = 5,
                 profile_caches: tuple[dict, dict] | None = None) -> None:
        self.cost_model = cost_model
        self.workload = workload
        self.swa = swa
        self.kv_dtype = kv_dtype
        self.alpha_grid = alpha_grid
        self.beta_grid = beta_grid
        self.num_p2_candidates = num_p2_candidates
        self.profile = ProfileTable(cost_model, workload, swa, kv_dtype,
                                    shared_caches=profile_caches)

    # ------------------------------------------------------------------ #
    def estimate_plan_time(self, plans: list[StepPlan]) -> float:
        """Objective of Equation 5 evaluated on a sequence of step plans."""
        total = 0.0
        for plan in plans:
            if plan.step < 0:
                continue  # prefill handled separately by the simulator
            total += self.profile.compute_time(plan.sequence_length)
            total += self.profile.transfer_time(plan.load_tokens + plan.offload_tokens)
            total += self.profile.recompute_time(plan.recompute_tokens)
        return total

    def evaluate(self, config: SchedulerConfig, gpu_budget: int) -> float:
        scheduler = DynamicScheduler(config, self.swa, gpu_budget,
                                     self.workload.input_len)
        plans = scheduler.plan_run(self.workload.output_len)
        return self.estimate_plan_time(plans)

    def solve(self, weights_on_gpu: bool = True) -> ScheduleSolution:
        """Run the search and return the best scheduler configuration."""
        gpu_budget = gpu_kv_budget_tokens(self.cost_model, self.workload,
                                          self.kv_dtype, weights_on_gpu)
        self.profile.ensure_compute_range(
            self.workload.input_len + np.arange(self.workload.output_len) + 1)
        p1 = phase1_end_step(gpu_budget, self.workload)
        p2_candidates = self._p2_candidates(p1)

        best_config: SchedulerConfig | None = None
        best_time = float("inf")
        evaluated = 0
        for alpha in self.alpha_grid:
            for beta in self.beta_grid:
                for p2 in p2_candidates:
                    if beta == 0.0 and p2 != p2_candidates[-1]:
                        continue  # beta=0 makes p2 irrelevant; skip duplicates
                    config = SchedulerConfig(
                        offload_ratio=alpha, recompute_ratio=beta,
                        phase2_step=p1, phase3_step=max(p1, p2),
                    )
                    elapsed = self.evaluate(config, gpu_budget)
                    evaluated += 1
                    if elapsed < best_time:
                        best_time = elapsed
                        best_config = config
        if best_config is None:
            raise ConfigurationError("scheduler search evaluated no candidates")
        return ScheduleSolution(config=best_config, estimated_time=best_time,
                                gpu_budget_tokens=gpu_budget,
                                evaluated_candidates=evaluated)

    # ------------------------------------------------------------------ #
    # incremental search (vectorized objective, optional warm start)
    # ------------------------------------------------------------------ #
    def _p2_candidates(self, p1: int) -> list[int]:
        return sorted({
            int(p)
            for p in np.linspace(p1, self.workload.output_len,
                                 self.num_p2_candidates)
        })

    def _make_objective(self, gpu_budget: int, p1: int) -> _FastObjective:
        return _FastObjective(self.cost_model, self.workload, self.swa,
                              self.profile, self.kv_dtype, gpu_budget, p1)

    def fast_evaluate(self, config: SchedulerConfig, gpu_budget: int) -> float:
        """Vectorized counterpart of :meth:`evaluate` (same placement math)."""
        objective = self._make_objective(gpu_budget, config.phase2_step)
        return objective.cost(config.offload_ratio, config.recompute_ratio,
                              config.phase3_step)

    def solve_incremental(self, weights_on_gpu: bool = True,
                          seed: tuple[float, float, float] | None = None,
                          max_rounds: int = 3,
                          gpu_budget: int | None = None) -> ScheduleSolution:
        """Search with the vectorized objective, optionally warm-started.

        Without a ``seed`` this sweeps the same candidate grid as
        :meth:`solve` (differing from it only by floating-point summation
        order in the objective).  With a ``seed`` —
        ``(alpha, beta, phase3_fraction)`` from a previously solved nearby
        shape — it snaps the seed onto the candidate grids and refines by
        coordinate descent, evaluating one axis at a time until a sweep
        stops improving, which visits a small neighborhood instead of the
        full grid.
        """
        if gpu_budget is None:
            gpu_budget = gpu_kv_budget_tokens(self.cost_model, self.workload,
                                              self.kv_dtype, weights_on_gpu)
        p1 = phase1_end_step(gpu_budget, self.workload)
        p2_candidates = self._p2_candidates(p1)
        objective = self._make_objective(gpu_budget, p1)

        costs: dict[tuple[float, float, int], float] = {}

        def cost(alpha: float, beta: float, p2: int) -> float:
            # beta == 0 makes p2 irrelevant; collapse to one representative.
            key = (alpha, beta, p2_candidates[-1] if beta == 0.0 else p2)
            if key not in costs:
                costs[key] = objective.cost(alpha, beta, key[2])
            return costs[key]

        if seed is None:
            best: tuple[float, float, int] | None = None
            best_time = float("inf")
            for alpha in self.alpha_grid:
                for beta in self.beta_grid:
                    for p2 in p2_candidates:
                        if beta == 0.0 and p2 != p2_candidates[-1]:
                            continue
                        elapsed = cost(alpha, beta, p2)
                        if elapsed < best_time:
                            best_time = elapsed
                            best = (alpha, beta, p2)
        else:
            alpha, beta, fraction = seed
            alpha = min(self.alpha_grid, key=lambda g: abs(g - alpha))
            beta = min(self.beta_grid, key=lambda g: abs(g - beta))
            p2_target = p1 + fraction * (self.workload.output_len - p1)
            p2 = min(p2_candidates, key=lambda c: abs(c - p2_target))
            best_time = cost(alpha, beta, p2)
            for _ in range(max_rounds):
                improved = False
                for candidate in self.alpha_grid:
                    elapsed = cost(candidate, beta, p2)
                    if elapsed < best_time:
                        best_time, alpha, improved = elapsed, candidate, True
                for candidate in self.beta_grid:
                    elapsed = cost(alpha, candidate, p2)
                    if elapsed < best_time:
                        best_time, beta, improved = elapsed, candidate, True
                for candidate in p2_candidates:
                    elapsed = cost(alpha, beta, candidate)
                    if elapsed < best_time:
                        best_time, p2, improved = elapsed, candidate, True
                if not improved:
                    break
            best = (alpha, beta, p2)

        if best is None:
            raise ConfigurationError("scheduler search evaluated no candidates")
        alpha, beta, p2 = best
        config = SchedulerConfig(offload_ratio=alpha, recompute_ratio=beta,
                                 phase2_step=p1, phase3_step=max(p1, p2))
        return ScheduleSolution(config=config, estimated_time=best_time,
                                gpu_budget_tokens=gpu_budget,
                                evaluated_candidates=len(costs))
