"""Offline scheduler optimization (Section V-A, Equations 3–6).

ALISA picks the offload ratio ``alpha``, recompute ratio ``beta``, and phase
switch steps ``p1``/``p2`` *offline*, before inference starts.  The paper
splits the problem into a data-transfer part (solved from hardware/software
constraints: memory capacity, PCIe bandwidth, KV tensor sizes) and a
computation part (solved by profiling compute and recompute times), then
applies a greedy search over the combined objective.

This module reproduces that flow:

* :class:`CostParameters` collects the Table II notation for one run;
* :func:`gpu_kv_budget_tokens` solves the capacity constraint, yielding
  ``p1`` (the step at which KV tensors stop fitting in GPU memory);
* :class:`ProfileTable` plays the role of the paper's offline profiling,
  caching compute/recompute times from the analytic cost model;
* :class:`SchedulerOptimizer` performs the grid/greedy search over
  ``alpha``, ``beta``, and ``p2`` and returns the best
  :class:`~repro.core.scheduler.SchedulerConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._common import ConfigurationError, dtype_bytes, validate_fraction
from repro.core.scheduler import DynamicScheduler, SchedulerConfig, StepPlan
from repro.core.swa import SWAConfig
from repro.systems.cost import LLMCostModel
from repro.workloads.descriptors import Workload


@dataclass(frozen=True)
class CostParameters:
    """The notation of Table II, bundled for one run."""

    hidden_size: int          # h
    num_layers: int           # l
    batch_size: int           # b
    input_len: int            # s
    output_len: int           # n
    caching_ratio: float      # r
    pcie_bandwidth: float     # B
    kv_dtype: str = "fp16"

    @property
    def kv_bytes_per_token(self) -> float:
        """The paper's ``4 * b * l * h`` bytes per token (FP16), generalized
        to other KV dtypes."""
        return (2.0 * dtype_bytes(self.kv_dtype) * self.batch_size
                * self.num_layers * self.hidden_size)

    def transfer_time(self, moved_tokens: float) -> float:
        """Equation 3: time to move ``moved_tokens`` tokens over PCIe."""
        if moved_tokens < 0:
            raise ConfigurationError("moved_tokens must be non-negative")
        return moved_tokens * self.kv_bytes_per_token / self.pcie_bandwidth


@dataclass(frozen=True)
class MemoryBudget:
    """GPU memory left for KV tensors after weights and activations."""

    gpu_capacity_bytes: float
    weight_bytes: float
    activation_bytes: float
    reserve_fraction: float = 0.05

    def __post_init__(self) -> None:
        validate_fraction(reserve_fraction=self.reserve_fraction)

    @property
    def kv_budget_bytes(self) -> float:
        budget = (self.gpu_capacity_bytes * (1.0 - self.reserve_fraction)
                  - self.weight_bytes - self.activation_bytes)
        return max(0.0, budget)


def gpu_kv_budget_tokens(cost_model: LLMCostModel, workload: Workload,
                         kv_dtype: str = "fp16",
                         weights_on_gpu: bool = True,
                         reserve_fraction: float = 0.05) -> int:
    """How many KV tokens fit in GPU memory for this model and workload."""
    budget = MemoryBudget(
        gpu_capacity_bytes=cost_model.hardware.gpu.memory_bytes,
        weight_bytes=cost_model.weight_bytes() if weights_on_gpu else 0.0,
        activation_bytes=cost_model.activation_bytes(workload.batch_size,
                                                     workload.input_len),
        reserve_fraction=reserve_fraction,
    )
    per_token = cost_model.kv_bytes_per_token(workload.batch_size, kv_dtype)
    if per_token <= 0:
        raise ConfigurationError("per-token KV size must be positive")
    return max(1, int(budget.kv_budget_bytes // per_token))


def phase1_end_step(budget_tokens: int, workload: Workload) -> int:
    """First decoding step at which KV tensors no longer fit in GPU memory.

    This is ``p1``: solved purely from the capacity constraint, as the paper
    does for the data-transfer sub-problem.
    """
    first_overflow = budget_tokens - workload.input_len
    return int(np.clip(first_overflow, 0, workload.output_len))


class ProfileTable:
    """Cached compute/recompute/transfer costs (the paper's offline profiling)."""

    def __init__(self, cost_model: LLMCostModel, workload: Workload,
                 swa: SWAConfig, kv_dtype: str = "fp16") -> None:
        self.cost_model = cost_model
        self.workload = workload
        self.swa = swa
        self.kv_dtype = kv_dtype
        self._compute_cache: dict[int, float] = {}
        self._recompute_cache: dict[int, float] = {}

    def compute_time(self, sequence_length: int) -> float:
        """GPU compute time of one decoding step at the given sequence length."""
        if sequence_length not in self._compute_cache:
            num_local, num_global = self.swa.split_budget(sequence_length)
            self._compute_cache[sequence_length] = self.cost_model.decode_step_time(
                self.workload.batch_size,
                kv_len=sequence_length,
                kept_kv=num_local + num_global,
                local_window=num_local,
            )
        return self._compute_cache[sequence_length]

    def recompute_time(self, num_tokens: float) -> float:
        """Time to recompute the KV projections of ``num_tokens`` tokens."""
        key = int(round(num_tokens))
        if key not in self._recompute_cache:
            self._recompute_cache[key] = self.cost_model.recompute_time(
                self.workload.batch_size, key
            )
        return self._recompute_cache[key]

    def transfer_time(self, moved_tokens: float) -> float:
        per_token = self.cost_model.kv_bytes_per_token(
            self.workload.batch_size, self.kv_dtype
        )
        return self.cost_model.pcie_time(moved_tokens * per_token)


@dataclass(frozen=True)
class ScheduleSolution:
    """Output of the offline search."""

    config: SchedulerConfig
    estimated_time: float
    gpu_budget_tokens: int
    evaluated_candidates: int


class SchedulerOptimizer:
    """Greedy/grid search over ``alpha``, ``beta``, ``p2`` (Equation 5)."""

    def __init__(self, cost_model: LLMCostModel, workload: Workload,
                 swa: SWAConfig, kv_dtype: str = "fp16",
                 alpha_grid: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9, 1.0),
                 beta_grid: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
                 num_p2_candidates: int = 5) -> None:
        self.cost_model = cost_model
        self.workload = workload
        self.swa = swa
        self.kv_dtype = kv_dtype
        self.alpha_grid = alpha_grid
        self.beta_grid = beta_grid
        self.num_p2_candidates = num_p2_candidates
        self.profile = ProfileTable(cost_model, workload, swa, kv_dtype)

    # ------------------------------------------------------------------ #
    def estimate_plan_time(self, plans: list[StepPlan]) -> float:
        """Objective of Equation 5 evaluated on a sequence of step plans."""
        total = 0.0
        for plan in plans:
            if plan.step < 0:
                continue  # prefill handled separately by the simulator
            total += self.profile.compute_time(plan.sequence_length)
            total += self.profile.transfer_time(plan.load_tokens + plan.offload_tokens)
            total += self.profile.recompute_time(plan.recompute_tokens)
        return total

    def evaluate(self, config: SchedulerConfig, gpu_budget: int) -> float:
        scheduler = DynamicScheduler(config, self.swa, gpu_budget,
                                     self.workload.input_len)
        plans = scheduler.plan_run(self.workload.output_len)
        return self.estimate_plan_time(plans)

    def solve(self, weights_on_gpu: bool = True) -> ScheduleSolution:
        """Run the search and return the best scheduler configuration."""
        gpu_budget = gpu_kv_budget_tokens(self.cost_model, self.workload,
                                          self.kv_dtype, weights_on_gpu)
        p1 = phase1_end_step(gpu_budget, self.workload)

        p2_candidates = sorted({
            int(p)
            for p in np.linspace(p1, self.workload.output_len,
                                 self.num_p2_candidates)
        })

        best_config: SchedulerConfig | None = None
        best_time = float("inf")
        evaluated = 0
        for alpha in self.alpha_grid:
            for beta in self.beta_grid:
                for p2 in p2_candidates:
                    if beta == 0.0 and p2 != p2_candidates[-1]:
                        continue  # beta=0 makes p2 irrelevant; skip duplicates
                    config = SchedulerConfig(
                        offload_ratio=alpha, recompute_ratio=beta,
                        phase2_step=p1, phase3_step=max(p1, p2),
                    )
                    elapsed = self.evaluate(config, gpu_budget)
                    evaluated += 1
                    if elapsed < best_time:
                        best_time = elapsed
                        best_config = config
        if best_config is None:
            raise ConfigurationError("scheduler search evaluated no candidates")
        return ScheduleSolution(config=best_config, estimated_time=best_time,
                                gpu_budget_tokens=gpu_budget,
                                evaluated_candidates=evaluated)
