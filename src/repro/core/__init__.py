"""ALISA core: SWA, dynamic scheduling, offline optimization, compression."""

from repro.core.schedule_cache import (
    FULL_RESOLVE_POLICY,
    CachedSchedule,
    ScheduleCache,
    SchedulePolicy,
)
from repro.core.swa import (
    SWAConfig,
    SWASelection,
    local_attention_window,
    select_sparse_tokens,
    sparse_window_attention,
)

__all__ = [
    "FULL_RESOLVE_POLICY",
    "CachedSchedule",
    "ScheduleCache",
    "SchedulePolicy",
    "SWAConfig",
    "SWASelection",
    "local_attention_window",
    "select_sparse_tokens",
    "sparse_window_attention",
]
