"""ALISA core: SWA, dynamic scheduling, offline optimization, compression."""

from repro.core.swa import (
    SWAConfig,
    SWASelection,
    local_attention_window,
    select_sparse_tokens,
    sparse_window_attention,
)

__all__ = [
    "SWAConfig",
    "SWASelection",
    "local_attention_window",
    "select_sparse_tokens",
    "sparse_window_attention",
]
