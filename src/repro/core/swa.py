"""Sparse Window Attention (SWA) — Algorithm 1 of the ALISA paper.

SWA keeps, at every decoding step, a mixture of

* **locally static** tokens: the ``k`` most recent positions, preserving the
  sequential semantics of language, and
* **globally dynamic** tokens: the ``k`` positions with the highest *local
  attention sum*, i.e. the attention weight they received from the most
  recent ``k`` queries, capturing semantically important distant tokens.

With a caching ratio ``r`` and current sequence length ``n`` the paper sets
``k = ⌊n·r/2⌉`` so the two groups are evenly split.

Two entry points are provided:

* :func:`select_sparse_tokens` — the token-selection rule alone, used by the
  attention-policy adapter and by the system-level scheduler;
* :func:`sparse_window_attention` — the full Algorithm 1, computing the
  attention output over the gathered sparse KV tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import (
    ConfigurationError,
    round_half_up,
    softmax,
    validate_fraction,
)


@dataclass(frozen=True)
class SWAConfig:
    """Configuration of the Sparse Window Attention algorithm.

    ``caching_ratio`` is the paper's ``r``; ``local_fraction`` controls the
    split between locally static and globally dynamic tokens (0.5 reproduces
    the paper's even split and is the default; other values are exposed for
    the ablation study).
    """

    caching_ratio: float
    local_fraction: float = 0.5

    def __post_init__(self) -> None:
        validate_fraction(caching_ratio=self.caching_ratio,
                          local_fraction=self.local_fraction)

    @property
    def kv_sparsity(self) -> float:
        """KV sparsity implied by the caching ratio (``1 - r``)."""
        return 1.0 - self.caching_ratio

    @classmethod
    def from_sparsity(cls, kv_sparsity: float,
                      local_fraction: float = 0.5) -> "SWAConfig":
        validate_fraction(kv_sparsity=kv_sparsity)
        return cls(caching_ratio=1.0 - kv_sparsity, local_fraction=local_fraction)

    def split_budget(self, seq_len: int) -> tuple[int, int]:
        """Return ``(num_local, num_global)`` kept tokens for ``seq_len``.

        Both counts are at least one token so attention always has something
        to attend to, and their total never exceeds ``seq_len``.
        """
        if seq_len <= 0:
            raise ConfigurationError("seq_len must be positive")
        total = max(2, round_half_up(seq_len * self.caching_ratio))
        total = min(total, seq_len)
        num_local = max(1, round_half_up(total * self.local_fraction))
        num_local = min(num_local, seq_len)
        num_global = max(0, min(total - num_local, seq_len - num_local))
        if num_global == 0 and seq_len > num_local:
            num_global = 1 if total > num_local else 0
        return num_local, num_global

    def split_budget_batch(self, seq_lens: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`split_budget` over an array of sequence lengths.

        Applies the identical rounding (``⌊x + 0.5⌋``) and clamping rules
        elementwise, so ``split_budget_batch(seq)[...][j]`` always equals
        ``split_budget(seq[j])`` — relied on by the epoch-granular pricing
        fast path of the system simulators.
        """
        seq = np.asarray(seq_lens, dtype=np.int64)
        if np.any(seq <= 0):
            raise ConfigurationError("seq_len must be positive")
        total = np.maximum(
            2, np.floor(seq * self.caching_ratio + 0.5).astype(np.int64))
        total = np.minimum(total, seq)
        num_local = np.maximum(
            1, np.floor(total * self.local_fraction + 0.5).astype(np.int64))
        num_local = np.minimum(num_local, seq)
        num_global = np.maximum(
            0, np.minimum(total - num_local, seq - num_local))
        bump = (num_global == 0) & (seq > num_local) & (total > num_local)
        num_global = np.where(bump, 1, num_global)
        return num_local, num_global


@dataclass(frozen=True)
class SWASelection:
    """Result of the SWA token-selection rule."""

    local_indices: np.ndarray
    global_indices: np.ndarray

    @property
    def indices(self) -> np.ndarray:
        """All kept token positions, sorted and de-duplicated."""
        return np.unique(np.concatenate([self.local_indices, self.global_indices]))

    @property
    def num_kept(self) -> int:
        return int(self.indices.size)


def select_sparse_tokens(local_attention_sum: np.ndarray, seq_len: int,
                         config: SWAConfig) -> SWASelection:
    """Select the locally static and globally dynamic token positions.

    Parameters
    ----------
    local_attention_sum:
        Per-position attention weight summed over the last ``k`` queries
        (Algorithm 1, line 2).  Positions beyond ``local_attention_sum.size``
        are treated as zero.
    seq_len:
        Current sequence length ``n`` (number of cached tokens).
    config:
        SWA configuration (caching ratio and local/global split).
    """
    if seq_len <= 0:
        raise ConfigurationError("seq_len must be positive")
    num_local, num_global = config.split_budget(seq_len)

    local_indices = np.arange(seq_len - num_local, seq_len)

    candidate_scores = np.zeros(seq_len)
    n = min(seq_len, local_attention_sum.size)
    candidate_scores[:n] = local_attention_sum[:n]
    # Globally dynamic tokens are drawn from outside the local window so the
    # two groups are disjoint (matching the illustration in Figure 6).
    candidate_scores[seq_len - num_local:] = -np.inf

    num_candidates = seq_len - num_local
    num_global = min(num_global, num_candidates)
    if num_global > 0:
        top = np.argpartition(candidate_scores, -num_global)[-num_global:]
        global_indices = np.sort(top)
    else:
        global_indices = np.empty(0, dtype=int)
    return SWASelection(local_indices=local_indices,
                        global_indices=global_indices.astype(int))


def local_attention_window(seq_len: int, config: SWAConfig) -> int:
    """Number of recent query rows used to compute the local attention sum.

    The paper uses the same ``k`` as the locally static window
    (Algorithm 1 computes ``S`` from rows ``n - k .. n - 1``).
    """
    num_local, _ = config.split_budget(seq_len)
    return num_local


def sparse_window_attention(previous_weights: np.ndarray, query: np.ndarray,
                            keys: np.ndarray, values: np.ndarray,
                            config: SWAConfig) -> tuple[np.ndarray, np.ndarray, SWASelection]:
    """Algorithm 1: compute one decoding step of Sparse Window Attention.

    Parameters
    ----------
    previous_weights:
        Attention weight rows of preceding steps, shape ``(steps, n)`` where
        ``n`` is the current sequence length.  Only the last ``k`` rows are
        used (the local attention window).
    query:
        Query vector(s) of the current step, shape ``(..., d)``.
    keys, values:
        Cached key/value tensors, shape ``(n, d)`` (single head) — the
        multi-head case is handled by the model layer, which calls this per
        head or uses the policy adapter.
    config:
        SWA configuration.

    Returns
    -------
    attention_scores:
        ``(..., d)`` attention output computed over the sparse KV tensors.
    attention_weights:
        ``(..., m)`` attention weights over the kept tokens.
    selection:
        The :class:`SWASelection` describing which tokens were kept.
    """
    if keys.ndim != 2 or values.ndim != 2:
        raise ConfigurationError("keys/values must be 2-D (seq_len, head_dim)")
    seq_len, head_dim = keys.shape
    if values.shape != (seq_len, head_dim):
        raise ConfigurationError("keys and values must share their shape")

    window = local_attention_window(seq_len, config)
    if previous_weights.size == 0:
        local_sum = np.zeros(seq_len)
    else:
        if previous_weights.ndim != 2:
            raise ConfigurationError("previous_weights must be 2-D (steps, n)")
        recent = previous_weights[-window:]
        local_sum = np.zeros(seq_len)
        width = min(seq_len, recent.shape[1])
        local_sum[:width] = recent[:, :width].sum(axis=0)

    selection = select_sparse_tokens(local_sum, seq_len, config)
    kept = selection.indices
    sparse_keys = keys[kept]
    sparse_values = values[kept]

    logits = query @ sparse_keys.T / np.sqrt(head_dim)
    weights = softmax(logits, axis=-1)
    scores = weights @ sparse_values
    return scores, weights, selection
