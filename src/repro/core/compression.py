"""KV compression via fine-grained channel-wise quantization (Section V-B).

ALISA quantizes KV tensors to INT8 on their way to memory and de-quantizes
them back to FP16 for computation, using the affine scheme of Equation 7::

    x_quant = round(x / lambda + z),      x = lambda * (x_quant - z)

with ``lambda = (max - min) / (2^b - 1)`` computed per channel (the last
tensor dimension), which the paper adopts for inference robustness [9].

The module provides both the numerical transform (used by the functional
accuracy experiments, Figure 8's "SWA + Compression" series) and the byte
accounting (used by the system simulator to shrink PCIe traffic and CPU/GPU
footprints).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, validate_positive


@dataclass(frozen=True)
class QuantizationSpec:
    """Bit-width and granularity of KV compression."""

    num_bits: int = 8
    channel_axis: int = -1

    def __post_init__(self) -> None:
        if self.num_bits not in (2, 4, 8, 16):
            raise ConfigurationError(
                f"num_bits must be one of 2, 4, 8, 16; got {self.num_bits}"
            )

    @property
    def bytes_per_element(self) -> float:
        return self.num_bits / 8.0

    @property
    def num_levels(self) -> int:
        return 2**self.num_bits

    def compression_ratio(self, source_bytes_per_element: float = 2.0) -> float:
        """How much smaller compressed KV tensors are than the source dtype."""
        validate_positive(source_bytes_per_element=source_bytes_per_element)
        return source_bytes_per_element / self.bytes_per_element


@dataclass
class QuantizedTensor:
    """A quantized tensor together with its per-channel scale and zero point."""

    codes: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    spec: QuantizationSpec
    original_shape: tuple

    def dequantize(self) -> np.ndarray:
        """Recover the floating-point tensor (Equation 7, right)."""
        return dequantize(self)

    def nbytes(self) -> float:
        """Storage footprint of the codes (metadata excluded)."""
        return self.codes.size * self.spec.bytes_per_element


def _moveaxis_to_last(x: np.ndarray, axis: int) -> np.ndarray:
    return np.moveaxis(x, axis, -1)


def quantize(x: np.ndarray, spec: QuantizationSpec | None = None) -> QuantizedTensor:
    """Channel-wise affine quantization of ``x`` (Equation 7, left).

    Channels are taken along ``spec.channel_axis``; each channel gets its own
    scale ``lambda`` and zero point ``z``.
    """
    spec = spec or QuantizationSpec()
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 0:
        raise ConfigurationError("cannot quantize a scalar")

    moved = _moveaxis_to_last(x, spec.channel_axis)
    flat = moved.reshape(-1, moved.shape[-1])

    channel_min = flat.min(axis=0)
    channel_max = flat.max(axis=0)
    span = channel_max - channel_min
    # Degenerate channels (constant value) fall back to a unit span; their
    # round-trip error is bounded by one quantization step like any other.
    span = np.where(span <= 0, 1.0, span)

    scale = span / (spec.num_levels - 1)
    zero_point = np.round(-channel_min / scale)

    codes = np.round(flat / scale + zero_point)
    codes = np.clip(codes, 0, spec.num_levels - 1)

    if spec.num_bits <= 8:
        codes = codes.astype(np.uint8)
    else:
        codes = codes.astype(np.uint16)

    return QuantizedTensor(
        codes=codes.reshape(moved.shape),
        scale=scale,
        zero_point=zero_point,
        spec=spec,
        original_shape=x.shape,
    )


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Recover the floating-point tensor and restore the channel axis."""
    moved_shape_restored = tensor.scale * (
        tensor.codes.astype(np.float64) - tensor.zero_point
    )
    original_axis = tensor.spec.channel_axis
    restored = np.moveaxis(moved_shape_restored, -1, original_axis)
    return restored.reshape(tensor.original_shape)


def quantization_error(x: np.ndarray, spec: QuantizationSpec | None = None) -> float:
    """Relative L2 error introduced by a quantize/de-quantize round trip."""
    spec = spec or QuantizationSpec()
    x = np.asarray(x, dtype=np.float64)
    restored = dequantize(quantize(x, spec))
    denom = np.linalg.norm(x)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(x - restored) / denom)


def compress_kv(keys: np.ndarray, values: np.ndarray,
                spec: QuantizationSpec | None = None
                ) -> tuple[QuantizedTensor, QuantizedTensor]:
    """Quantize a key/value tensor pair with a shared spec."""
    spec = spec or QuantizationSpec()
    return quantize(keys, spec), quantize(values, spec)


def roundtrip_kv(keys: np.ndarray, values: np.ndarray,
                 spec: QuantizationSpec | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Simulate storing KV tensors compressed: quantize then de-quantize.

    The functional accuracy experiments use this to measure the accuracy
    impact of INT8 KV compression (the ALISA series of Figure 8).
    """
    q_keys, q_values = compress_kv(keys, values, spec)
    return dequantize(q_keys), dequantize(q_values)
