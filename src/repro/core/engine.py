"""The composed ALISA system: SWA + dynamic scheduling + KV compression.

:class:`AlisaSystem` is the system-level simulator used by the throughput
and breakdown experiments (Figures 9 and 12).  It combines

* **SWA** — only ``r * n`` tokens participate in attention at each step,
  which shrinks both the compute and the KV bytes that must be resident on
  the GPU (Section IV);
* **three-phase dynamic scheduling** — token placement and recomputation
  follow :class:`~repro.core.scheduler.DynamicScheduler`, with the
  ``alpha, beta, p1, p2`` parameters chosen offline by
  :class:`~repro.core.optimizer.SchedulerOptimizer` (Section V-A);
* **KV compression** — KV tensors are stored and moved as INT8, halving
  footprint and PCIe traffic at the cost of a small (de)quantization
  overhead (Section V-B).

Ablation flags turn the last two off to reproduce Figure 12 (b)/(c):
``use_dynamic_scheduling=False`` falls back to a FlexGen-style static split
(but still with sparse attention), and ``enable_recomputation=False`` forces
``beta = 0`` so Phase III never deletes anything.

The offline search is memoized through a
:class:`~repro.core.schedule_cache.ScheduleCache`: repeated shapes reuse
their solution outright, nearby shapes share canonical solutions, and cold
solves of new shapes are warm-started from the nearest solved neighbor
(see :mod:`repro.core.schedule_cache` for the policy knobs and the
``exact=True`` escape hatch that restores the paper's full per-shape grid
search).  This is what keeps the continuous-batching serving engine — which
re-prepares the simulator every decode epoch — off the full-grid-search
hot path.

For functional (accuracy) experiments use
:class:`~repro.attention.variants.SWAAttentionPolicy` with the NumPy model
instead; this class only models time and memory.
"""

from __future__ import annotations

import numpy as np

from repro._common import ConfigurationError, validate_fraction
from repro.core.optimizer import (
    SchedulerOptimizer,
    ScheduleSolution,
    phase1_end_step,
)
from repro.core.schedule_cache import (
    CachedSchedule,
    ScheduleCache,
    SchedulePolicy,
)
from repro.core.scheduler import (
    PHASE_GPU,
    PHASE_GPU_CPU,
    DynamicScheduler,
    SchedulerConfig,
)
from repro.core.swa import SWAConfig
from repro.systems.simulator import (
    EpochPlan,
    InferenceSimulator,
    SystemStepPlan,
)
from repro.workloads.descriptors import Workload


class AlisaSystem(InferenceSimulator):
    """ALISA inference simulator for a GPU-CPU node (single- or multi-GPU).

    On a multi-GPU node pass a :class:`~repro.systems.cost.ParallelismSpec`
    (or accept the tensor-parallel default) — the cost model then prices
    sharded compute, collectives, and the aggregate host links, and the
    schedule cache namespaces its entries by the shard shape.
    """

    name = "alisa"
    # SWA's globally dynamic token set is only known once the local attention
    # sums of the current step are available, so CPU fetches cannot be fully
    # prefetched behind compute the way FlexGen's static pattern can (the
    # paper notes sparse KV tensors induce unpredictable memory accesses).
    overlap_io = False

    def __init__(self, model, hardware, kv_sparsity: float = 0.8,
                 use_dynamic_scheduling: bool = True,
                 use_compression: bool = True,
                 enable_recomputation: bool = True,
                 scheduler_config: SchedulerConfig | None = None,
                 schedule_policy: SchedulePolicy | None = None,
                 schedule_cache: ScheduleCache | None = None,
                 **kwargs) -> None:
        validate_fraction(kv_sparsity=kv_sparsity)
        if use_compression:
            kwargs.setdefault("kv_dtype", "int8")
        super().__init__(model, hardware, **kwargs)
        self.swa = SWAConfig.from_sparsity(kv_sparsity)
        self.kv_sparsity = kv_sparsity
        self.use_dynamic_scheduling = use_dynamic_scheduling
        self.use_compression = use_compression
        self.enable_recomputation = enable_recomputation
        self.schedule_policy = schedule_policy or SchedulePolicy()
        self.schedule_cache = (schedule_cache if schedule_cache is not None
                               else ScheduleCache())
        self._fixed_scheduler_config = scheduler_config
        self._scheduler: DynamicScheduler | None = None
        self._solution: ScheduleSolution | None = None
        self._static_cpu_fraction = 0.0
        # Profile caches shared across re-solves, keyed by batch size (the
        # only workload dimension the per-sequence-length costs depend on).
        self._profile_caches: dict[int, tuple[dict, dict]] = {}
        # Namespaces cache keys so one ScheduleCache can back many systems.
        # The shard shape (parallelism mode/degree/microbatching) and the
        # bandwidth/latency numbers that price a schedule are part of the
        # context — the node *name* alone is not enough, since ablation
        # helpers (with_pcie_bandwidth) and dataclasses.replace can change
        # a node's links without renaming it.
        link = self.hardware.interconnect
        self._schedule_context = (
            "alisa", self.config.name, self.hardware.name, self.kv_dtype,
            self.swa.caching_ratio, self.swa.local_fraction,
            self.weights_on_gpu, self.enable_recomputation,
            self.parallelism.mode, self.parallelism.degree,
            self.parallelism.pp_microbatches,
            self.hardware.pcie_bandwidth, self.hardware.gpu_count,
            None if link is None else (link.name, link.bandwidth,
                                       link.latency_s),
        )

    # ------------------------------------------------------------------ #
    # offline planning
    # ------------------------------------------------------------------ #
    def prepare(self, workload: Workload) -> None:
        """Run the offline scheduler optimization for this workload."""
        gpu_budget = self.gpu_kv_budget_tokens(workload)
        if not self.use_dynamic_scheduling:
            # Static ablation: FlexGen-style fixed split sized for the final
            # sequence length, with sparse attention still enabled.
            max_tokens = workload.max_seq_len
            self._static_cpu_fraction = (
                0.0 if gpu_budget >= max_tokens else 1.0 - gpu_budget / max_tokens
            )
            self._scheduler = None
            self._solution = None
            return

        if self._fixed_scheduler_config is not None:
            config = self._fixed_scheduler_config
            self._solution = None
        else:
            self._solution = self._solve_schedule(workload, gpu_budget)
            config = self._solution.config
        if not self.enable_recomputation and config.recompute_ratio > 0:
            config = SchedulerConfig(
                offload_ratio=config.offload_ratio, recompute_ratio=0.0,
                phase2_step=config.phase2_step, phase3_step=config.phase3_step,
            )
        self._scheduler = DynamicScheduler(config, self.swa, gpu_budget,
                                           workload.input_len)

    # ------------------------------------------------------------------ #
    # incremental schedule re-solve (see repro.core.schedule_cache)
    # ------------------------------------------------------------------ #
    def _make_optimizer(self, workload: Workload) -> SchedulerOptimizer:
        caches = self._profile_caches.setdefault(workload.batch_size,
                                                 ({}, {}))
        optimizer = SchedulerOptimizer(self.cost_model, workload, self.swa,
                                       kv_dtype=self.kv_dtype,
                                       profile_caches=caches)
        if not self.enable_recomputation:
            optimizer.beta_grid = (0.0,)
        return optimizer

    def _solve_schedule(self, workload: Workload,
                        gpu_budget: int) -> ScheduleSolution:
        """Serve the offline search through the incremental cache layer.

        Order of preference: exact memo hit (byte-identical to re-solving),
        canonical-bucket hit (re-derive the shared solution for this exact
        shape), warm-started coordinate-descent solve seeded from the
        nearest solved shape, cold solve.  ``SchedulePolicy(exact=True)``
        skips everything but the exact memo and runs the paper's full grid
        search per new shape.
        """
        cache, policy = self.schedule_cache, self.schedule_policy
        stats = cache.stats
        key = cache.exact_key(self._schedule_context, workload, gpu_budget)
        if policy.memoize:
            hit = cache.lookup_exact(key)
            if hit is not None:
                return hit

        optimizer = self._make_optimizer(workload)
        if policy.exact:
            solution = optimizer.solve(weights_on_gpu=self.weights_on_gpu)
            stats.full_solves += 1
            stats.candidates_evaluated += solution.evaluated_candidates
            if policy.memoize:
                cache.store_exact(key, solution)
            return solution

        canonical_key = cache.canonical_key(self._schedule_context, policy,
                                            workload)
        entry = cache.lookup_canonical(canonical_key)
        if entry is not None:
            config = entry.derive_config(workload,
                                         phase1_end_step(gpu_budget, workload))
            estimated = optimizer.fast_evaluate(config, gpu_budget)
            stats.candidates_evaluated += 1
            solution = ScheduleSolution(config=config, estimated_time=estimated,
                                        gpu_budget_tokens=gpu_budget,
                                        evaluated_candidates=1)
        else:
            seed_entry = (cache.nearest(self._schedule_context, workload)
                          if policy.warm_start else None)
            if seed_entry is not None:
                solution = optimizer.solve_incremental(
                    weights_on_gpu=self.weights_on_gpu,
                    seed=(seed_entry.offload_ratio, seed_entry.recompute_ratio,
                          seed_entry.phase3_fraction),
                    max_rounds=policy.max_refine_rounds,
                    gpu_budget=gpu_budget,
                )
                stats.warm_solves += 1
            else:
                solution = optimizer.solve_incremental(
                    weights_on_gpu=self.weights_on_gpu, gpu_budget=gpu_budget,
                )
                stats.full_solves += 1
            stats.candidates_evaluated += solution.evaluated_candidates
            cache.store_canonical(canonical_key, CachedSchedule.from_config(
                solution.config, workload, gpu_budget, solution.estimated_time,
            ))
        if policy.memoize:
            cache.store_exact(key, solution)
        return solution

    @property
    def schedule_solution(self) -> ScheduleSolution | None:
        """Result of the offline search (``None`` for the static ablation)."""
        return self._solution

    def schedule_stats(self) -> dict[str, int]:
        """Cumulative counters of the schedule cache backing this system."""
        return self.schedule_cache.stats.as_dict()

    # ------------------------------------------------------------------ #
    # plan hooks
    # ------------------------------------------------------------------ #
    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        if self.use_dynamic_scheduling:
            if self._scheduler is None:
                raise ConfigurationError("prepare() must run before planning")
            plan = self._scheduler.plan_prefill()
            return SystemStepPlan(
                phase=plan.phase,
                kv_gpu_tokens=plan.tokens_gpu,
                kv_cpu_tokens=plan.tokens_cpu,
                kept_kv=plan.kept_tokens,
                local_window=plan.kept_local,
                offload_kv_tokens=plan.offload_tokens,
                quantize_tokens=self._quantized(plan.offload_tokens),
            )
        cpu_tokens = self._static_cpu_fraction * workload.input_len
        return SystemStepPlan(
            phase=PHASE_GPU if cpu_tokens == 0 else PHASE_GPU_CPU,
            kv_gpu_tokens=workload.input_len - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            offload_kv_tokens=cpu_tokens,
            quantize_tokens=self._quantized(cpu_tokens),
        )

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        num_local, num_global = self.swa.split_budget(seq_len)
        kept = num_local + num_global

        if self.use_dynamic_scheduling:
            if self._scheduler is None:
                raise ConfigurationError("prepare() must run before planning")
            plan = self._scheduler.plan_step(step)
            moved = plan.load_tokens + plan.offload_tokens
            return SystemStepPlan(
                phase=plan.phase,
                kv_gpu_tokens=plan.tokens_gpu,
                kv_cpu_tokens=plan.tokens_cpu,
                kept_kv=plan.kept_tokens,
                local_window=plan.kept_local,
                load_kv_tokens=plan.load_tokens,
                offload_kv_tokens=plan.offload_tokens,
                recompute_tokens=plan.recompute_tokens,
                quantize_tokens=self._quantized(moved),
            )

        # Static ablation: fixed split, sparse attention, no recomputation.
        # The CPU share of the cache grows with the sequence; only the newly
        # offloaded tokens — this step's delta over the share resident after
        # the previous step (prefill left `fraction * input_len` there) —
        # cross PCIe and pay quantization.
        cpu_tokens = self._static_cpu_fraction * seq_len
        newly_offloaded = cpu_tokens - self._static_cpu_fraction * (seq_len - 1)
        non_local = max(1, seq_len - num_local)
        cpu_fraction_of_candidates = min(1.0, cpu_tokens / non_local)
        load_tokens = num_global * cpu_fraction_of_candidates
        return SystemStepPlan(
            phase=PHASE_GPU if cpu_tokens == 0 else PHASE_GPU_CPU,
            kv_gpu_tokens=seq_len - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            kept_kv=kept,
            local_window=num_local,
            load_kv_tokens=load_tokens,
            offload_kv_tokens=newly_offloaded,
            quantize_tokens=self._quantized(load_tokens + newly_offloaded),
        )

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        """Array-wise decode plans for a whole epoch (the pricing fast path).

        Vectorized equivalent of calling :meth:`plan_decode_step` once per
        step: the dynamic-scheduling path delegates to
        :meth:`~repro.core.scheduler.DynamicScheduler.plan_epoch` and the
        static ablation evaluates its closed-form split elementwise.  Does
        not consume scheduler steps, so it can be re-invoked after a fresh
        ``prepare``/``plan_prefill`` like the step loop can.
        """
        num_steps = workload.output_len
        if self.use_dynamic_scheduling:
            if self._scheduler is None:
                raise ConfigurationError("prepare() must run before planning")
            epoch = self._scheduler.plan_epoch(num_steps)
            moved = epoch.load_tokens + epoch.offload_tokens
            return EpochPlan(
                phases=epoch.phases,
                kv_gpu_tokens=epoch.tokens_gpu,
                kv_cpu_tokens=epoch.tokens_cpu,
                kept_kv=epoch.kept_tokens,
                local_windows=epoch.kept_local,
                load_kv_tokens=epoch.load_tokens,
                offload_kv_tokens=epoch.offload_tokens,
                recompute_tokens=epoch.recompute_tokens,
                quantize_tokens=moved if self.use_compression else None,
            )

        # Static ablation: fixed split, sparse attention, no recomputation
        # (the closed form of plan_decode_step, elementwise over steps).
        seq = workload.input_len + np.arange(num_steps) + 1
        num_local, num_global = self.swa.split_budget_batch(seq)
        fraction = self._static_cpu_fraction
        cpu_tokens = fraction * seq
        newly_offloaded = cpu_tokens - fraction * (seq - 1)
        non_local = np.maximum(1, seq - num_local)
        cpu_fraction_of_candidates = np.minimum(1.0, cpu_tokens / non_local)
        load_tokens = num_global * cpu_fraction_of_candidates
        phases = np.where(cpu_tokens == 0, PHASE_GPU, PHASE_GPU_CPU)
        moved = load_tokens + newly_offloaded
        return EpochPlan(
            phases=tuple(phases.tolist()),
            kv_gpu_tokens=seq - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            kept_kv=num_local + num_global,
            local_windows=num_local,
            load_kv_tokens=load_tokens,
            offload_kv_tokens=newly_offloaded,
            quantize_tokens=moved if self.use_compression else None,
        )

    def pricing_is_shape_pure(self) -> bool:
        """Dynamic-scheduling epochs are shape-pure only under ``exact``.

        The full grid search solves a shape deterministically from the
        shape alone; warm-started/canonical solves seed from whatever
        nearby shapes this system's :class:`ScheduleCache` happened to see
        first, so their priced epochs depend on solver history.  The
        static ablation plans without the solver and is always pure.
        """
        return (not self.use_dynamic_scheduling
                or self._fixed_scheduler_config is not None
                or self.schedule_policy.exact)

    def pricing_signature(self) -> tuple:
        """Extend the base signature with ALISA's own pricing knobs.

        The schedule policy is part of the signature because non-exact
        policies may pick (slightly) different schedules for the same
        shape; two systems only price identically when they share it.
        """
        return super().pricing_signature() + (
            self.kv_sparsity, self.swa.caching_ratio, self.swa.local_fraction,
            self.use_dynamic_scheduling, self.use_compression,
            self.enable_recomputation, self._fixed_scheduler_config,
            self.schedule_policy,
        )

    # ------------------------------------------------------------------ #
    def _quantized(self, moved_tokens: float) -> float:
        """Tokens that pay the (de)quantization overhead this step."""
        return moved_tokens if self.use_compression else 0.0
