"""Incremental re-solve layer for the ALISA offline scheduler (Section V-A).

The paper solves its offload/recompute schedule *once* per ``(b, s, n)``
shape, offline.  The online serving engine, by contrast, re-``prepare``-s
its simulator every time the batch composition changes — once per decode
epoch — and a full :meth:`~repro.core.optimizer.SchedulerOptimizer.solve`
grid search per epoch dominates serving-simulation wall-clock at large
request counts.  This module makes the re-solve incremental:

* :class:`SchedulePolicy` — knobs for the incremental layer (bucket sizes,
  warm-start behaviour, the ``exact`` escape hatch);
* :class:`ScheduleCache` — a memo of solved schedules with two key spaces:
  an *exact* map keyed on the precise solved shape
  ``(b, s, n, kv_dtype, budget)`` (always byte-identical to re-solving) and
  a *canonical* map keyed on a bucketed shape so nearby workloads share one
  representative solution;
* :class:`CachedSchedule` — a shape-independent encoding of a solution
  (``alpha``, ``beta``, and ``p2`` as a fraction of the post-``p1`` horizon)
  that can be re-derived for any concrete workload shape.

Public contract
---------------
One :class:`ScheduleCache` instance may safely back any number of
simulators and serving engines concurrently: every key is prefixed with a
*context* tuple built by the owning simulator (model, hardware, KV dtype,
SWA parameters, ablation flags, and — on multi-GPU nodes — the parallelism
mode, degree, and microbatch count, i.e. the shard shape), so entries from
different systems, nodes, or shard shapes can never be served to each
other.  Lookups mutate only the hit counters in :attr:`ScheduleCache.stats`;
``store_*`` never evicts (shapes are few and solutions small).  An exact
hit is byte-identical to re-solving the same shape; canonical and
warm-started paths are within the documented tolerance below.

Optimality tolerance
--------------------
The search objective (Equation 5) is a sum of per-step costs, each
piecewise-linear in the shape parameters ``(s, n)`` with slopes bounded by
the per-token compute/transfer/recompute costs.  Within one canonical
bucket the shape differs from the representative by at most
``input_bucket``/``output_bucket`` tokens, so the objective of the shared
configuration is within a Lipschitz band of the shape's own optimum; the
candidate grid itself is coarse (5 x 4 x 5), which dominates the gap in
practice.  ``SchedulePolicy.tolerance`` documents the accepted relative
drift; the property-based suite (``tests/test_schedule_cache.py``) checks
the bound against cold full-grid solves across hypothesis-generated
shapes.  Runs that need bit-exact reproduction of the offline protocol set
``SchedulePolicy(exact=True)``, which disables canonical sharing and
warm-starting entirely (memoization stays, and is byte-identical by
construction: a hit returns the solution of a full solve of that very
shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._common import ConfigurationError, validate_fraction, validate_positive
from repro.core.scheduler import SchedulerConfig

if TYPE_CHECKING:  # avoid a core -> workloads -> model -> core import cycle
    from repro.workloads.descriptors import Workload


@dataclass(frozen=True)
class SchedulePolicy:
    """Knobs of the incremental scheduler re-solve.

    ``exact``
        Escape hatch: solve every new shape with the legacy full grid
        search (byte-identical to the pre-cache behaviour).  Memoization of
        exact shape repeats stays on unless ``memoize`` is also cleared.
    ``memoize``
        Reuse solutions for exactly repeated ``(b, s, n, budget)`` shapes.
    ``input_bucket`` / ``output_bucket``
        Canonicalization granularity: workloads whose ``input_len`` /
        ``output_len`` round up to the same multiples share one canonical
        solution (batch size is never bucketed — the GPU KV budget scales
        with it too strongly).
    ``warm_start``
        Seed cold solves of a new canonical bucket from the nearest solved
        bucket and refine by coordinate descent over the candidate grids
        instead of re-running the full grid.
    ``tolerance``
        Documented relative optimality drift accepted from canonical
        sharing and warm-started refinement (see the module docstring).
    ``max_refine_rounds``
        Cap on coordinate-descent sweeps of a warm-started solve.
    """

    exact: bool = False
    memoize: bool = True
    input_bucket: int = 64
    output_bucket: int = 64
    warm_start: bool = True
    tolerance: float = 0.1
    max_refine_rounds: int = 3

    def __post_init__(self) -> None:
        validate_positive(input_bucket=self.input_bucket,
                          output_bucket=self.output_bucket,
                          max_refine_rounds=self.max_refine_rounds)
        validate_fraction(tolerance=self.tolerance)

    def canonical_shape(self, workload: Workload) -> tuple[int, int, int]:
        """Bucketed ``(b, s, n)`` under which nearby shapes share solutions."""

        def _up(value: int, bucket: int) -> int:
            return -(-value // bucket) * bucket

        return (workload.batch_size,
                _up(workload.input_len, self.input_bucket),
                _up(workload.output_len, self.output_bucket))


#: The exact-solve policy used to reproduce the pre-cache serving behaviour
#: (full grid search per epoch, no reuse of any kind).
FULL_RESOLVE_POLICY = SchedulePolicy(exact=True, memoize=False,
                                     warm_start=False)


@dataclass(frozen=True)
class CachedSchedule:
    """A solved schedule, encoded independently of the concrete shape.

    ``phase3_fraction`` stores ``p2`` as a fraction of the post-``p1``
    decoding horizon of the *solved* shape, so the schedule can be
    re-derived for any nearby shape whose ``p1`` differs.
    """

    offload_ratio: float
    recompute_ratio: float
    phase3_fraction: float
    batch_size: int
    input_len: int
    output_len: int
    gpu_budget_tokens: int
    estimated_time: float

    @classmethod
    def from_config(cls, config: SchedulerConfig, workload: Workload,
                    gpu_budget_tokens: int,
                    estimated_time: float) -> "CachedSchedule":
        horizon = max(1, workload.output_len - config.phase2_step)
        fraction = (config.phase3_step - config.phase2_step) / horizon
        return cls(
            offload_ratio=config.offload_ratio,
            recompute_ratio=config.recompute_ratio,
            phase3_fraction=min(1.0, max(0.0, fraction)),
            batch_size=workload.batch_size,
            input_len=workload.input_len,
            output_len=workload.output_len,
            gpu_budget_tokens=gpu_budget_tokens,
            estimated_time=estimated_time,
        )

    def derive_config(self, workload: Workload,
                      phase2_step: int) -> SchedulerConfig:
        """Re-instantiate the schedule for a concrete shape and ``p1``."""
        horizon = max(0, workload.output_len - phase2_step)
        phase3 = phase2_step + round(self.phase3_fraction * horizon)
        phase3 = min(phase2_step + horizon, max(phase2_step, phase3))
        return SchedulerConfig(
            offload_ratio=self.offload_ratio,
            recompute_ratio=self.recompute_ratio,
            phase2_step=phase2_step,
            phase3_step=phase3,
        )

    def distance(self, workload: Workload) -> float:
        """Relative shape distance used to pick warm-start seeds."""
        def _rel(a: int, b: int) -> float:
            return abs(a - b) / max(a, b, 1)

        return (_rel(self.batch_size, workload.batch_size)
                + _rel(self.input_len, workload.input_len)
                + _rel(self.output_len, workload.output_len))


@dataclass
class ScheduleCacheStats:
    """Counters describing how re-solves were served."""

    exact_hits: int = 0
    canonical_hits: int = 0
    warm_solves: int = 0
    full_solves: int = 0
    candidates_evaluated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "exact_hits": self.exact_hits,
            "canonical_hits": self.canonical_hits,
            "warm_solves": self.warm_solves,
            "full_solves": self.full_solves,
            "candidates_evaluated": self.candidates_evaluated,
        }


class ScheduleCache:
    """Memo of solved schedules, shareable across simulators and engines.

    Keys are namespaced by a *context* tuple (model, hardware, KV dtype,
    SWA parameters, ablation flags — built by the owning simulator), so one
    cache instance can safely back several systems at once.
    """

    def __init__(self) -> None:
        self._exact: dict[tuple, object] = {}
        self._canonical: dict[tuple, CachedSchedule] = {}
        self.stats = ScheduleCacheStats()

    def __len__(self) -> int:
        return len(self._exact) + len(self._canonical)

    def clear(self) -> None:
        self._exact.clear()
        self._canonical.clear()
        self.stats = ScheduleCacheStats()

    # ------------------------------------------------------------------ #
    # exact shapes
    # ------------------------------------------------------------------ #
    @staticmethod
    def exact_key(context: tuple, workload: Workload,
                  gpu_budget_tokens: int) -> tuple:
        return context + (workload.batch_size, workload.input_len,
                          workload.output_len, gpu_budget_tokens)

    def lookup_exact(self, key: tuple):
        """Return the memoized solution for an exactly repeated shape."""
        solution = self._exact.get(key)
        if solution is not None:
            self.stats.exact_hits += 1
        return solution

    def store_exact(self, key: tuple, solution) -> None:
        self._exact[key] = solution

    # ------------------------------------------------------------------ #
    # canonical (bucketed) shapes
    # ------------------------------------------------------------------ #
    @staticmethod
    def canonical_key(context: tuple, policy: SchedulePolicy,
                      workload: Workload) -> tuple:
        return context + policy.canonical_shape(workload)

    def lookup_canonical(self, key: tuple) -> CachedSchedule | None:
        entry = self._canonical.get(key)
        if entry is not None:
            self.stats.canonical_hits += 1
        return entry

    def store_canonical(self, key: tuple, entry: CachedSchedule) -> None:
        if not isinstance(entry, CachedSchedule):
            raise ConfigurationError(
                "canonical entries must be CachedSchedule instances"
            )
        self._canonical[key] = entry

    def nearest(self, context: tuple,
                workload: Workload) -> CachedSchedule | None:
        """Closest solved canonical entry in the same context, if any."""
        best: CachedSchedule | None = None
        best_distance = float("inf")
        for key, entry in self._canonical.items():
            if key[:len(context)] != context:
                continue
            distance = entry.distance(workload)
            if distance < best_distance:
                best, best_distance = entry, distance
        return best
