"""ALISA's three-phase token-level dynamic scheduling (Algorithm 2).

The scheduler decides, for every decoding step, where each token's KV
tensors live (GPU memory, CPU memory, or deleted-and-recomputed) and what
must move this step:

* **Phase I — GPU caching**: all KV tensors fit in GPU memory; nothing moves.
* **Phase II — GPU-CPU caching**: the KV working set exceeds the GPU budget;
  tokens are split at token granularity, keeping the locally static (most
  recent) tokens on the GPU because SWA always needs them, and offloading a
  fraction ``alpha`` of the older tokens to CPU memory.  Globally dynamic
  tokens that happen to live on the CPU are reloaded on demand.
* **Phase III — recomputation-caching**: beyond step ``p2``, the oldest
  ``beta`` fraction of CPU-resident tokens is deleted; if SWA selects one of
  them, its KV tensors are recomputed on the GPU instead of being fetched
  over PCIe.

The scheduler is deliberately *expected-value* (it tracks token counts, not
identities): ALISA's global token selection is content-dependent, so the
simulator charges the expected fraction of global tokens that reside in each
tier.  This is the same level of abstraction the paper's own cost model
(Equations 3–6) uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, round_half_up, validate_fraction, validate_positive
from repro.core.swa import SWAConfig


PHASE_GPU = "phase-1-gpu"
PHASE_GPU_CPU = "phase-2-gpu-cpu"
PHASE_RECOMPUTE = "phase-3-recompute"

PHASES = (PHASE_GPU, PHASE_GPU_CPU, PHASE_RECOMPUTE)


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable parameters of Algorithm 2 (Table II notation).

    ``offload_ratio`` is ``alpha`` — the fraction of non-local KV tokens kept
    in CPU memory during Phases II/III.  ``recompute_ratio`` is ``beta`` —
    the fraction of CPU-resident tokens deleted (and recomputed on demand)
    during Phase III.  ``phase2_step``/``phase3_step`` are ``p1``/``p2``,
    expressed as decoding-step indices (0-based); they are normally derived
    by :class:`~repro.core.optimizer.SchedulerOptimizer`.
    """

    offload_ratio: float
    recompute_ratio: float
    phase2_step: int
    phase3_step: int

    def __post_init__(self) -> None:
        validate_fraction(offload_ratio=self.offload_ratio,
                          recompute_ratio=self.recompute_ratio)
        if self.phase2_step < 0 or self.phase3_step < 0:
            raise ConfigurationError("phase switch steps must be non-negative")
        if self.phase3_step < self.phase2_step:
            raise ConfigurationError(
                "phase3_step (p2) must be >= phase2_step (p1); got "
                f"p1={self.phase2_step}, p2={self.phase3_step}"
            )


@dataclass(frozen=True)
class StepPlan:
    """What happens at one decoding step (the load/compute/store of Alg. 2)."""

    step: int
    sequence_length: int
    phase: str
    kept_tokens: int
    kept_local: int
    kept_global: int
    tokens_gpu: int
    tokens_cpu: int
    tokens_deleted: int
    load_tokens: float
    offload_tokens: float
    recompute_tokens: float

    def validate(self) -> None:
        total = self.tokens_gpu + self.tokens_cpu + self.tokens_deleted
        if total != self.sequence_length:
            raise ConfigurationError(
                f"token placement ({total}) does not cover the sequence "
                f"({self.sequence_length})"
            )


@dataclass(frozen=True)
class EpochSchedule:
    """Array-of-structs view of ``num_steps`` consecutive step plans.

    Produced by :meth:`DynamicScheduler.plan_epoch`; entry ``j`` of every
    array equals the corresponding field of the :class:`StepPlan` that
    ``plan_step(j)`` would return from the same post-prefill state.
    """

    phases: tuple[str, ...]
    kept_local: np.ndarray
    kept_global: np.ndarray
    tokens_gpu: np.ndarray
    tokens_cpu: np.ndarray
    tokens_deleted: np.ndarray
    load_tokens: np.ndarray
    offload_tokens: np.ndarray
    recompute_tokens: np.ndarray

    @property
    def kept_tokens(self) -> np.ndarray:
        return self.kept_local + self.kept_global


@dataclass
class SchedulerState:
    """Mutable token-placement state carried across steps."""

    tokens_gpu: int = 0
    tokens_cpu: int = 0
    tokens_deleted: int = 0

    @property
    def total_tokens(self) -> int:
        return self.tokens_gpu + self.tokens_cpu + self.tokens_deleted


class DynamicScheduler:
    """Three-phase token-level scheduler for one inference run.

    Parameters
    ----------
    config:
        The ``alpha, beta, p1, p2`` tuple.
    swa:
        SWA configuration; determines how many tokens attention touches per
        step and how they split into local (GPU-resident) and global tokens.
    gpu_budget_tokens:
        Maximum number of KV tokens the GPU can hold (after weights and
        activations are accounted for).  The scheduler never exceeds it,
        entering Phase II early if ``p1`` alone would overflow the GPU.
    prompt_len:
        Input sequence length ``s``; the step index ``j`` counts generated
        tokens, so the sequence length at step ``j`` is ``s + j + 1``.
    """

    def __init__(self, config: SchedulerConfig, swa: SWAConfig,
                 gpu_budget_tokens: int, prompt_len: int) -> None:
        validate_positive(gpu_budget_tokens=gpu_budget_tokens,
                          prompt_len=prompt_len)
        self.config = config
        self.swa = swa
        self.gpu_budget_tokens = gpu_budget_tokens
        self.prompt_len = prompt_len
        self.state = SchedulerState()
        self._prefilled = False
        self._next_step = 0

    # ------------------------------------------------------------------ #
    # phase logic
    # ------------------------------------------------------------------ #
    def phase_for_step(self, step: int, sequence_length: int) -> str:
        """Which phase the given decoding step runs in."""
        if step >= self.config.phase3_step:
            return PHASE_RECOMPUTE
        if step >= self.config.phase2_step or sequence_length > self.gpu_budget_tokens:
            return PHASE_GPU_CPU
        return PHASE_GPU

    # ------------------------------------------------------------------ #
    # prefill placement
    # ------------------------------------------------------------------ #
    def plan_prefill(self) -> StepPlan:
        """Place the prompt's KV tensors (the prefilling stage)."""
        if self._prefilled:
            raise ConfigurationError("plan_prefill may only be called once")
        self._prefilled = True
        seq_len = self.prompt_len
        phase = PHASE_GPU if seq_len <= self.gpu_budget_tokens else PHASE_GPU_CPU
        if phase == PHASE_GPU:
            tokens_gpu, tokens_cpu = seq_len, 0
        else:
            tokens_gpu = min(seq_len, self.gpu_budget_tokens)
            tokens_cpu = seq_len - tokens_gpu
        self.state = SchedulerState(tokens_gpu=tokens_gpu, tokens_cpu=tokens_cpu)
        num_local, num_global = self.swa.split_budget(seq_len)
        plan = StepPlan(
            step=-1, sequence_length=seq_len, phase=phase,
            kept_tokens=num_local + num_global, kept_local=num_local,
            kept_global=num_global, tokens_gpu=tokens_gpu, tokens_cpu=tokens_cpu,
            tokens_deleted=0, load_tokens=0.0, offload_tokens=float(tokens_cpu),
            recompute_tokens=0.0,
        )
        plan.validate()
        return plan

    # ------------------------------------------------------------------ #
    # per-step planning (Algorithm 2 body)
    # ------------------------------------------------------------------ #
    def plan_step(self, step: int) -> StepPlan:
        """Plan the load/compute/store of decoding step ``step`` (0-based)."""
        if not self._prefilled:
            raise ConfigurationError("plan_prefill must run before plan_step")
        if step != self._next_step:
            raise ConfigurationError(
                f"steps must be planned sequentially: expected step "
                f"{self._next_step}, got {step}"
            )
        self._next_step += 1

        sequence_length = self.prompt_len + step + 1
        phase = self.phase_for_step(step, sequence_length)
        num_local, num_global = self.swa.split_budget(sequence_length)
        kept = num_local + num_global

        state = self.state
        # The newly generated token is always computed and stored on the GPU.
        tokens_gpu = state.tokens_gpu + 1
        tokens_cpu = state.tokens_cpu
        tokens_deleted = state.tokens_deleted
        offload_tokens = 0.0
        load_tokens = 0.0
        recompute_tokens = 0.0

        if phase != PHASE_GPU:
            # Keep the locally static window plus headroom on the GPU; push a
            # fraction alpha of the remaining (older) tokens to the CPU.
            non_local = max(0, sequence_length - tokens_deleted - num_local)
            target_cpu = round_half_up(self.config.offload_ratio * non_local)
            gpu_cap = self.gpu_budget_tokens
            min_cpu_for_capacity = max(
                0, sequence_length - tokens_deleted - gpu_cap
            )
            target_cpu = max(target_cpu, min_cpu_for_capacity)
            target_cpu = min(target_cpu, non_local)

            if phase == PHASE_RECOMPUTE:
                # Delete the oldest beta fraction of CPU-resident tokens.
                target_deleted = round_half_up(
                    self.config.recompute_ratio * (target_cpu + tokens_deleted)
                )
                newly_deleted = max(0, target_deleted - tokens_deleted)
                newly_deleted = min(newly_deleted, target_cpu)
                tokens_deleted += newly_deleted
                target_cpu -= newly_deleted

            new_cpu = target_cpu
            offload_tokens = max(0.0, float(new_cpu - tokens_cpu))
            tokens_cpu = new_cpu
            tokens_gpu = sequence_length - tokens_cpu - tokens_deleted

            # Globally dynamic tokens are spread over the non-local part of
            # the sequence; charge the expected fraction living on the CPU
            # (reloaded over PCIe) and in the deleted range (recomputed).
            non_local_total = max(1, sequence_length - num_local)
            cpu_fraction = tokens_cpu / non_local_total
            deleted_fraction = tokens_deleted / non_local_total
            load_tokens = num_global * cpu_fraction
            recompute_tokens = num_global * deleted_fraction

        self.state = SchedulerState(tokens_gpu=tokens_gpu, tokens_cpu=tokens_cpu,
                                    tokens_deleted=tokens_deleted)
        plan = StepPlan(
            step=step, sequence_length=sequence_length, phase=phase,
            kept_tokens=kept, kept_local=num_local, kept_global=num_global,
            tokens_gpu=tokens_gpu, tokens_cpu=tokens_cpu,
            tokens_deleted=tokens_deleted, load_tokens=load_tokens,
            offload_tokens=offload_tokens, recompute_tokens=recompute_tokens,
        )
        plan.validate()
        return plan

    def plan_run(self, num_steps: int) -> list[StepPlan]:
        """Plan prefill plus ``num_steps`` decoding steps."""
        plans = [self.plan_prefill()]
        plans.extend(self.plan_step(j) for j in range(num_steps))
        return plans

    # ------------------------------------------------------------------ #
    # vectorized epoch planning (the serving fast path)
    # ------------------------------------------------------------------ #
    def plan_epoch(self, num_steps: int) -> EpochSchedule:
        """Plan steps ``0 .. num_steps - 1`` in one vectorized call.

        Non-mutating equivalent of calling :meth:`plan_step` ``num_steps``
        times from the post-prefill state: Phases I/II are closed-form in
        the step index and evaluate array-wise; Phase III's deleted-token
        count is an inherently sequential recurrence (each step's deletion
        target depends on the previous step's), so it runs as a tight
        integer loop — still orders of magnitude cheaper than building and
        validating a :class:`StepPlan` per step.
        """
        if not self._prefilled:
            raise ConfigurationError("plan_prefill must run before plan_epoch")
        if self._next_step != 0:
            raise ConfigurationError(
                "plan_epoch requires a fresh post-prefill scheduler (steps "
                f"0..{self._next_step - 1} were already planned step-wise)"
            )
        validate_positive(num_steps=num_steps)
        alpha = self.config.offload_ratio
        beta = self.config.recompute_ratio
        budget = self.gpu_budget_tokens

        steps = np.arange(num_steps)
        seq = self.prompt_len + steps + 1
        num_local, num_global = self.swa.split_budget_batch(seq)
        in_phase3 = steps >= self.config.phase3_step
        in_phase2 = (~in_phase3) & ((steps >= self.config.phase2_step)
                                    | (seq > budget))
        offloading = in_phase2 | in_phase3

        tokens_cpu = np.zeros(num_steps, dtype=np.int64)
        tokens_deleted = np.zeros(num_steps, dtype=np.int64)

        # Phase II: nothing has been deleted yet, so the CPU-resident target
        # is a pure function of the step.
        non_local = np.maximum(0, seq - num_local)
        target_cpu = np.maximum(
            np.floor(alpha * non_local + 0.5).astype(np.int64),
            np.maximum(0, seq - budget))
        tokens_cpu = np.where(in_phase2, np.minimum(target_cpu, non_local),
                              tokens_cpu)

        # Phase III: the deletion recurrence (Algorithm 2's running `beta`
        # fraction of an evolving CPU-resident set) steps sequentially.
        deleted = 0
        for j in range(int(self.config.phase3_step), num_steps):
            seq_j = int(seq[j])
            candidates = max(0, seq_j - deleted - int(num_local[j]))
            target = max(round_half_up(alpha * candidates),
                         max(0, seq_j - deleted - budget))
            target = min(target, candidates)
            target_deleted = round_half_up(beta * (target + deleted))
            newly_deleted = min(max(0, target_deleted - deleted), target)
            deleted += newly_deleted
            tokens_cpu[j] = target - newly_deleted
            tokens_deleted[j] = deleted

        # The step's offload is the growth of the CPU-resident share over
        # the previous plan (the post-prefill placement for step 0).
        previous_cpu = np.concatenate(([self.state.tokens_cpu],
                                       tokens_cpu[:-1]))
        offload = np.where(offloading,
                           np.maximum(0.0, (tokens_cpu - previous_cpu)
                                      .astype(np.float64)),
                           0.0)
        non_local_total = np.maximum(1, seq - num_local)
        load = np.where(offloading,
                        num_global * (tokens_cpu / non_local_total), 0.0)
        recompute = np.where(offloading,
                             num_global * (tokens_deleted / non_local_total),
                             0.0)
        phases = np.where(in_phase3, PHASE_RECOMPUTE,
                          np.where(in_phase2, PHASE_GPU_CPU, PHASE_GPU))
        return EpochSchedule(
            phases=tuple(phases.tolist()),
            kept_local=num_local, kept_global=num_global,
            tokens_gpu=seq - tokens_cpu - tokens_deleted,
            tokens_cpu=tokens_cpu, tokens_deleted=tokens_deleted,
            load_tokens=load, offload_tokens=offload,
            recompute_tokens=recompute,
        )
