"""Hardware presets for the single GPU-CPU node of the paper's evaluation."""

from repro.hardware.presets import (
    GB,
    HARDWARE_PRESETS,
    PAPER_PCIE_BANDWIDTH,
    A100_40GB_NODE,
    CPUSpec,
    GPUSpec,
    H100_80GB_NODE,
    HardwareSpec,
    V100_16GB_NODE,
    V100_32GB_NODE,
    XEON_HOST_128GB,
    get_hardware,
    hardware_for_model,
)

__all__ = [
    "A100_40GB_NODE",
    "CPUSpec",
    "GB",
    "GPUSpec",
    "H100_80GB_NODE",
    "HARDWARE_PRESETS",
    "HardwareSpec",
    "PAPER_PCIE_BANDWIDTH",
    "V100_16GB_NODE",
    "V100_32GB_NODE",
    "XEON_HOST_128GB",
    "get_hardware",
    "hardware_for_model",
]
