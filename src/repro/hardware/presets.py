"""Hardware specifications used by the analytic performance model.

The paper's system evaluation runs on a single GPU-CPU node:

* NVIDIA Tesla V100 with 16 GB or 32 GB HBM for the 7B/13B models,
* NVIDIA H100 with 80 GB HBM for the 30B models,
* a 2.60 GHz Intel Xeon host with 128 GB DRAM,
* 20 GB/s of CPU-GPU bandwidth (Section VI-A).

These presets capture the capacity, compute throughput, and bandwidth
numbers that drive the cost model.  Compute throughputs are the published
dense FP16 tensor throughputs de-rated to a realistic attainable fraction,
because the reproduction cares about relative behaviour (compute vs. I/O
crossovers), not peak-spec marketing numbers.

Beyond the paper's single-GPU nodes, :class:`HardwareSpec` also describes
multi-GPU nodes: ``gpu_count`` identical GPUs joined by an
:class:`InterconnectSpec` (NVLink- or PCIe-P2P-class bandwidth and
latency), each with its own host link of ``pcie_bandwidth``.  The
:func:`multi_gpu` helper derives an ``xN`` node from any single-GPU
preset at equal per-GPU memory; 2- and 4-GPU presets are registered in
:data:`HARDWARE_PRESETS` for the serving sweep's parallelism axis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._common import ConfigurationError, validate_positive

GB = 1024**3
#: Attainable fraction of peak tensor throughput for the GEMM-heavy parts of
#: LLM decoding (memory-bound small-batch GEMMs rarely exceed this).
DEFAULT_COMPUTE_EFFICIENCY = 0.35


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator: capacity, compute, and HBM bandwidth."""

    name: str
    memory_bytes: float
    fp16_flops: float
    hbm_bandwidth: float
    compute_efficiency: float = DEFAULT_COMPUTE_EFFICIENCY

    def __post_init__(self) -> None:
        validate_positive(memory_bytes=self.memory_bytes,
                          fp16_flops=self.fp16_flops,
                          hbm_bandwidth=self.hbm_bandwidth,
                          compute_efficiency=self.compute_efficiency)

    @property
    def effective_flops(self) -> float:
        return self.fp16_flops * self.compute_efficiency


@dataclass(frozen=True)
class CPUSpec:
    """The host CPU and its DRAM."""

    name: str
    memory_bytes: float
    flops: float
    dram_bandwidth: float

    def __post_init__(self) -> None:
        validate_positive(memory_bytes=self.memory_bytes, flops=self.flops,
                          dram_bandwidth=self.dram_bandwidth)


@dataclass(frozen=True)
class InterconnectSpec:
    """The GPU-to-GPU link of a multi-GPU node.

    ``bandwidth`` is the attainable per-GPU link bandwidth used by the
    collective-communication cost terms (ring all-reduce for tensor
    parallelism, point-to-point stage transfers for pipeline parallelism);
    ``latency_s`` is the per-message launch/synchronization latency charged
    once per communication step.
    """

    name: str
    bandwidth: float
    latency_s: float

    def __post_init__(self) -> None:
        validate_positive(bandwidth=self.bandwidth)
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be non-negative")


#: NVLink-class GPU interconnect (attainable ring bandwidth per GPU).
NVLINK = InterconnectSpec("nvlink", bandwidth=250e9, latency_s=3e-6)
#: PCIe peer-to-peer GPU interconnect (no NVLink bridge).
PCIE_P2P = InterconnectSpec("pcie-p2p", bandwidth=24e9, latency_s=10e-6)

INTERCONNECT_PRESETS: dict[str, InterconnectSpec] = {
    spec.name: spec for spec in (NVLINK, PCIE_P2P)
}


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up an interconnect preset by name."""
    try:
        return INTERCONNECT_PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown interconnect preset {name!r}; "
            f"known: {sorted(INTERCONNECT_PRESETS)}"
        ) from exc


@dataclass(frozen=True)
class HardwareSpec:
    """A GPU-CPU inference node: ``gpu_count`` identical GPUs plus a host.

    ``pcie_bandwidth`` is the CPU-GPU bandwidth *per GPU* (each GPU has its
    own host link); ``interconnect`` joins the GPUs of a multi-GPU node and
    is required whenever ``gpu_count > 1``.
    """

    name: str
    gpu: GPUSpec
    cpu: CPUSpec
    pcie_bandwidth: float
    gpu_count: int = 1
    interconnect: InterconnectSpec | None = None

    def __post_init__(self) -> None:
        validate_positive(pcie_bandwidth=self.pcie_bandwidth,
                          gpu_count=self.gpu_count)
        if self.gpu_count > 1 and self.interconnect is None:
            raise ConfigurationError(
                f"node {self.name!r} has {self.gpu_count} GPUs but no "
                "interconnect; pass an InterconnectSpec"
            )

    @property
    def node_gpu_memory_bytes(self) -> float:
        """Aggregate GPU memory across all GPUs of the node."""
        return self.gpu.memory_bytes * self.gpu_count

    @property
    def node_pcie_bandwidth(self) -> float:
        """Aggregate CPU-GPU bandwidth (each GPU drives its own host link)."""
        return self.pcie_bandwidth * self.gpu_count

    def with_pcie_bandwidth(self, bandwidth: float) -> "HardwareSpec":
        """Copy of this node with a different CPU-GPU bandwidth (ablations)."""
        return replace(self, pcie_bandwidth=bandwidth)

    def with_gpu_memory(self, memory_bytes: float) -> "HardwareSpec":
        """Copy of this node with a different GPU memory capacity."""
        return replace(self, gpu=replace(self.gpu, memory_bytes=memory_bytes))


V100_GPU_16GB = GPUSpec("V100-16GB", memory_bytes=16 * GB, fp16_flops=112e12,
                        hbm_bandwidth=900e9)
V100_GPU_32GB = GPUSpec("V100-32GB", memory_bytes=32 * GB, fp16_flops=112e12,
                        hbm_bandwidth=900e9)
A100_GPU_40GB = GPUSpec("A100-40GB", memory_bytes=40 * GB, fp16_flops=312e12,
                        hbm_bandwidth=1555e9)
H100_GPU_80GB = GPUSpec("H100-80GB", memory_bytes=80 * GB, fp16_flops=990e12,
                        hbm_bandwidth=3350e9)

XEON_HOST_128GB = CPUSpec("Xeon-2.6GHz-128GB", memory_bytes=128 * GB,
                          flops=2e12, dram_bandwidth=100e9)

#: The paper's stated CPU-GPU bandwidth (Section VI-A).
PAPER_PCIE_BANDWIDTH = 20e9

V100_16GB_NODE = HardwareSpec("v100-16gb-node", V100_GPU_16GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
V100_32GB_NODE = HardwareSpec("v100-32gb-node", V100_GPU_32GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
A100_40GB_NODE = HardwareSpec("a100-40gb-node", A100_GPU_40GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
H100_80GB_NODE = HardwareSpec("h100-80gb-node", H100_GPU_80GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)

def multi_gpu(base: HardwareSpec, gpu_count: int,
              interconnect: InterconnectSpec = NVLINK) -> HardwareSpec:
    """An ``xN`` node built from ``base`` at equal per-GPU memory.

    Every GPU keeps the per-GPU memory, compute, and host-link bandwidth of
    ``base``; only the GPU count and the GPU-to-GPU interconnect change, so
    single- vs. multi-GPU comparisons isolate the effect of sharding.

    ``base`` must be a single-GPU node: deriving an ``xN`` node from an
    already-multi-GPU spec would silently compound the GPU count (and stack
    an ``-xN-`` suffix onto an ``-xM-`` name), so that is rejected.
    """
    validate_positive(gpu_count=gpu_count)
    if base.gpu_count > 1:
        raise ConfigurationError(
            f"multi_gpu needs a single-GPU base spec, but {base.name!r} "
            f"already has gpu_count={base.gpu_count}; derive the xN node "
            "from the original single-GPU preset instead of compounding"
        )
    if gpu_count == 1:
        return base
    return replace(base, name=f"{base.name}-x{gpu_count}-{interconnect.name}",
                   gpu_count=gpu_count, interconnect=interconnect)


#: 2- and 4-GPU NVLink variants of the paper's nodes (equal per-GPU memory).
V100_16GB_X2_NODE = multi_gpu(V100_16GB_NODE, 2)
V100_16GB_X4_NODE = multi_gpu(V100_16GB_NODE, 4)
H100_80GB_X2_NODE = multi_gpu(H100_80GB_NODE, 2)
H100_80GB_X4_NODE = multi_gpu(H100_80GB_NODE, 4)

HARDWARE_PRESETS: dict[str, HardwareSpec] = {
    spec.name: spec
    for spec in (V100_16GB_NODE, V100_32GB_NODE, A100_40GB_NODE, H100_80GB_NODE,
                 V100_16GB_X2_NODE, V100_16GB_X4_NODE,
                 H100_80GB_X2_NODE, H100_80GB_X4_NODE)
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a hardware preset by name."""
    try:
        return HARDWARE_PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown hardware preset {name!r}; known: {sorted(HARDWARE_PRESETS)}"
        ) from exc


def hardware_for_model(model_name: str) -> HardwareSpec:
    """Pick the node the paper uses for a given model scale.

    7B/13B-level models run on the V100 (16/32 GB), 30B-level models on the
    H100 80 GB (Section VI-A).
    """
    lowered = model_name.lower()
    if any(tag in lowered for tag in ("30b", "33b")):
        return H100_80GB_NODE
    if any(tag in lowered for tag in ("12b", "13b")):
        return V100_32GB_NODE
    return V100_16GB_NODE


@dataclass(frozen=True)
class ClusterSpec:
    """A data-parallel cluster: ``num_replicas`` identical serving nodes.

    Each replica is one :class:`HardwareSpec` node (itself possibly
    multi-GPU) running an independent model copy; a router spreads arrival
    traffic across the replicas (:mod:`repro.cluster`).  The spec is pure
    hardware description — how a replica shards its model over its node is
    the replica's :class:`~repro.systems.cost.ParallelismSpec`, not the
    cluster's concern.
    """

    name: str
    node: HardwareSpec
    num_replicas: int = 1

    def __post_init__(self) -> None:
        validate_positive(num_replicas=self.num_replicas)

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster (replicas x GPUs per node)."""
        return self.num_replicas * self.node.gpu_count

    @property
    def total_gpu_memory_bytes(self) -> float:
        """Aggregate GPU memory across every replica of the cluster."""
        return self.num_replicas * self.node.node_gpu_memory_bytes


def cluster_of(node: HardwareSpec, num_replicas: int) -> ClusterSpec:
    """A cluster of ``num_replicas`` copies of ``node``."""
    validate_positive(num_replicas=num_replicas)
    return ClusterSpec(name=f"{node.name}-dp{num_replicas}", node=node,
                       num_replicas=num_replicas)


def validate_equal_gpu_count(*clusters: ClusterSpec) -> int:
    """Assert all ``clusters`` spend the same GPU count; return that count.

    Cluster comparisons (TP-4 vs 2x(TP-2) vs 4x(TP-1)) are only meaningful
    at equal total GPU count — otherwise the bigger cluster trivially wins.
    """
    if not clusters:
        raise ConfigurationError(
            "validate_equal_gpu_count needs at least one cluster"
        )
    counts = {spec.total_gpus for spec in clusters}
    if len(counts) > 1:
        detail = ", ".join(f"{spec.name}={spec.total_gpus}"
                           for spec in clusters)
        raise ConfigurationError(
            f"clusters spend unequal GPU counts ({detail}); compare "
            "configurations at equal total GPUs or drop the check"
        )
    return counts.pop()
