"""Hardware specifications used by the analytic performance model.

The paper's system evaluation runs on a single GPU-CPU node:

* NVIDIA Tesla V100 with 16 GB or 32 GB HBM for the 7B/13B models,
* NVIDIA H100 with 80 GB HBM for the 30B models,
* a 2.60 GHz Intel Xeon host with 128 GB DRAM,
* 20 GB/s of CPU-GPU bandwidth (Section VI-A).

These presets capture the capacity, compute throughput, and bandwidth
numbers that drive the cost model.  Compute throughputs are the published
dense FP16 tensor throughputs de-rated to a realistic attainable fraction,
because the reproduction cares about relative behaviour (compute vs. I/O
crossovers), not peak-spec marketing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._common import ConfigurationError, validate_positive

GB = 1024**3
#: Attainable fraction of peak tensor throughput for the GEMM-heavy parts of
#: LLM decoding (memory-bound small-batch GEMMs rarely exceed this).
DEFAULT_COMPUTE_EFFICIENCY = 0.35


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator: capacity, compute, and HBM bandwidth."""

    name: str
    memory_bytes: float
    fp16_flops: float
    hbm_bandwidth: float
    compute_efficiency: float = DEFAULT_COMPUTE_EFFICIENCY

    def __post_init__(self) -> None:
        validate_positive(memory_bytes=self.memory_bytes,
                          fp16_flops=self.fp16_flops,
                          hbm_bandwidth=self.hbm_bandwidth,
                          compute_efficiency=self.compute_efficiency)

    @property
    def effective_flops(self) -> float:
        return self.fp16_flops * self.compute_efficiency


@dataclass(frozen=True)
class CPUSpec:
    """The host CPU and its DRAM."""

    name: str
    memory_bytes: float
    flops: float
    dram_bandwidth: float

    def __post_init__(self) -> None:
        validate_positive(memory_bytes=self.memory_bytes, flops=self.flops,
                          dram_bandwidth=self.dram_bandwidth)


@dataclass(frozen=True)
class HardwareSpec:
    """A single GPU-CPU inference node."""

    name: str
    gpu: GPUSpec
    cpu: CPUSpec
    pcie_bandwidth: float

    def __post_init__(self) -> None:
        validate_positive(pcie_bandwidth=self.pcie_bandwidth)

    def with_pcie_bandwidth(self, bandwidth: float) -> "HardwareSpec":
        """Copy of this node with a different CPU-GPU bandwidth (ablations)."""
        return replace(self, pcie_bandwidth=bandwidth)

    def with_gpu_memory(self, memory_bytes: float) -> "HardwareSpec":
        """Copy of this node with a different GPU memory capacity."""
        return replace(self, gpu=replace(self.gpu, memory_bytes=memory_bytes))


V100_GPU_16GB = GPUSpec("V100-16GB", memory_bytes=16 * GB, fp16_flops=112e12,
                        hbm_bandwidth=900e9)
V100_GPU_32GB = GPUSpec("V100-32GB", memory_bytes=32 * GB, fp16_flops=112e12,
                        hbm_bandwidth=900e9)
A100_GPU_40GB = GPUSpec("A100-40GB", memory_bytes=40 * GB, fp16_flops=312e12,
                        hbm_bandwidth=1555e9)
H100_GPU_80GB = GPUSpec("H100-80GB", memory_bytes=80 * GB, fp16_flops=990e12,
                        hbm_bandwidth=3350e9)

XEON_HOST_128GB = CPUSpec("Xeon-2.6GHz-128GB", memory_bytes=128 * GB,
                          flops=2e12, dram_bandwidth=100e9)

#: The paper's stated CPU-GPU bandwidth (Section VI-A).
PAPER_PCIE_BANDWIDTH = 20e9

V100_16GB_NODE = HardwareSpec("v100-16gb-node", V100_GPU_16GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
V100_32GB_NODE = HardwareSpec("v100-32gb-node", V100_GPU_32GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
A100_40GB_NODE = HardwareSpec("a100-40gb-node", A100_GPU_40GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)
H100_80GB_NODE = HardwareSpec("h100-80gb-node", H100_GPU_80GB, XEON_HOST_128GB,
                              PAPER_PCIE_BANDWIDTH)

HARDWARE_PRESETS: dict[str, HardwareSpec] = {
    spec.name: spec
    for spec in (V100_16GB_NODE, V100_32GB_NODE, A100_40GB_NODE, H100_80GB_NODE)
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a hardware preset by name."""
    try:
        return HARDWARE_PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown hardware preset {name!r}; known: {sorted(HARDWARE_PRESETS)}"
        ) from exc


def hardware_for_model(model_name: str) -> HardwareSpec:
    """Pick the node the paper uses for a given model scale.

    7B/13B-level models run on the V100 (16/32 GB), 30B-level models on the
    H100 80 GB (Section VI-A).
    """
    lowered = model_name.lower()
    if any(tag in lowered for tag in ("30b", "33b")):
        return H100_80GB_NODE
    if any(tag in lowered for tag in ("12b", "13b")):
        return V100_32GB_NODE
    return V100_16GB_NODE
