"""Shared small utilities used across the :mod:`repro` package.

The reproduction is NumPy-only, so a handful of helpers that PyTorch would
normally provide (seeded generators, numerically stable softmax, dtype byte
sizes) live here.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Bytes per element for the data formats the paper discusses.
DTYPE_BYTES = {
    "fp32": 4,
    "fp16": 2,
    "int8": 1,
    "int4": 0.5,
}


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a configuration object is internally inconsistent.

    Also a :class:`ValueError`: configuration mistakes are bad argument
    values, so callers outside the package can catch them idiomatically
    without importing :mod:`repro`.
    """


class OutOfMemoryError(ReproError):
    """Raised when a simulated memory device cannot satisfy an allocation."""


def rng(seed: int | None = 0) -> np.random.Generator:
    """Return a seeded NumPy random generator.

    A single entry point for randomness keeps every experiment deterministic
    and reproducible from its seed.
    """
    return np.random.default_rng(seed)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def dtype_bytes(name: str) -> float:
    """Bytes per element for a named data format (``fp16``, ``int8``, ...)."""
    try:
        return DTYPE_BYTES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown dtype {name!r}; expected one of {sorted(DTYPE_BYTES)}"
        ) from exc


def validate_positive(**kwargs: float) -> None:
    """Raise :class:`ConfigurationError` unless every named value is > 0."""
    for name, value in kwargs.items():
        if value is None or value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value!r}")


def validate_fraction(**kwargs: float) -> None:
    """Raise :class:`ConfigurationError` unless every named value is in [0, 1]."""
    for name, value in kwargs.items():
        if value is None or not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")


def round_half_up(x: float) -> int:
    """Round to nearest integer with ties going up (paper's ``⌊nr⌉``)."""
    return int(np.floor(x + 0.5))


def unique_preserving_order(indices: Iterable[int]) -> list[int]:
    """De-duplicate ``indices`` while preserving first-seen order."""
    seen: set[int] = set()
    out: list[int] = []
    for idx in indices:
        if idx not in seen:
            seen.add(idx)
            out.append(int(idx))
    return out


def chunked(seq: Sequence, size: int) -> list[Sequence]:
    """Split ``seq`` into consecutive chunks of at most ``size`` items."""
    validate_positive(size=size)
    return [seq[i : i + size] for i in range(0, len(seq), size)]
