"""Baseline inference systems the paper compares against (Table I, Fig. 9)."""

from repro.baselines.flexgen import FlexGenSystem
from repro.baselines.reference import (
    AccelerateSystem,
    DeepSpeedZeroSystem,
    GPUOnlySystem,
)
from repro.baselines.vllm_system import VLLMSystem

#: Registry of baseline constructors keyed by the names used in experiments.
BASELINE_SYSTEMS = {
    "gpu-only": GPUOnlySystem,
    "accelerate": AccelerateSystem,
    "deepspeed-zero": DeepSpeedZeroSystem,
    "flexgen": FlexGenSystem,
    "vllm": VLLMSystem,
}

__all__ = [
    "AccelerateSystem",
    "BASELINE_SYSTEMS",
    "DeepSpeedZeroSystem",
    "FlexGenSystem",
    "GPUOnlySystem",
    "VLLMSystem",
]
