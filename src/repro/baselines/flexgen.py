"""FlexGen-style static offloading (the paper's primary baseline).

FlexGen [31] solves an offline linear program that fixes, before inference
starts, which fraction of the KV cache lives on the GPU; the split is
head-level and *static* — it does not react to the sequence growing
(Figure 7 (a)).  The plan must therefore be feasible at the **maximum**
sequence length, which means the GPU share is conservative and CPU-resident
KV tensors are streamed over PCIe at every decoding step.

An explicit ``cpu_fraction`` override reproduces the 50% / 100% bars of
Figure 1; by default the fraction is derived from the capacity constraint at
the maximum sequence length, as FlexGen's planner would.
"""

from __future__ import annotations

import numpy as np

from repro._common import validate_fraction
from repro.systems.simulator import (
    EpochPlan,
    InferenceSimulator,
    SystemStepPlan,
)
from repro.workloads.descriptors import Workload

PHASE_STATIC = "static"


class FlexGenSystem(InferenceSimulator):
    """Static head-level GPU/CPU split of the KV cache."""

    name = "flexgen"
    overlap_io = True

    def __init__(self, model, hardware, cpu_fraction: float | None = None,
                 **kwargs) -> None:
        super().__init__(model, hardware, **kwargs)
        if cpu_fraction is not None:
            validate_fraction(cpu_fraction=cpu_fraction)
        self._requested_cpu_fraction = cpu_fraction
        self._cpu_fraction = cpu_fraction if cpu_fraction is not None else 0.0

    # ------------------------------------------------------------------ #
    def prepare(self, workload: Workload) -> None:
        """Solve the static split offline, as FlexGen's planner does."""
        if self._requested_cpu_fraction is not None:
            self._cpu_fraction = self._requested_cpu_fraction
            return
        budget_tokens = self.gpu_kv_budget_tokens(workload)
        max_tokens = workload.max_seq_len
        if budget_tokens >= max_tokens:
            self._cpu_fraction = 0.0
        else:
            self._cpu_fraction = 1.0 - budget_tokens / max_tokens

    @property
    def cpu_fraction(self) -> float:
        """Fraction of every token's KV tensors resident in CPU memory."""
        return self._cpu_fraction

    # ------------------------------------------------------------------ #
    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        cpu_tokens = self._cpu_fraction * workload.input_len
        return SystemStepPlan(
            phase=PHASE_STATIC,
            kv_gpu_tokens=workload.input_len - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            offload_kv_tokens=cpu_tokens,
        )

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        cpu_tokens = self._cpu_fraction * seq_len
        return SystemStepPlan(
            phase=PHASE_STATIC,
            kv_gpu_tokens=seq_len - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            # Dense attention touches every token: the CPU-resident share is
            # processed CPU-side next to the data (FlexGen's CPU attention
            # delegation), and the new token's CPU share is written back —
            # the static schedule of Figure 7 (a).
            cpu_attention_tokens=cpu_tokens,
            offload_kv_tokens=self._cpu_fraction,
        )

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        seq = workload.input_len + np.arange(workload.output_len) + 1
        cpu_tokens = self._cpu_fraction * seq
        return EpochPlan(
            phases=(PHASE_STATIC,) * workload.output_len,
            kv_gpu_tokens=seq - cpu_tokens,
            kv_cpu_tokens=cpu_tokens,
            cpu_attention_tokens=cpu_tokens,
            offload_kv_tokens=np.full(seq.size, self._cpu_fraction),
        )

    def pricing_signature(self) -> tuple:
        return super().pricing_signature() + (self._requested_cpu_fraction,)
