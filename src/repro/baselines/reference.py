"""Reference baselines: GPU-only, HuggingFace Accelerate, DeepSpeed-ZeRO.

These three systems bracket the design space the paper explores:

* **GPU-only** keeps every KV tensor in GPU memory — fastest while it fits,
  out-of-memory as soon as it does not (the "GPU only" bars of Figure 1).
* **HuggingFace Accelerate** offloads the *whole* KV cache to CPU memory and
  streams it back every step (Section VI-A), trading capacity for heavy PCIe
  traffic (the "100%" bars of Figure 1).
* **DeepSpeed-ZeRO** offloads *weights* instead of KV tensors: every step
  re-streams the weights from CPU memory and keeps the KV cache on the GPU,
  so it both transfers a lot and still runs out of memory at large batch
  sizes (the OOM entries of Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro.systems.simulator import (
    EpochPlan,
    InferenceSimulator,
    SystemStepPlan,
)
from repro.workloads.descriptors import Workload

PHASE_STATIC = "static"


def _decode_seq_lens(workload: Workload) -> np.ndarray:
    """Per-step sequence lengths of a full decode epoch."""
    return workload.input_len + np.arange(workload.output_len) + 1


class GPUOnlySystem(InferenceSimulator):
    """Dense attention with every KV tensor resident in GPU memory."""

    name = "gpu-only"

    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        return SystemStepPlan(phase=PHASE_STATIC,
                              kv_gpu_tokens=workload.input_len,
                              kv_cpu_tokens=0.0)

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        return SystemStepPlan(phase=PHASE_STATIC, kv_gpu_tokens=seq_len,
                              kv_cpu_tokens=0.0)

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        seq = _decode_seq_lens(workload)
        return EpochPlan(phases=(PHASE_STATIC,) * workload.output_len,
                         kv_gpu_tokens=seq, kv_cpu_tokens=np.zeros(seq.size))


class AccelerateSystem(InferenceSimulator):
    """HuggingFace Accelerate-style full KV offload to CPU memory.

    The entire KV cache lives in CPU memory; every decoding step reloads all
    of it over PCIe for attention and writes the new token's KV back.
    """

    name = "accelerate"

    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        return SystemStepPlan(phase=PHASE_STATIC, kv_gpu_tokens=0.0,
                              kv_cpu_tokens=workload.input_len,
                              offload_kv_tokens=workload.input_len)

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        return SystemStepPlan(
            phase=PHASE_STATIC,
            kv_gpu_tokens=0.0,
            kv_cpu_tokens=seq_len,
            load_kv_tokens=float(seq_len - 1),
            offload_kv_tokens=1.0,
        )

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        seq = _decode_seq_lens(workload)
        return EpochPlan(
            phases=(PHASE_STATIC,) * workload.output_len,
            kv_gpu_tokens=np.zeros(seq.size),
            kv_cpu_tokens=seq,
            load_kv_tokens=(seq - 1).astype(np.float64),
            offload_kv_tokens=np.ones(seq.size),
        )


class DeepSpeedZeroSystem(InferenceSimulator):
    """DeepSpeed-ZeRO-style inference: weights offloaded, KV kept on GPU.

    The weights are streamed from CPU to GPU once per decoding step (layer by
    layer in the real system; the aggregate traffic is the same), and the KV
    cache stays on the GPU, which triggers OOM for large batches exactly as
    the paper reports.
    """

    name = "deepspeed-zero"

    def __init__(self, model, hardware, **kwargs) -> None:
        kwargs.setdefault("weights_on_gpu", False)
        super().__init__(model, hardware, **kwargs)

    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        return SystemStepPlan(
            phase=PHASE_STATIC, kv_gpu_tokens=workload.input_len,
            kv_cpu_tokens=0.0,
            extra_h2d_bytes=self.cost_model.weight_bytes(),
        )

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        return SystemStepPlan(
            phase=PHASE_STATIC, kv_gpu_tokens=seq_len, kv_cpu_tokens=0.0,
            extra_h2d_bytes=self.cost_model.weight_bytes(),
        )

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        seq = _decode_seq_lens(workload)
        return EpochPlan(
            phases=(PHASE_STATIC,) * workload.output_len,
            kv_gpu_tokens=seq, kv_cpu_tokens=np.zeros(seq.size),
            extra_h2d_bytes=np.full(seq.size, self.cost_model.weight_bytes()),
        )
