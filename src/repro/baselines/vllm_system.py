"""vLLM-style paged KV caching with preemption-based batch scheduling.

vLLM [21] manages KV tensors in fixed-size blocks stored in non-contiguous
paged GPU memory, which eliminates fragmentation and lets it pack the GPU
with as many *concurrently running* sequences as physically fit.  When a
batch does not fit, vLLM does not thrash blocks over PCIe every step — its
scheduler preempts whole sequences and runs the batch in waves, swapping a
preempted sequence's blocks out once and back in once.

This simulator models exactly that behaviour:

* the number of sequences that can run concurrently is derived from the GPU
  KV budget and the maximum sequence length (block-granular);
* the request batch is processed in ``ceil(batch / concurrent)`` waves;
* each preempted wave pays one swap-out plus one swap-in of its KV blocks;
* attention is dense (vLLM has no KV sparsity), so per-step compute matches
  the GPU-only system.

At small batch sizes everything fits, there is a single wave with zero swap
traffic, and vLLM behaves like an efficiently managed GPU-only system —
which is why it outperforms ALISA there (Section VI-C).  At large batch
sizes the wave count grows and ALISA's sparsity-aware token-level caching
pulls ahead, reproducing the crossover of Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro._common import validate_positive
from repro.systems.simulator import (
    EpochPlan,
    InferenceSimulator,
    SystemStepPlan,
)
from repro.systems.trace import InferenceTrace
from repro.workloads.descriptors import Workload

PHASE_GPU = "paged-gpu"
PHASE_WAVES = "paged-waves"


class VLLMSystem(InferenceSimulator):
    """Paged attention with preemption-based wave scheduling."""

    name = "vllm"
    overlap_io = True

    def __init__(self, model, hardware, block_size: int = 16, **kwargs) -> None:
        super().__init__(model, hardware, **kwargs)
        validate_positive(block_size=block_size)
        self.block_size = block_size
        self._concurrent = 1
        self._waves = 1

    # ------------------------------------------------------------------ #
    def _blocks_per_sequence(self, workload: Workload) -> int:
        return math.ceil(workload.max_seq_len / self.block_size)

    def concurrent_sequences(self, workload: Workload) -> int:
        """How many sequences the paged allocator can keep resident at once."""
        per_sequence_workload = Workload(
            batch_size=1, input_len=workload.input_len,
            output_len=workload.output_len, name="per-seq",
        )
        budget_tokens = self.gpu_kv_budget_tokens(per_sequence_workload)
        budget_blocks = budget_tokens // self.block_size
        per_seq_blocks = self._blocks_per_sequence(workload)
        if per_seq_blocks <= 0:
            return workload.batch_size
        return max(1, min(workload.batch_size, budget_blocks // per_seq_blocks))

    def prepare(self, workload: Workload) -> None:
        self._concurrent = self.concurrent_sequences(workload)
        self._waves = math.ceil(workload.batch_size / self._concurrent)

    # ------------------------------------------------------------------ #
    # plan hooks operate on a single wave (batch = concurrent sequences)
    # ------------------------------------------------------------------ #
    def plan_prefill(self, workload: Workload) -> SystemStepPlan:
        return SystemStepPlan(
            phase=PHASE_GPU if self._waves == 1 else PHASE_WAVES,
            kv_gpu_tokens=workload.input_len, kv_cpu_tokens=0.0,
        )

    def plan_decode_step(self, step: int, workload: Workload) -> SystemStepPlan:
        seq_len = workload.input_len + step + 1
        return SystemStepPlan(
            phase=PHASE_GPU if self._waves == 1 else PHASE_WAVES,
            kv_gpu_tokens=seq_len, kv_cpu_tokens=0.0,
        )

    def plan_decode_epoch(self, workload: Workload) -> EpochPlan:
        seq = workload.input_len + np.arange(workload.output_len) + 1
        phase = PHASE_GPU if self._waves == 1 else PHASE_WAVES
        return EpochPlan(phases=(phase,) * workload.output_len,
                         kv_gpu_tokens=seq, kv_cpu_tokens=np.zeros(seq.size))

    def pricing_signature(self) -> tuple:
        return super().pricing_signature() + (self.block_size,)

    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> InferenceTrace:
        """Simulate the request batch as ``waves`` of resident sub-batches."""
        self.prepare(workload)
        waves = self._waves
        wave_workload = Workload(
            batch_size=self._concurrent, input_len=workload.input_len,
            output_len=workload.output_len, name=f"{workload.name}-wave",
        )
        trace = super().run(wave_workload)
        # super().run re-invokes prepare() on the per-wave workload; restore
        # the request-level wave count before scaling the trace.
        self._waves = waves
        if self._waves == 1:
            return trace

        # Preempted waves pay one swap-out + one swap-in of their KV blocks.
        swap_bytes = self.kv_token_bytes(wave_workload) * workload.max_seq_len
        swap_time = 2.0 * swap_bytes / self.cost_model.effective_pcie_bandwidth

        scaled = InferenceTrace(
            system=trace.system, model=trace.model,
            batch_size=workload.batch_size, input_len=workload.input_len,
            output_len=workload.output_len,
            prefill_time=self._waves * trace.prefill_time,
            oom=trace.oom, oom_reason=trace.oom_reason,
            metadata={**trace.metadata, "waves": self._waves,
                      "concurrent_sequences": self._concurrent,
                      "swap_time_per_wave_s": swap_time},
        )
        per_step_swap = (self._waves - 1) * swap_time / max(1, len(trace.steps))
        for step in trace.steps:
            scaled.add_step(replace(
                step,
                compute_time=self._waves * step.compute_time,
                transfer_time=self._waves * step.transfer_time + per_step_swap,
                recompute_time=self._waves * step.recompute_time,
                overhead_time=self._waves * step.overhead_time,
            ))
        return scaled
