"""CLI: render the SLO blame table of an exported observability trace.

Usage::

    python -m repro.obs.report trace.json

``trace.json`` is a Chrome trace-event file written by
:meth:`repro.obs.spans.SpanTracer.export`: its ``otherData`` section
carries the per-class SLO attribution table and the per-request latency
components this report renders.  The trace-event part of the same file
loads in Perfetto — one file serves both the visual and the tabular view.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs.attribution import COMPONENTS, format_blame_table


def render(payload: dict) -> str:
    """The report text for one exported trace payload."""
    other = payload.get("otherData")
    if not isinstance(other, dict) or "requests" not in other:
        raise ValueError(
            "not an observability export: no otherData.requests section "
            "(write the file with SpanTracer.export)"
        )
    lines = []
    table = other.get("slo_attribution")
    if table:
        lines.append(format_blame_table(table))
    else:
        lines.append("No SLO attribution table (serve ran without "
                     "class_slos); per-request components follow.")
    totals = {key: 0.0 for key in COMPONENTS}
    requests = other["requests"]
    for entry in requests.values():
        for key in COMPONENTS:
            totals[key] += entry["components"][key]
    lines.append("")
    lines.append(f"All {len(requests)} completed requests, total seconds "
                 "by component:")
    lines.append("  " + "  ".join(f"{key}={totals[key]:.3f}"
                                  for key in COMPONENTS))
    resilience = other.get("resilience")
    if resilience:
        lines.append("")
        lines.append("Resilience (fault injection):")
        lines.append(
            f"  failures={resilience['num_failures']}  "
            f"retries={resilience['num_retries']}  "
            f"failed={resilience['num_failed']}  "
            f"shed={resilience['num_shed']}")
        lines.append(
            f"  downtime_s={resilience['downtime_s']:.3f}  "
            f"availability={resilience['availability']:.4f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render the per-class SLO blame table of a Chrome "
                    "trace exported by repro.obs.SpanTracer.")
    parser.add_argument("trace", type=pathlib.Path,
                        help="trace JSON written by SpanTracer.export")
    args = parser.parse_args(argv)
    try:
        payload = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 1
    try:
        print(render(payload))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
