"""Simulated-time observability: observers, span traces, metric timelines.

The serving core accepts ``observers=`` on every serve entry point
(:meth:`repro.serving.engine.ContinuousBatchingEngine.serve`,
:meth:`repro.cluster.group.ReplicaGroup.serve`, and the serving sweep's
``observers=`` factory).  This package provides the protocol and the two
stock observers:

* :class:`~repro.obs.observer.Observer` — the no-op base class with one
  callback per simulated-time event (zero overhead when no observers are
  registered);
* :class:`~repro.obs.spans.SpanTracer` — per-request spans (queue,
  prefill, decode, preemption) exported as Chrome trace-event JSON for
  Perfetto, plus the per-class SLO-violation blame table
  (``trace.metadata["slo_attribution"]``);
* :class:`~repro.obs.timeline.MetricsTimeline` — gauges (KV occupancy,
  batch size, queue depth by class, prefix hit rate, preemption rate)
  sampled on a simulated-time interval into a tidy CSV/JSON timeseries.

``python -m repro.obs.report <trace.json>`` renders the blame table of an
exported trace.  See ``docs/observability.md``.
"""

from repro.obs.attribution import (
    blame_table,
    format_blame_table,
    request_components,
)
from repro.obs.observer import Observer, validate_observers
from repro.obs.spans import SpanTracer
from repro.obs.timeline import MetricsTimeline

__all__ = [
    "Observer",
    "SpanTracer",
    "MetricsTimeline",
    "blame_table",
    "format_blame_table",
    "request_components",
    "validate_observers",
]
