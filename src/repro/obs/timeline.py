"""Interval-sampled gauge timeseries over simulated time.

:class:`MetricsTimeline` rides the raw driver stream
(:meth:`~repro.obs.observer.Observer.on_event`): whenever the simulated
clock crosses a sample boundary (multiples of ``interval_s``), it reads
every replica's live gauges — KV occupancy per shard, batch size, queue
depth by SLO class, prefix-cache hit rate, preemption rate — and appends
one **tidy** (long-format) row per gauge::

    {"time_s": 4.0, "replica": 0, "metric": "kv_occupancy", "value": 0.82}

Samples reflect the state strictly *before* the event that crossed the
boundary (discrete-event state is piecewise constant, so that is the
state at the boundary instant).  ``preemption_rate`` is the per-interval
preemption count divided by the interval.  A final sample at the last
event time is appended when the serve finishes, so the timeline always
covers the whole makespan.

Export with :meth:`~MetricsTimeline.to_csv` / :meth:`~MetricsTimeline.to_json`
(tidy rows load directly into pandas / vega / observable) or iterate
:meth:`~MetricsTimeline.rows`.
"""

from __future__ import annotations

import csv
import json
import pathlib

from repro._common import validate_positive
from repro.obs.observer import Observer


class MetricsTimeline(Observer):
    """Observer sampling replica gauges every ``interval_s`` simulated
    seconds.  Single-serve: build a fresh one per serve."""

    def __init__(self, interval_s: float = 1.0) -> None:
        validate_positive(interval_s=interval_s)
        self.interval_s = float(interval_s)
        self._gauges: dict[int, object] = {}
        self._rows: list[dict] = []
        self._next = self.interval_s
        self._last_time = 0.0
        self._preemptions_at_last: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def on_serve_start(self, replica: int, gauges) -> None:
        self._gauges[replica] = gauges
        self._preemptions_at_last[replica] = 0

    def on_event(self, time: float, kind: str, replica: int) -> None:
        while time >= self._next:
            self._sample(self._next)
            self._next += self.interval_s
        if time > self._last_time:
            self._last_time = time

    def finish(self, trace, class_slos: dict | None = None) -> None:
        if self._last_time > 0.0:
            self._sample(self._last_time)

    # ------------------------------------------------------------------ #
    # export surface
    # ------------------------------------------------------------------ #
    def rows(self) -> list[dict]:
        """The sampled rows: ``{"time_s", "replica", "metric", "value"}``."""
        return list(self._rows)

    def to_csv(self, path) -> pathlib.Path:
        """Write the rows as a tidy CSV; returns the path."""
        path = pathlib.Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=("time_s", "replica", "metric", "value"))
            writer.writeheader()
            writer.writerows(self._rows)
        return path

    def to_json(self, path) -> pathlib.Path:
        """Write the rows as a JSON array of objects; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self._rows))
        return path

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sample(self, time: float) -> None:
        for replica in sorted(self._gauges):
            gauges = self._gauges[replica]
            add = self._rows.append

            def row(metric: str, value: float) -> None:
                add({"time_s": time, "replica": replica, "metric": metric,
                     "value": float(value)})

            row("batch_size", gauges.batch_size)
            row("queue_depth", gauges.queue_depth)
            for name, depth in gauges.queue_depth_by_class.items():
                row(f"queue_depth:{name}", depth)
            row("kv_occupancy", gauges.kv_occupancy)
            for shard, occupancy in enumerate(gauges.shard_occupancy):
                row(f"kv_occupancy:shard{shard}", occupancy)
            row("prefix_hit_rate", gauges.prefix_hit_rate)
            preemptions = gauges.num_preemptions
            delta = preemptions - self._preemptions_at_last.get(replica, 0)
            self._preemptions_at_last[replica] = preemptions
            row("preemption_rate", delta / self.interval_s)
