"""Per-request span tracing over the serving event stream.

:class:`SpanTracer` subscribes to every engine hook and reconstructs each
request's lifecycle as a sequence of **spans** in simulated time::

    queue -> admission -> prefill (passes/chunks) -> decode epochs
          -> [preemption swap -> preempted wait -> resume] -> completion

Span boundaries are the exact clocks the engine used, so they reconcile
bit-for-bit with the :class:`~repro.serving.trace.RequestRecord`
timestamps (``queue`` starts at ``arrival_time`` and ends at
``admission_time``; the last span ends at ``completion_time`` — pinned in
``tests/test_obs.py``).

Chrome trace export
-------------------
:meth:`SpanTracer.export` writes the spans as Chrome trace-event JSON —
load the file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
The track layout follows the cluster topology: one *process* per replica,
and inside it one ``engine`` thread carrying the replica-level slices
(prefill passes, prefill chunks, decode epochs as complete ``"X"``
events) plus one thread per SLO class carrying the per-request spans as
nestable async ``"b"``/``"e"`` pairs (async events tolerate the overlap
of concurrently-resident requests).  Timestamps are simulated seconds
scaled to microseconds, Perfetto's native unit.

Attribution
-----------
:meth:`SpanTracer.finish` (called automatically at the end of a serve)
decomposes every completed request's latency into queueing / prefill /
preemption / decode components (:mod:`repro.obs.attribution`) and — when
per-class SLOs are in force — attaches the per-class blame table to
``trace.metadata["slo_attribution"]``.  The exported JSON carries the
same tables under ``otherData`` for ``python -m repro.obs.report``.
"""

from __future__ import annotations

import json
import pathlib

from repro._common import ConfigurationError
from repro.obs.attribution import blame_table, request_components, violations
from repro.obs.observer import Observer
from repro.serving.trace import normalize_class_slos
from repro.workloads.arrivals import SLO_CLASSES

#: Span categories, in lifecycle order.
SPAN_CATEGORIES = ("queue", "prefill", "decode", "preempted")


class _RequestSpans:
    """Mutable per-request span state while its serve is in flight."""

    __slots__ = ("request", "replica", "arrival", "admission", "segments",
                 "cursor", "status", "record", "first_token")

    def __init__(self, request, replica: int, arrival: float) -> None:
        self.request = request
        self.replica = replica
        self.arrival = arrival
        self.admission: float | None = None
        #: Coalesced ``[category, start, end]`` triples, chronological.
        self.segments: list[list] = []
        self.cursor = arrival
        self.status = "queued"
        self.record = None
        self.first_token: float | None = None

    def add(self, category: str, start: float, end: float) -> None:
        segments = self.segments
        if segments and segments[-1][0] == category \
                and segments[-1][2] == start:
            segments[-1][2] = end
        else:
            segments.append([category, start, end])
        self.cursor = end


class SpanTracer(Observer):
    """Observer reconstructing per-request spans from the event hooks.

    Attach to any serve (``engine.serve(..., observers=[tracer])`` or
    ``group.serve(..., observers=[tracer])``); one tracer may span a whole
    cluster serve — spans carry their replica index.  The tracer is
    single-serve: build a fresh one per serve.
    """

    def __init__(self) -> None:
        #: request_id -> in-flight span state.
        self._states: dict[int, _RequestSpans] = {}
        #: replica -> request_ids currently in its running batch.
        self._resident: dict[int, set[int]] = {}
        #: replica -> engine-level ``(name, start, end, args)`` slices.
        self._engine_slices: dict[int, list] = {}
        #: Per-request latency components, filled by :meth:`finish` /
        #: :meth:`export`.
        self.components: dict[int, dict] = {}
        #: The per-class blame table, filled by :meth:`finish` when
        #: per-class SLOs were in force (``None`` otherwise).
        self.attribution: dict | None = None
        self._class_slos: dict = {}
        #: replica -> (fail_time, mode) of an outage still open.
        self._outage_started: dict[int, tuple[float, str]] = {}
        #: Closed ``(replica, start, end, mode)`` outage windows.
        self._outages: list[tuple[int, float, float, str]] = []
        #: Instant fault markers: ``(name, replica, time, args)``.
        self._fault_marks: list[tuple[str, int, float, dict]] = []
        #: The serve's resilience metadata block (fault serves only).
        self._resilience: dict | None = None

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def on_serve_start(self, replica: int, gauges) -> None:
        self._resident.setdefault(replica, set())
        self._engine_slices.setdefault(replica, [])

    def on_arrival(self, replica: int, time: float, request) -> None:
        state = self._states.get(request.request_id)
        if state is not None:
            # Retry re-dispatch after a replica failure: keep the span
            # history from the failed attempt; the request simply queues
            # again on its new replica (the gap shows up as queue time).
            state.replica = replica
            state.status = "queued"
            return
        self._states[request.request_id] = _RequestSpans(
            request, replica, time)

    def on_admission(self, replica: int, time: float, request,
                     prefix_hit: bool = False,
                     resumed: bool = False) -> None:
        state = self._state(request, replica)
        state.add("preempted" if resumed else "queue", state.cursor, time)
        if state.admission is None:
            state.admission = time
        state.status = "resident"
        self._resident.setdefault(replica, set()).add(request.request_id)

    def on_prefill(self, replica: int, start: float, end: float,
                   requests) -> None:
        self._stall_resident(replica, "prefill", start, end)
        self._engine_slices.setdefault(replica, []).append(
            ("prefill", start, end,
             {"batch": len(requests),
              "request_ids": [r.request_id for r in requests]}))

    def on_prefill_chunk(self, replica: int, start: float, end: float,
                         parts) -> None:
        self._stall_resident(replica, "prefill", start, end)
        self._engine_slices.setdefault(replica, []).append(
            ("prefill-chunk", start, end,
             {"parts": [[request.request_id, tokens]
                        for request, tokens in parts]}))

    def on_epoch(self, replica: int, start: float, end: float, kind: str,
                 steps: int, first_token_time: float, batch) -> None:
        for request in batch:
            state = self._state(request, replica)
            state.add("decode", start, end)
            if state.first_token is None:
                state.first_token = first_token_time
        self._engine_slices.setdefault(replica, []).append(
            ("decode-epoch", start, end,
             {"kind": kind, "steps": steps, "batch": len(batch)}))

    def on_preemption(self, replica: int, start: float, end: float,
                      request, mode: str, resident_tokens: int) -> None:
        state = self._state(request, replica)
        state.status = "preempted"
        state.cursor = start
        self._resident.setdefault(replica, set()).discard(
            request.request_id)
        self._engine_slices.setdefault(replica, []).append(
            ("preempt-swap", start, end,
             {"request_id": request.request_id, "mode": mode,
              "resident_tokens": resident_tokens}))

    def on_completion(self, replica: int, record) -> None:
        state = self._states.get(record.request_id)
        if state is None:
            return
        state.record = record
        state.status = "done"
        self._resident.setdefault(replica, set()).discard(
            record.request_id)

    def on_replica_fail(self, replica: int, time: float,
                        mode: str) -> None:
        self._outage_started[replica] = (time, mode)
        self._fault_marks.append(
            ("replica-fail", replica, time, {"mode": mode}))

    def on_replica_recover(self, replica: int, time: float) -> None:
        started = self._outage_started.pop(replica, None)
        if started is not None:
            start, mode = started
            self._outages.append((replica, start, time, mode))
        self._fault_marks.append(("replica-recover", replica, time, {}))

    def on_retry(self, replica: int, time: float, request,
                 attempt: int) -> None:
        self._fault_marks.append(
            ("retry", replica, time,
             {"request_id": request.request_id, "attempt": attempt}))

    def on_shed(self, time: float, request) -> None:
        # Sheds never reach a replica; they mark the first track.
        self._fault_marks.append(
            ("shed", 0, time, {"request_id": request.request_id,
                               "slo_class": request.slo_class}))

    def finish(self, trace, class_slos: dict | None = None) -> None:
        self._resilience = trace.metadata.get("resilience")
        self._class_slos = normalize_class_slos(class_slos)
        self._ensure_components()
        entries = [(state.record, self.components[request_id])
                   for request_id, state in sorted(self._states.items())
                   if state.record is not None]
        self.attribution = blame_table(entries, self._class_slos)
        if self._class_slos:
            trace.metadata["slo_attribution"] = self.attribution

    # ------------------------------------------------------------------ #
    # query surface
    # ------------------------------------------------------------------ #
    @property
    def request_ids(self) -> list[int]:
        return sorted(self._states)

    def spans_for(self, request_id: int) -> list[tuple[str, float, float]]:
        """The request's coalesced ``(category, start, end)`` spans."""
        state = self._states.get(request_id)
        if state is None:
            raise ConfigurationError(
                f"request {request_id} was never observed by this tracer"
            )
        return [tuple(segment) for segment in state.segments]

    # ------------------------------------------------------------------ #
    # Chrome trace export
    # ------------------------------------------------------------------ #
    def to_chrome_trace(self) -> dict:
        """The spans as a Chrome trace-event JSON object (dict form)."""
        scale = 1e6  # simulated seconds -> trace microseconds
        tids = {name: 1 + index for index, name in enumerate(SLO_CLASSES)}
        events: list[dict] = []
        replicas = sorted(set(self._engine_slices)
                          | {state.replica
                             for state in self._states.values()}
                          | {replica for replica, *_ in self._outages}
                          | set(self._outage_started)
                          | {replica
                             for _, replica, _, _ in self._fault_marks})
        for replica in replicas:
            events.append({"ph": "M", "pid": replica, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"replica-{replica}"}})
            events.append({"ph": "M", "pid": replica, "tid": 0,
                           "name": "thread_name",
                           "args": {"name": "engine"}})
            for name, tid in tids.items():
                events.append({"ph": "M", "pid": replica, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": f"requests:{name}"}})
        for replica in replicas:
            for name, start, end, args in self._engine_slices.get(
                    replica, []):
                events.append({"ph": "X", "pid": replica, "tid": 0,
                               "name": name, "cat": "engine",
                               "ts": start * scale,
                               "dur": (end - start) * scale, "args": args})
        # Fault markers (fault serves only): each outage window is a
        # complete slice on the failed replica's engine track, and the
        # individual fail/recover/retry/shed events are instants.
        for replica, start, end, mode in self._outages:
            events.append({"ph": "X", "pid": replica, "tid": 0,
                           "name": "outage", "cat": "fault",
                           "ts": start * scale,
                           "dur": (end - start) * scale,
                           "args": {"mode": mode}})
        for name, replica, time, args in self._fault_marks:
            events.append({"ph": "i", "pid": replica, "tid": 0,
                           "name": name, "cat": "fault",
                           "ts": time * scale, "s": "p", "args": args})
        for request_id, state in sorted(self._states.items()):
            pid = state.replica
            tid = tids[state.request.slo_class]
            span_id = str(request_id)
            end_time = (state.record.completion_time
                        if state.record is not None else state.cursor)
            events.append({"ph": "b", "pid": pid, "tid": tid,
                           "name": f"request-{request_id}",
                           "cat": "request", "id": span_id,
                           "ts": state.arrival * scale,
                           "args": {"slo_class": state.request.slo_class,
                                    "input_len": state.request.input_len,
                                    "output_len":
                                        state.request.output_len}})
            for category, start, end in state.segments:
                events.append({"ph": "b", "pid": pid, "tid": tid,
                               "name": category, "cat": "request",
                               "id": span_id, "ts": start * scale})
                events.append({"ph": "e", "pid": pid, "tid": tid,
                               "name": category, "cat": "request",
                               "id": span_id, "ts": end * scale})
            args = {}
            if state.record is not None:
                args = {"ttft_s": state.record.ttft,
                        "tpot_s": state.record.tpot,
                        "e2e_s": state.record.e2e_latency}
            events.append({"ph": "e", "pid": pid, "tid": tid,
                           "name": f"request-{request_id}",
                           "cat": "request", "id": span_id,
                           "ts": end_time * scale, "args": args})
        self._ensure_components()
        other = {"class_slos": {name: list(slo) for name, slo
                                in self._class_slos.items()},
                 # Without per-class SLOs no violation is definable, so a
                 # blame table would be an all-zeros decoy: export None and
                 # let the report fall back to the raw components.
                 "slo_attribution": (self.attribution if self._class_slos
                                     else None),
                 # Fault serves carry the resilience block alongside the
                 # attribution tables (None on fault-free serves).
                 "resilience": self._resilience,
                 "requests": self._request_payloads()}
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": other}

    def export(self, path) -> pathlib.Path:
        """Write :meth:`to_chrome_trace` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _state(self, request, replica: int) -> _RequestSpans:
        state = self._states.get(request.request_id)
        if state is None:
            # Defensive: an observer attached to a source that bypasses
            # on_arrival still builds a consistent span from arrival_time.
            state = _RequestSpans(request, replica, request.arrival_time)
            self._states[request.request_id] = state
        return state

    def _stall_resident(self, replica: int, category: str, start: float,
                        end: float) -> None:
        """Every resident request spends ``[start, end]`` in ``category``
        (prefill passes and chunks stall the whole batch — decode never
        overlaps them)."""
        for request_id in self._resident.get(replica, ()):
            state = self._states[request_id]
            state.add(category, start, end)

    def _ensure_components(self) -> None:
        for request_id, state in self._states.items():
            if state.record is None or request_id in self.components:
                continue
            self.components[request_id] = request_components(
                state.record, state.segments)

    def _request_payloads(self) -> dict:
        payloads = {}
        for request_id, state in sorted(self._states.items()):
            if state.record is None:
                continue
            record = state.record
            ttft_violated, tpot_violated = violations(record,
                                                      self._class_slos)
            payloads[str(request_id)] = {
                "slo_class": record.slo_class,
                "replica": state.replica,
                "ttft_s": record.ttft,
                "tpot_s": record.tpot,
                "e2e_s": record.e2e_latency,
                "ttft_violated": ttft_violated,
                "tpot_violated": tpot_violated,
                "components": self.components[request_id],
            }
        return payloads
