"""SLO-violation attribution: decompose request latency into components.

A request that misses its class SLO spent its end-to-end latency in four
places, and the blame table says which one dominated:

* **queueing** — arrival to (first) admission, waiting for KV room;
* **prefill** — prefill passes and chunks while resident, *including*
  stalls behind other requests' chunks (decode never runs while a chunk
  backlog drains, so that wait is prefill-induced);
* **preemption** — evicted intervals: the swap-out, the wait for
  re-admission, and the swap-in;
* **decode** — everything else: the decode epochs the request actually
  participated in.

Components are derived from a :class:`~repro.obs.spans.SpanTracer`'s
per-request segments.  ``decode_s`` is computed as the *remainder*
``e2e - queueing - prefill - preemption`` rather than summed from decode
segments, so the four components sum back to each request's end-to-end
latency up to float re-association (a few ulps — addition is not
associative, so bit-exactness is unattainable; the invariant is
property-tested at ``rel=1e-12`` in ``tests/test_obs.py``).  The
remainder also absorbs the clock advances a request merely *waits
through* while resident — e.g. other requests' preemption swap traffic
during an admission round — which is decode-adjacent interference, not
queueing.
"""

from __future__ import annotations

from repro.serving.trace import normalize_class_slos

#: Component keys of one request's latency decomposition, in blame order.
COMPONENTS = ("queueing_s", "prefill_s", "preemption_s", "decode_s")


def request_components(record, segments) -> dict:
    """Decompose one completed request's latency from its span segments.

    ``segments`` is the request's coalesced ``(category, start, end)``
    list (see :meth:`repro.obs.spans.SpanTracer.spans_for`).  Returns the
    four :data:`COMPONENTS` plus ``total_s``; the components sum exactly
    to ``total_s``.
    """
    queueing = record.admission_time - record.arrival_time
    prefill = sum(end - start for category, start, end in segments
                  if category == "prefill")
    preemption = sum(end - start for category, start, end in segments
                     if category == "preempted")
    total = record.e2e_latency
    return {
        "queueing_s": queueing,
        "prefill_s": prefill,
        "preemption_s": preemption,
        "decode_s": total - queueing - prefill - preemption,
        "total_s": total,
    }


def violations(record, class_slos: dict) -> tuple[bool, bool]:
    """``(ttft_violated, tpot_violated)`` of one record against its class.

    ``class_slos`` must already be normalized (``{name: (ttft, tpot)}``);
    a class without an entry — or a ``None`` dimension — is unconstrained.
    """
    ttft_slo, tpot_slo = class_slos.get(record.slo_class, (None, None))
    return (ttft_slo is not None and record.ttft > ttft_slo,
            tpot_slo is not None and record.tpot > tpot_slo)


def blame_table(entries, class_slos: dict | None) -> dict:
    """Aggregate per-request components into the per-class blame table.

    ``entries`` is an iterable of ``(record, components)`` pairs (every
    completed request, with :func:`request_components` output).  Only
    requests violating their class SLO contribute to the summed component
    columns — the table answers "where did the violators' time go", per
    class.  ``dominant`` names each class's largest summed component
    (``None`` when the class had no violations).

    The table is what serves land in ``trace.metadata["slo_attribution"]``
    and what ``python -m repro.obs.report`` renders.
    """
    slos = normalize_class_slos(class_slos)
    classes: dict[str, dict] = {}
    total_violations = 0
    for record, components in entries:
        row = classes.setdefault(record.slo_class, {
            "requests": 0, "violations": 0,
            "ttft_violations": 0, "tpot_violations": 0,
            **{key: 0.0 for key in COMPONENTS}, "total_s": 0.0,
        })
        row["requests"] += 1
        ttft_violated, tpot_violated = violations(record, slos)
        if not (ttft_violated or tpot_violated):
            continue
        row["violations"] += 1
        row["ttft_violations"] += ttft_violated
        row["tpot_violations"] += tpot_violated
        total_violations += 1
        for key in COMPONENTS:
            row[key] += components[key]
        row["total_s"] += components["total_s"]
    for row in classes.values():
        row["dominant"] = (max(COMPONENTS, key=lambda key: row[key])
                           if row["violations"] else None)
    return {
        "class_slos": {name: list(slo) for name, slo in slos.items()},
        "violations": total_violations,
        "classes": dict(sorted(classes.items())),
    }


def format_blame_table(table: dict) -> str:
    """Render a blame table as the aligned text block the CLI prints."""
    lines = [f"SLO violations: {table['violations']}"]
    header = (f"{'class':>12s} {'requests':>9s} {'violations':>11s} "
              f"{'queueing_s':>11s} {'prefill_s':>10s} "
              f"{'preemption_s':>13s} {'decode_s':>9s} {'dominant':>11s}")
    lines.append(header)
    for name, row in table["classes"].items():
        lines.append(
            f"{name:>12s} {row['requests']:>9d} {row['violations']:>11d} "
            f"{row['queueing_s']:>11.3f} {row['prefill_s']:>10.3f} "
            f"{row['preemption_s']:>13.3f} {row['decode_s']:>9.3f} "
            f"{str(row['dominant']):>11s}")
    return "\n".join(lines)
