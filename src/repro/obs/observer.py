"""The observer protocol of the simulated-time observability layer.

The serving core (:mod:`repro.serving.engine`, :mod:`repro.serving.events`,
:mod:`repro.cluster.group`) accepts an ``observers=`` list on every serve
entry point and invokes the callbacks below at each simulated-time event:
arrivals, admissions, prefill passes and chunks, decode epochs, preemption
swaps, completions, router assignments, and prefix-cache traffic.  The
hooks are **passive**: observers receive read-only views of engine state
and must never mutate requests, records, or clocks — a serve with
observers attached produces bit-identical traces to the same serve without
them (pinned in ``tests/test_obs.py``).

Zero overhead when disabled
---------------------------
Every hook site in the engine is guarded by a single ``if`` on the
observer list, so a serve with no observers registered executes exactly
the pre-observability instruction stream — the golden event journals of
``tests/test_serving_events.py`` and ``tests/test_chunked_prefill.py``
stay bit-identical.  With observers attached the only cost is the
callback dispatch itself (benchmarked at <=5% for a no-op observer in
``benchmarks/test_bench_serving.py::test_bench_observer_overhead``).

Observers are event-path only: combining them with a simulator built with
``exact_stepping=True`` raises
:class:`~repro._common.ConfigurationError`, exactly like preemption and
chunked prefill.

Subclass :class:`Observer` and override the callbacks you need; the base
class implements every callback as a no-op, so subclasses stay compatible
when new hooks are added.  Concrete observers shipped with the layer:
:class:`~repro.obs.spans.SpanTracer` (per-request spans, Chrome trace
export, SLO attribution) and :class:`~repro.obs.timeline.MetricsTimeline`
(interval-sampled gauge timeseries).
"""

from __future__ import annotations

from repro._common import ConfigurationError


class Observer:
    """No-op base class for serving observers.

    Times are simulated seconds; ``replica`` is the run's index inside its
    serve (always 0 for a single-engine serve).  ``gauges`` in
    :meth:`on_serve_start` is a live read-only view of the replica's run
    state (see :class:`repro.serving.engine.RunGauges`) that stays valid
    for the whole serve — sample it from any later callback.
    """

    def on_serve_start(self, replica: int, gauges) -> None:
        """A replica run was created; ``gauges`` views its live state."""

    def on_arrival(self, replica: int, time: float, request) -> None:
        """``request`` was routed to ``replica`` and joined its queue."""

    def on_admission(self, replica: int, time: float, request,
                     prefix_hit: bool = False,
                     resumed: bool = False) -> None:
        """``request`` entered the running batch (``resumed`` after a
        preemption, with any retained KV already swapped back in)."""

    def on_prefill(self, replica: int, start: float, end: float,
                   requests) -> None:
        """One batched inline prefill pass over the just-admitted
        ``requests`` (chunking disabled)."""

    def on_prefill_chunk(self, replica: int, start: float, end: float,
                         parts) -> None:
        """One budget-sized prefill chunk; ``parts`` is ``[(request,
        tokens), ...]`` for the participating requests."""

    def on_epoch(self, replica: int, start: float, end: float, kind: str,
                 steps: int, first_token_time: float, batch) -> None:
        """One priced decode epoch over ``batch`` (the fixed running
        composition).  ``kind`` is the boundary reason — ``completion``,
        ``epoch-boundary``, or ``preemption``."""

    def on_preemption(self, replica: int, start: float, end: float,
                      request, mode: str, resident_tokens: int) -> None:
        """``request`` was evicted from the batch; ``[start, end]`` covers
        the swap-out (``end == start`` under ``"recompute"``)."""

    def on_completion(self, replica: int, record) -> None:
        """``record`` (a :class:`~repro.serving.trace.RequestRecord`) was
        written to the trace."""

    def on_assign(self, time: float, request, replica: int) -> None:
        """The cluster router dispatched ``request`` to ``replica``."""

    def on_prefix(self, replica: int, time: float, event: str,
                  session_id, tokens: int) -> None:
        """Prefix-cache traffic: ``event`` is ``"hit"``, ``"miss"``, or
        ``"evict"``; ``tokens`` sizes the entry involved."""

    def on_replica_fail(self, replica: int, time: float,
                        mode: str) -> None:
        """``replica`` went down (fault injection); ``mode`` is
        ``"crash"`` (KV lost instantly) or ``"drain"`` (resident work
        migrated with priced KV transfers)."""

    def on_replica_recover(self, replica: int, time: float) -> None:
        """``replica`` came back up, cold (empty KV, flushed prefix
        cache)."""

    def on_retry(self, replica: int, time: float, request,
                 attempt: int) -> None:
        """``request``, interrupted on failed ``replica``, will re-enter
        the arrival stream at ``time`` as retry number ``attempt``."""

    def on_shed(self, time: float, request) -> None:
        """``request`` was dropped by degraded-mode load shedding (it
        terminates as a ``shed`` record, never reaching a replica)."""

    def on_event(self, time: float, kind: str, replica: int) -> None:
        """Raw driver stream: every event the merged heap processed, in
        order (the same tuples an ``event_journal`` receives)."""

    def on_serve_end(self, replica: int, time: float) -> None:
        """The replica's run drained; ``time`` is its final clock."""

    def finish(self, trace, class_slos: dict | None = None) -> None:
        """The serve finished; ``trace`` is the final (cluster) trace.

        Called once per serve after metadata is written, with the
        normalized per-class SLOs in force — the hook where an observer
        may attach derived artifacts to ``trace.metadata``.
        """


def validate_observers(observers) -> list:
    """Canonicalise an ``observers=`` argument to a list of observers.

    Accepts ``None`` (no observers — the zero-overhead path) or an
    iterable of objects implementing the :class:`Observer` callbacks.
    Duck-typed on purpose (the engine never imports this module), but a
    plainly wrong argument — a bare observer instead of a list, or an
    object with none of the callbacks — fails here rather than deep in a
    serve.
    """
    if observers is None:
        return []
    if not isinstance(observers, (list, tuple)):
        raise ConfigurationError(
            "observers must be a list/tuple of Observer-like objects "
            f"(got {type(observers).__name__}; wrap a single observer "
            "in a list)"
        )
    for observer in observers:
        if not callable(getattr(observer, "on_completion", None)):
            raise ConfigurationError(
                f"observer {observer!r} does not implement the Observer "
                "callbacks (subclass repro.obs.Observer)"
            )
    return list(observers)
