"""Continuous batching of arriving requests over the inference simulators.

The paper evaluates one offline ``(b, s, n)`` batch per run (Section VI);
production serving instead sees requests arrive over time.  This engine
generalizes the Section VI protocol to ORCA/vLLM-style iteration-level
scheduling on top of *any* :class:`~repro.systems.simulator.InferenceSimulator`:
requests are admitted FCFS into the running batch whenever the GPU KV budget
has room, every running request generates one token per iteration, and
requests leave the batch the moment their last token is produced.

Public contract
---------------
:meth:`ContinuousBatchingEngine.serve` consumes a list of
:class:`~repro.workloads.arrivals.Request` (or a bounded-memory
:class:`~repro.workloads.arrivals.RequestStream`) and returns a
:class:`~repro.serving.trace.ServingTrace` containing exactly one
:class:`~repro.serving.trace.RequestRecord` per input request, with ordered
timestamps ``arrival <= admission <= first_token <= completion``.  Requests
are admitted strictly in ``(arrival_time, request_id)`` order (FCFS — the
queue head blocks admission until it fits).  A request whose KV footprint
can never fit raises
:class:`~repro._common.ConfigurationError` up front rather than deadlocking
or silently truncating.  Trace metadata reports the node KV budget, peak
reservation, per-shard budgets/occupancy, epoch/step counts, PCIe traffic,
communication-time share, and (for systems that plan offline) per-serve
scheduler-cache counters.

``record_mode="streaming"`` swaps the retained trace for a
:class:`~repro.serving.sketches.StreamingTrace`: the same summary surface,
O(1) memory, percentiles estimated by P² sketches, and goodput SLOs fixed
at serve time (``ttft_slo_s``/``tpot_slo_s``).  Everything except the
percentile estimates is exact and identical to the retained trace.

Event-driven core
-----------------
``serve`` no longer steps a wall clock.  :class:`EngineRun` re-expresses
one serve as a discrete-event state machine — queue a routed arrival
(``offer``), process the next admission/epoch event (``advance``), drain
after the source closes (``close``/``finalize``) — and
:func:`repro.serving.events.drive` runs one or many such runs off a merged
event heap, so idle time costs nothing and several replicas interleave on
true arrival order (see :mod:`repro.serving.events` for the heap
invariants).  The legacy clock loop is retained behind the simulator's
``exact_stepping=True`` escape hatch and pinned bit-identical to the event
path in ``tests/test_epoch_pricing.py`` and
``tests/test_serving_events.py``.

Sharded KV budgets (multi-GPU)
------------------------------
On a multi-GPU node the engine shards the node KV-token budget one shard
per GPU (shard budgets differ by at most one token and sum exactly to the
node budget).  Tensor parallelism splits every sequence's KV head-wise and
pipeline parallelism splits it layer-wise, so each admitted request
occupies ``ceil(max_seq_len / num_shards)`` tokens on *every* shard in
lockstep; admission requires that per-shard footprint to fit the tightest
shard.  The ceiling makes sharded admission slightly conservative — shards
can never be overfilled by rounding.  With one shard this degenerates to
exactly the single-GPU budget check, so 1-GPU serving traces are
bit-identical to the pre-sharding engine (regression-pinned in
``tests/test_serving_sharded.py``).

Epoch pricing fast path
-----------------------
Decode epochs are priced **vectorized**: one
:meth:`~repro.systems.simulator.InferenceSimulator.epoch_timings` call
prices all steps of a fixed-composition epoch as NumPy arrays, the epoch
boundary (first completion or first admissible arrival) falls out of a
cumulative sum plus ``searchsorted``, and priced epochs are memoized by
``(batch, context, steps, shard shape)`` so repeated epoch shapes —
fixed-length traces, rate sweeps, replica groups sharing a workload mix —
skip planning and pricing entirely.  This is behaviour-preserving: traces
are bit-identical to the per-step loop, which remains available by
constructing the simulator with ``exact_stepping=True`` (mirroring
``SchedulePolicy(exact=True)``) and is pinned against the fast path in
``tests/test_epoch_pricing.py``.

Modelling choices (all deliberate simplifications at the same granularity as
the paper's own cost model):

* **iteration-granular pricing** — each decode iteration is priced by the
  wrapped simulator's per-step formula on an epoch workload ``(b, s, n)``
  with ``b`` the running batch, ``s`` the longest resident context, and
  ``n`` the steps until the next completion; the simulator is
  re-``prepare``-d whenever an epoch shape is priced for the first time.
  For ALISA this re-prepare is served *incrementally* through its
  :class:`~repro.core.schedule_cache.ScheduleCache` — repeated epoch shapes
  reuse their offline schedule, nearby shapes share canonical solutions,
  and new shapes are warm-started from the nearest solved neighbor —
  instead of re-running the full offline grid search per epoch (pass a
  ``SchedulePolicy(exact=True)`` system to restore that behaviour);
* **reservation-based admission** — admitting a request reserves its full
  ``input_len + output_len`` KV footprint against the budget (vLLM's
  conservative no-preemption watermark), so the KV budget is never exceeded
  mid-flight and vLLM-style preemption waves never trigger;
* **inline prefill** — newly admitted requests are prefilled in one batched
  prefill that stalls decoding (ORCA's prioritized prefill iterations; no
  chunked prefill);
* **lockstep shards** — TP/PP shards advance together (collectives
  synchronize every layer or stage), so one clock drives all shards and
  communication time is part of each priced iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, validate_positive
from repro.serving.events import ADMISSION, COMPLETION, EPOCH_BOUNDARY, drive
from repro.serving.sketches import DEFAULT_QUANTILES, StreamingTrace
from repro.serving.trace import RequestRecord, ServingTrace
from repro.systems.memory import MemoryHierarchy
from repro.systems.simulator import EpochTimings, InferenceSimulator
from repro.workloads.arrivals import Request, RequestStream
from repro.workloads.descriptors import Workload


def _accumulate(start: float, values: np.ndarray) -> np.ndarray:
    """Running totals of ``start + values[0] + ... `` (sequential adds).

    ``np.cumsum`` accumulates left to right, so seeding it with ``start``
    reproduces the exact float additions of ``clock += value`` loops —
    which keeps the fast path bit-identical to step-wise accounting.
    """
    return np.cumsum(np.concatenate(((start,), values)))[1:]


@dataclass
class _RunningRequest:
    """Mutable in-flight state of one admitted request."""

    request: Request
    admission_time: float
    first_token_time: float | None = None
    generated: int = 0

    @property
    def context_length(self) -> int:
        return self.request.input_len + self.generated

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.generated


class ContinuousBatchingEngine:
    """Drives an :class:`InferenceSimulator` over an arrival trace.

    Parameters
    ----------
    simulator:
        Any system simulator (ALISA, vLLM, FlexGen, ...); its placement
        policy and cost accounting price every iteration.
    max_batch_size:
        Optional cap on concurrently running requests (``None`` = limited
        only by the KV budget).
    reserve_fraction:
        GPU memory head-room fraction forwarded to
        :meth:`~repro.systems.simulator.InferenceSimulator.gpu_kv_budget_tokens`.
    schedule_cache:
        Optional shared schedule cache injected into simulators that plan
        offline (currently :class:`~repro.core.engine.AlisaSystem`).  Lets
        several engines — e.g. one per arrival rate in a sweep — reuse each
        other's solved epoch shapes.  Ignored by simulators without a
        ``schedule_cache`` attribute.

    The number of KV shards equals the simulator node's ``gpu_count`` (the
    simulator's :class:`~repro.systems.cost.ParallelismSpec` already
    validates that its degree matches).
    """

    def __init__(self, simulator: InferenceSimulator,
                 max_batch_size: int | None = None,
                 reserve_fraction: float = 0.05,
                 schedule_cache=None) -> None:
        if max_batch_size is not None:
            validate_positive(max_batch_size=max_batch_size)
        self.simulator = simulator
        self.max_batch_size = max_batch_size
        self.reserve_fraction = reserve_fraction
        self.num_shards = simulator.hardware.gpu_count
        if schedule_cache is not None:
            if not hasattr(simulator, "schedule_cache"):
                raise ConfigurationError(
                    f"simulator {simulator.name!r} does not plan offline and "
                    "cannot adopt a schedule cache"
                )
            simulator.schedule_cache = schedule_cache
        # Pricing caches, engine state so they survive across serve() calls
        # (a rate sweep reuses one engine per configuration).  Prefill plans
        # are deterministic per workload shape; priced epochs are
        # deterministic per (b, s, n, shard shape).  ReplicaGroup shares
        # both across replicas whose simulators price identically — see
        # adopt_pricing_caches.
        self._prefill_plans: dict[tuple[int, int, int], object] = {}
        self._epoch_cache: dict[tuple, EpochTimings] = {}
        self._epoch_hits = 0
        self._epoch_misses = 0

    def adopt_pricing_caches(self, other: "ContinuousBatchingEngine",
                             share_epochs: bool = True) -> None:
        """Share prefill-plan (and optionally priced-epoch) caches.

        Only valid when both engines' simulators have equal
        :meth:`~repro.systems.simulator.InferenceSimulator.pricing_signature`
        and the engines use the same admission knobs — the caller
        (:class:`~repro.cluster.group.ReplicaGroup`) checks this, and
        passes ``share_epochs=False`` for simulators whose priced epochs
        are not pure functions of the shape
        (:meth:`~repro.systems.simulator.InferenceSimulator.pricing_is_shape_pure`).
        """
        self._prefill_plans = other._prefill_plans
        if share_epochs:
            self._epoch_cache = other._epoch_cache

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def kv_budget_tokens(self, requests: list[Request]) -> int:
        """Total KV tokens available across all concurrent sequences.

        Derived from the simulator's single-sequence budget (KV bytes scale
        linearly with batch size), so systems with compressed KV caches
        (ALISA's INT8) can admit proportionally more concurrent requests.
        """
        if not requests:
            raise ConfigurationError(
                "kv_budget_tokens needs at least one request to size its probe"
            )
        return self.kv_budget_tokens_for_bounds(
            max(r.input_len for r in requests),
            max(r.output_len for r in requests))

    def kv_budget_tokens_for_bounds(self, max_input_len: int,
                                    max_output_len: int) -> int:
        """KV budget probed from length *bounds* instead of a request list.

        The budget depends on the probe's maximum lengths (activation
        bytes scale with the prompt length), so streams and event-driven
        runs — which never materialize their request lists — probe with
        the same bounds a list probe would reach.
        """
        probe = Workload(
            batch_size=1,
            input_len=max_input_len,
            output_len=max_output_len,
            name="serving-probe",
        )
        return self.simulator.gpu_kv_budget_tokens(probe, self.reserve_fraction)

    def shard_budgets(self, node_budget_tokens: int) -> list[int]:
        """Per-shard KV-token budgets (one shard per GPU).

        The node budget is split as evenly as integers allow: shard budgets
        differ by at most one token and always sum exactly to the node
        budget, so no capacity is lost (or invented) by sharding.
        """
        shards = self.num_shards
        base, remainder = divmod(node_budget_tokens, shards)
        return [base + (1 if i < remainder else 0) for i in range(shards)]

    def shard_footprint(self, request: Request) -> int:
        """KV tokens ``request`` occupies on *each* shard once admitted.

        TP shards a sequence's KV head-wise and PP layer-wise; either way
        every shard holds an equal slice, rounded up so admission can never
        overfill a shard.
        """
        return -(-request.max_seq_len // self.num_shards)

    def _fits(self, request: Request, running: list[_RunningRequest],
              shard_reserved_tokens: int, shard_limit_tokens: int) -> bool:
        if (self.max_batch_size is not None
                and len(running) >= self.max_batch_size):
            return False
        return (shard_reserved_tokens + self.shard_footprint(request)
                <= shard_limit_tokens)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, requests, record_mode: str = "full",
              ttft_slo_s: float | None = None,
              tpot_slo_s: float | None = None):
        """Simulate serving ``requests`` and return the serving trace.

        ``requests`` is a list of :class:`Request` or a
        :class:`~repro.workloads.arrivals.RequestStream` (bounded memory:
        the stream is consumed one arrival at a time and never
        materialized).  ``record_mode="full"`` (default) returns a
        :class:`ServingTrace` with one retained record per request;
        ``"streaming"`` returns a
        :class:`~repro.serving.sketches.StreamingTrace` with the same
        summary surface in O(1) memory — ``ttft_slo_s``/``tpot_slo_s`` fix
        the goodput SLOs the streaming trace will answer for (ignored in
        full mode, where goodput is computed from the retained records).

        The default path is event-driven (:class:`EngineRun` +
        :func:`~repro.serving.events.drive`); a simulator built with
        ``exact_stepping=True`` serves through the retained clock-stepped
        loop instead, which is pinned bit-identical.
        """
        trace = self.make_trace(record_mode, ttft_slo_s, tpot_slo_s)
        if isinstance(requests, RequestStream):
            if self.simulator.exact_stepping:
                raise ConfigurationError(
                    "exact_stepping replays the retained clock loop over a "
                    "materialized request list; serve a RequestStream with "
                    "the event-driven default instead"
                )
            max_input, max_output = requests.length_bounds
            run = self.start_run(trace, max_input_len=max_input,
                                 max_output_len=max_output)
            drive(iter(requests), [run], lambda request: 0)
            return run.finalize()
        if not requests:
            trace.metadata.update(kv_budget_tokens=0, peak_reserved_tokens=0,
                                  num_epochs=0, num_decode_steps=0,
                                  pcie_bytes=0.0, shards=[],
                                  comm_time_s=0.0, comm_time_share=0.0)
            return trace
        if self.simulator.exact_stepping:
            return self._serve_clock_loop(requests, trace)
        run = self.start_run(
            trace,
            max_input_len=max(r.input_len for r in requests),
            max_output_len=max(r.output_len for r in requests))
        for request in requests:  # legacy contract: OOM raises up front
            run.check_admissible(request)
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_time, r.request_id))
        drive(ordered, [run], lambda request: 0)
        return run.finalize()

    def make_trace(self, record_mode: str, ttft_slo_s: float | None = None,
                   tpot_slo_s: float | None = None, quantiles=None):
        """Empty trace of the requested ``record_mode``, base metadata set.

        ``quantiles`` (streaming mode only) overrides the percentile ranks
        the streaming trace sketches; ``None`` keeps the defaults.  The
        cluster layer passes ``quantiles=()`` for its per-replica sinks,
        whose summaries need only counts and totals — that disables the
        sketches entirely.
        """
        parallelism = self.simulator.parallelism
        metadata = {"hardware": self.simulator.hardware.name,
                    "kv_dtype": self.simulator.kv_dtype,
                    "parallelism": {"mode": parallelism.mode,
                                    "degree": parallelism.degree,
                                    "label": parallelism.label},
                    "record_mode": record_mode}
        if record_mode == "full":
            return ServingTrace(system=self.simulator.name,
                                model=self.simulator.config.name,
                                metadata=metadata)
        if record_mode == "streaming":
            return StreamingTrace(system=self.simulator.name,
                                  model=self.simulator.config.name,
                                  metadata=metadata,
                                  quantiles=(DEFAULT_QUANTILES
                                             if quantiles is None
                                             else quantiles),
                                  ttft_slo_s=ttft_slo_s,
                                  tpot_slo_s=tpot_slo_s)
        raise ConfigurationError(
            f"unknown record_mode {record_mode!r}; known: ['full', "
            f"'streaming']"
        )

    def start_run(self, trace, max_input_len: int | None = None,
                  max_output_len: int | None = None,
                  observer=None) -> "EngineRun":
        """Begin one event-driven serve over this engine.

        ``max_input_len``/``max_output_len`` bound the lengths of every
        request the run will be offered — they size the KV-budget probe
        exactly like :meth:`kv_budget_tokens` does for a list.  ``None``
        builds an idle run that may never be offered a request (a replica a
        routing policy starved; it finalizes to the empty-trace metadata).
        ``observer`` is an extra per-record sink called after the trace
        observes each completion (the cluster layer's streaming fan-out).
        Drive the run (alone or merged with others) through
        :func:`repro.serving.events.drive`, then call
        :meth:`EngineRun.finalize`.
        """
        if max_input_len is None or max_output_len is None:
            budget = 0
        else:
            budget = self.kv_budget_tokens_for_bounds(max_input_len,
                                                      max_output_len)
        return EngineRun(self, trace, budget, observer=observer)

    def _serve_clock_loop(self, requests: list[Request], trace):
        """Retained clock-stepped serving loop (``exact_stepping=True``).

        The pre-event-loop implementation, kept as the semantic reference:
        the event-driven path is pinned bit-identical to it.
        """
        solver_before = self.simulator.schedule_stats()
        budget = self.kv_budget_tokens(requests)
        shard_budgets = self.shard_budgets(budget)
        shard_limit = min(shard_budgets)
        for request in requests:
            footprint = self.shard_footprint(request)
            if footprint > shard_limit:
                raise ConfigurationError(
                    f"request {request.request_id} needs {footprint} KV "
                    f"tokens on each of {self.num_shards} shard(s) but the "
                    f"tightest shard budget is {shard_limit} (node budget "
                    f"{budget}); it can never be admitted"
                )

        pending = deque(sorted(requests,
                               key=lambda r: (r.arrival_time, r.request_id)))
        running: list[_RunningRequest] = []
        epoch_hits_before = self._epoch_hits
        epoch_misses_before = self._epoch_misses
        memory = MemoryHierarchy.from_hardware(self.simulator.hardware)
        clock = 0.0
        reserved = 0          # node-level KV tokens across all shards
        shard_reserved = 0    # per-shard tokens (shards fill in lockstep)
        peak_reserved = 0
        peak_shard_reserved = 0
        num_epochs = 0
        num_steps = 0
        comm_time = 0.0

        while pending or running:
            # FCFS admission: the queue head blocks until it fits, so
            # requests always enter the batch in arrival order.
            admitted: list[Request] = []
            while (pending and pending[0].arrival_time <= clock
                   and self._fits(pending[0], running, shard_reserved,
                                  shard_limit)):
                request = pending.popleft()
                running.append(_RunningRequest(request, admission_time=clock))
                reserved += request.max_seq_len
                shard_reserved += self.shard_footprint(request)
                admitted.append(request)
            peak_reserved = max(peak_reserved, reserved)
            peak_shard_reserved = max(peak_shard_reserved, shard_reserved)

            if not running:
                clock = max(clock, pending[0].arrival_time)
                continue

            if admitted:
                prefill, prefill_comm = self._prefill_time(admitted, memory)
                clock += prefill
                comm_time += prefill_comm

            num_epochs += 1
            clock, steps, epoch_comm = self._decode_epoch(
                running, pending, shard_reserved, shard_limit, clock, memory,
                trace)
            num_steps += steps
            comm_time += epoch_comm
            reserved = sum(r.request.max_seq_len for r in running)
            shard_reserved = sum(self.shard_footprint(r.request)
                                 for r in running)

        trace.metadata.update(
            kv_budget_tokens=budget, peak_reserved_tokens=peak_reserved,
            num_epochs=num_epochs, num_decode_steps=num_steps,
            pcie_bytes=memory.link.total_bytes,
            # One entry per shard even though TP/PP shards fill in lockstep
            # today (identical peaks): the per-shard shape is the interface
            # data-parallel placement (see ROADMAP) will populate with
            # genuinely divergent values.
            shards=[
                {"shard": index, "budget_tokens": shard_budget,
                 "peak_reserved_tokens": peak_shard_reserved,
                 "peak_occupancy": (peak_shard_reserved / shard_budget
                                    if shard_budget > 0 else 0.0)}
                for index, shard_budget in enumerate(shard_budgets)
            ],
            comm_time_s=comm_time,
            comm_time_share=comm_time / clock if clock > 0 else 0.0,
        )
        if not self.simulator.exact_stepping:
            # How many decode epochs were priced fresh vs served from the
            # epoch-price memo (cumulative counters, per-serve deltas).
            trace.metadata["epoch_cache"] = {
                "hits": self._epoch_hits - epoch_hits_before,
                "misses": self._epoch_misses - epoch_misses_before,
            }
        solver_after = self.simulator.schedule_stats()
        if solver_after:
            # Per-serve increments: how the per-epoch re-prepares were served
            # (exact/canonical cache hits vs warm-started vs full solves).
            trace.metadata["scheduler"] = {
                key: value - solver_before.get(key, 0)
                for key, value in solver_after.items()
            }
        return trace

    # ------------------------------------------------------------------ #
    def _prefill_time(self, admitted: list[Request],
                      memory: MemoryHierarchy) -> tuple[float, float]:
        """Batched prefill of the newly admitted requests.

        Returns ``(wall_clock_time, communication_time)`` — the latter is
        the interconnect share of the prefill pass (0 on a single GPU).
        Prefill plans are deterministic per workload shape, so they are
        cached on the engine across admission events *and* serve() calls:
        repeated shapes (every admission in a fixed-length trace, every
        rate of a sweep) skip the simulator's ``prepare`` — for ALISA a
        full offline schedule search — and only re-price the plan.
        """
        workload = Workload(
            batch_size=len(admitted),
            input_len=max(r.input_len for r in admitted),
            output_len=max(r.output_len for r in admitted),
            name="serving-prefill",
        )
        key = (workload.batch_size, workload.input_len, workload.output_len)
        plan = self._prefill_plans.get(key)
        if plan is None:
            self.simulator.prepare(workload)
            plan = self.simulator.plan_prefill(workload)
            self._prefill_plans[key] = plan
        time = self.simulator.prefill_timing(plan, workload, memory)
        comm = self.simulator.parallel_comm_time(workload,
                                                 query_len=workload.input_len)
        return time, comm

    def _decode_epoch(self, running: list[_RunningRequest],
                      pending: deque, shard_reserved: int, shard_limit: int,
                      clock: float, memory: MemoryHierarchy,
                      sink) -> tuple[float, int, float]:
        """Decode with fixed batch composition until a completion or an
        admissible arrival ends the epoch.

        The epoch is priced through the vectorized fast path (memoized per
        epoch shape) unless the simulator was built with
        ``exact_stepping=True``, which restores the per-step Python loop;
        both are bit-identical (pinned in ``tests/test_epoch_pricing.py``).
        Returns ``(clock, steps, communication_time)``.
        """
        workload = Workload(
            batch_size=len(running),
            input_len=max(r.context_length for r in running),
            output_len=min(r.remaining for r in running),
            name="serving-decode",
        )
        if self.simulator.exact_stepping:
            clock, steps, first_clock, comm_per_step = \
                self._price_epoch_stepwise(workload, running, pending,
                                           shard_reserved, shard_limit,
                                           clock, memory)
        else:
            clock, steps, first_clock, comm_per_step = \
                self._price_epoch_fast(workload, running, pending,
                                       shard_reserved, shard_limit,
                                       clock, memory)
        self._finish_epoch(running, sink, steps, first_clock, clock)
        return clock, steps, steps * comm_per_step

    def _price_epoch_fast(self, workload: Workload,
                          running: list[_RunningRequest], pending: deque,
                          shard_reserved: int, shard_limit: int,
                          clock: float, memory: MemoryHierarchy,
                          ) -> tuple[float, int, float, float]:
        """Vectorized epoch pricing with per-shape memoization.

        One ``epoch_timings`` call prices all ``output_len`` steps as
        arrays; the epoch boundary falls out of a cumulative sum over the
        timing vector plus a ``searchsorted`` against the queue head's
        arrival time — no per-step Python loop.  Priced epochs are keyed by
        ``(batch, context, steps, shard shape)``, so repeated epoch shapes
        (the common case in fixed-length traces and rate sweeps) skip
        planning *and* pricing — including the simulator's per-epoch
        ``prepare``, which for ALISA is the offline schedule search.
        """
        key = (workload.batch_size, workload.input_len, workload.output_len,
               self.simulator.parallelism.label)
        timings = self._epoch_cache.get(key)
        if timings is None:
            self._epoch_misses += 1
            self.simulator.prepare(workload)
            # Re-place the already-resident context; its prefill was charged
            # when each request was admitted, so only placement state is
            # initialized.
            self.simulator.plan_prefill(workload)
            timings = self.simulator.epoch_timings(workload, memory.link)
            self._epoch_cache[key] = timings
        else:
            self._epoch_hits += 1
        comm_per_step = float(timings.comm_times[0])

        num_steps = workload.output_len
        clocks = _accumulate(clock, timings.total_times)
        steps = num_steps
        if pending and self._fits(pending[0], running, shard_reserved,
                                  shard_limit):
            # First step whose post-step clock reaches the queue head's
            # arrival; the final step always completes requests first, so
            # only earlier steps can end the epoch by admission.
            cut = int(np.searchsorted(clocks[:num_steps - 1],
                                      pending[0].arrival_time, side="left"))
            if cut < num_steps - 1:
                steps = cut + 1
        # Replay the steps' PCIe traffic onto the serve-level link ledger
        # (sequential adds, identical to per-step recording).
        link = memory.link
        link.bytes_host_to_device = float(
            _accumulate(link.bytes_host_to_device,
                        timings.h2d_bytes[:steps])[-1])
        link.bytes_device_to_host = float(
            _accumulate(link.bytes_device_to_host,
                        timings.d2h_bytes[:steps])[-1])
        return (float(clocks[steps - 1]), steps, float(clocks[0]),
                comm_per_step)

    def _price_epoch_stepwise(self, workload: Workload,
                              running: list[_RunningRequest], pending: deque,
                              shard_reserved: int, shard_limit: int,
                              clock: float, memory: MemoryHierarchy,
                              ) -> tuple[float, int, float, float]:
        """Legacy per-step pricing loop (``exact_stepping=True``)."""
        self.simulator.prepare(workload)
        self.simulator.plan_prefill(workload)
        comm_per_step = self.simulator.parallel_comm_time(workload)
        steps = 0
        first_clock = None
        for step in range(workload.output_len):
            plan = self.simulator.plan_decode_step(step, workload)
            timing = self.simulator.step_timing(plan, step, workload, memory)
            clock += timing.total_time
            steps += 1
            if first_clock is None:
                first_clock = clock
            if steps == workload.output_len:
                break  # the final step completes requests; epoch over
            if (pending and pending[0].arrival_time <= clock
                    and self._fits(pending[0], running, shard_reserved,
                                   shard_limit)):
                break
        return clock, steps, first_clock, comm_per_step

    def _finish_epoch(self, running: list[_RunningRequest],
                      sink, steps: int, first_clock: float,
                      end_clock: float) -> None:
        """Apply an epoch's effects to the batch and record completions.

        All running requests decrement uniformly, so the finishers are
        exactly the requests whose remaining output equalled the steps
        taken, and first tokens land at the epoch's first cumulative clock
        — no per-step scan of the batch is needed.  ``sink`` is anything
        with ``observe(record)``: a :class:`~repro.serving.trace.ServingTrace`,
        a :class:`~repro.serving.sketches.StreamingTrace`, or an
        :class:`EngineRun` fanning records out to both a trace and a
        cluster-level sink.
        """
        for request in running:
            request.generated += steps
            if request.first_token_time is None:
                request.first_token_time = first_clock
        finished = [r for r in running if r.remaining <= 0]
        for done in finished:
            sink.observe(RequestRecord(
                request_id=done.request.request_id,
                arrival_time=done.request.arrival_time,
                admission_time=done.admission_time,
                first_token_time=done.first_token_time,
                completion_time=end_clock,
                input_len=done.request.input_len,
                output_len=done.request.output_len,
            ))
        if finished:
            # The epoch ends here; serve() recomputes the reservation
            # totals from the surviving batch before the next admission.
            running[:] = [r for r in running if r.remaining > 0]


class EngineRun:
    """One serve over one engine, as a discrete-event state machine.

    Re-expresses the retained clock loop event by event so that
    :func:`repro.serving.events.drive` can interleave many runs on a merged
    heap.  The life cycle is: ``offer(request)`` for every routed arrival
    (in ``(arrival_time, request_id)`` order), ``advance()`` whenever the
    driver pops this run's scheduled event, ``close()`` once the arrival
    source is exhausted, and ``finalize()`` after the loop drains — which
    writes the exact metadata the clock loop writes and returns the trace.

    State-machine invariants (they are what keep the event path
    bit-identical to the clock loop):

    * at most one scheduled event, and it is immutable once priced —
      arrivals only append behind the FCFS queue head the pricing used;
    * a decode epoch is priced only when the next queue head is known
      (queue non-empty or run closed); otherwise the run *blocks* and
      consumes no work until ``offer``/``close`` unblocks it;
    * an idle run with a queued head wakes exactly at
      ``max(clock, head.arrival_time)`` (the clock loop's idle jump);
    * admission, prefill, epoch pricing, and reservation accounting reuse
      the engine's own methods — the two paths share every formula.
    """

    def __init__(self, engine: ContinuousBatchingEngine, trace,
                 budget_tokens: int, observer=None) -> None:
        self.engine = engine
        self.trace = trace
        self._observer = observer
        self._budget = budget_tokens
        self._shard_budgets = engine.shard_budgets(budget_tokens)
        self._shard_limit = min(self._shard_budgets)
        self._memory = MemoryHierarchy.from_hardware(engine.simulator.hardware)
        self._pending: deque[Request] = deque()
        self._running: list[_RunningRequest] = []
        self._clock = 0.0
        self._reserved = 0
        self._shard_reserved = 0
        self._peak_reserved = 0
        self._peak_shard_reserved = 0
        self._num_epochs = 0
        self._num_steps = 0
        self._comm_time = 0.0
        self._offered = 0
        self._closed = False
        self._finalized = False
        #: The scheduled event: ``(ADMISSION, time)`` or
        #: ``(kind, end_clock, steps, first_clock, comm_per_step)``.
        self._event: tuple | None = None
        self._last_key: tuple[float, int] | None = None
        # Per-run deltas of the engine/simulator-lifetime counters.
        self._solver_before = engine.simulator.schedule_stats()
        self._epoch_hits_before = engine._epoch_hits
        self._epoch_misses_before = engine._epoch_misses

    # ------------------------------------------------------------------ #
    # record sink (fans out to the trace and an optional cluster sink)
    # ------------------------------------------------------------------ #
    def observe(self, record: RequestRecord) -> None:
        self.trace.observe(record)
        if self._observer is not None:
            self._observer(record)

    # ------------------------------------------------------------------ #
    # driver interface (see repro.serving.events.ReplicaRun)
    # ------------------------------------------------------------------ #
    def check_admissible(self, request: Request) -> None:
        """Raise if ``request`` can never fit this run's shard budgets."""
        footprint = self.engine.shard_footprint(request)
        if footprint > self._shard_limit:
            raise ConfigurationError(
                f"request {request.request_id} needs {footprint} KV "
                f"tokens on each of {self.engine.num_shards} shard(s) but "
                f"the tightest shard budget is {self._shard_limit} (node "
                f"budget {self._budget}); it can never be admitted"
            )

    def offer(self, request: Request) -> tuple[float, str] | None:
        """Queue one routed arrival; return a newly scheduled event."""
        if self._closed:
            raise ConfigurationError(
                "cannot offer a request to a closed run"
            )
        key = (request.arrival_time, request.request_id)
        if self._last_key is not None and key < self._last_key:
            raise ConfigurationError(
                f"requests must be offered in (arrival_time, request_id) "
                f"order; got {key} after {self._last_key}"
            )
        self._last_key = key
        self.check_admissible(request)
        self._pending.append(request)
        self._offered += 1
        if self._event is None:
            # A queued arrival can only unblock an idle or head-starved
            # run; an already-scheduled event is never affected (it was
            # priced against the queue head, and this request is behind it).
            return self._schedule()
        return None

    def advance(self) -> tuple[float, str] | None:
        """Process the scheduled event; return the next one (if any)."""
        if self._event is None:
            raise ConfigurationError("run has no scheduled event to advance")
        event, self._event = self._event, None
        if event[0] == ADMISSION:
            self._clock = max(self._clock, event[1])
        else:
            _, end, steps, first, comm_per_step = event
            self._apply_epoch(end, steps, first, comm_per_step)
        return self._cycle()

    def close(self) -> tuple[float, str] | None:
        """No further arrivals: unblock a head-starved run, mark closed."""
        if self._closed:
            return None
        self._closed = True
        if self._event is None and self._running:
            # The run was blocked awaiting its next queue head; it now
            # knows no head is coming and can price its remaining epochs.
            return self._schedule()
        return None

    @property
    def finished(self) -> bool:
        return (self._closed and self._event is None
                and not self._pending and not self._running)

    # ------------------------------------------------------------------ #
    # internals: the clock loop's iteration, split at its wait points
    # ------------------------------------------------------------------ #
    def _cycle(self) -> tuple[float, str] | None:
        """One admission round at the current clock, then (re)schedule."""
        engine = self.engine
        pending, running = self._pending, self._running
        admitted: list[Request] = []
        while (pending and pending[0].arrival_time <= self._clock
               and engine._fits(pending[0], running, self._shard_reserved,
                                self._shard_limit)):
            request = pending.popleft()
            running.append(_RunningRequest(request,
                                           admission_time=self._clock))
            self._reserved += request.max_seq_len
            self._shard_reserved += engine.shard_footprint(request)
            admitted.append(request)
        if self._reserved > self._peak_reserved:
            self._peak_reserved = self._reserved
        if self._shard_reserved > self._peak_shard_reserved:
            self._peak_shard_reserved = self._shard_reserved
        if admitted:
            prefill, prefill_comm = engine._prefill_time(admitted,
                                                         self._memory)
            self._clock += prefill
            self._comm_time += prefill_comm
        return self._schedule()

    def _schedule(self) -> tuple[float, str] | None:
        """Compute the run's next event from its state (None = wait)."""
        if not self._running:
            if self._pending:
                # Idle with a queued head: wake at its arrival instant.
                time = max(self._clock, self._pending[0].arrival_time)
                self._event = (ADMISSION, time)
                return (time, ADMISSION)
            return None  # awaiting offers, or finished once closed
        if not self._pending and not self._closed:
            return None  # blocked: the epoch cut needs the next queue head
        return self._schedule_epoch()

    def _schedule_epoch(self) -> tuple[float, str]:
        engine = self.engine
        running, pending = self._running, self._pending
        workload = Workload(
            batch_size=len(running),
            input_len=max(r.context_length for r in running),
            output_len=min(r.remaining for r in running),
            name="serving-decode",
        )
        self._num_epochs += 1
        price = (engine._price_epoch_stepwise
                 if engine.simulator.exact_stepping
                 else engine._price_epoch_fast)
        end, steps, first, comm_per_step = price(
            workload, running, pending, self._shard_reserved,
            self._shard_limit, self._clock, self._memory)
        # The final step of a full epoch completes its shortest requests;
        # a shorter epoch was cut by the queue head becoming admissible.
        kind = COMPLETION if steps == workload.output_len else EPOCH_BOUNDARY
        self._event = (kind, end, steps, first, comm_per_step)
        return (end, kind)

    def _apply_epoch(self, end: float, steps: int, first: float,
                     comm_per_step: float) -> None:
        engine = self.engine
        self._clock = end
        self._num_steps += steps
        self._comm_time += steps * comm_per_step
        engine._finish_epoch(self._running, self, steps, first, end)
        self._reserved = sum(r.request.max_seq_len for r in self._running)
        self._shard_reserved = sum(engine.shard_footprint(r.request)
                                   for r in self._running)

    # ------------------------------------------------------------------ #
    def finalize(self):
        """Write the serve metadata and return the trace.

        Produces exactly the metadata the retained clock loop writes —
        including the empty-trace shape for a run that was never offered a
        request (a replica the routing policy starved).
        """
        if not self.finished:
            raise ConfigurationError(
                "finalize() before the event loop drained this run"
            )
        if self._finalized:
            return self.trace
        self._finalized = True
        engine = self.engine
        trace = self.trace
        if self._offered == 0:
            trace.metadata.update(kv_budget_tokens=0, peak_reserved_tokens=0,
                                  num_epochs=0, num_decode_steps=0,
                                  pcie_bytes=0.0, shards=[],
                                  comm_time_s=0.0, comm_time_share=0.0)
            return trace
        trace.metadata.update(
            kv_budget_tokens=self._budget,
            peak_reserved_tokens=self._peak_reserved,
            num_epochs=self._num_epochs,
            num_decode_steps=self._num_steps,
            pcie_bytes=self._memory.link.total_bytes,
            shards=[
                {"shard": index, "budget_tokens": shard_budget,
                 "peak_reserved_tokens": self._peak_shard_reserved,
                 "peak_occupancy": (self._peak_shard_reserved / shard_budget
                                    if shard_budget > 0 else 0.0)}
                for index, shard_budget in enumerate(self._shard_budgets)
            ],
            comm_time_s=self._comm_time,
            comm_time_share=(self._comm_time / self._clock
                             if self._clock > 0 else 0.0),
        )
        if not engine.simulator.exact_stepping:
            trace.metadata["epoch_cache"] = {
                "hits": engine._epoch_hits - self._epoch_hits_before,
                "misses": engine._epoch_misses - self._epoch_misses_before,
            }
        solver_after = engine.simulator.schedule_stats()
        if solver_after:
            trace.metadata["scheduler"] = {
                key: value - self._solver_before.get(key, 0)
                for key, value in solver_after.items()
            }
        return trace
