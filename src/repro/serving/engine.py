"""Continuous batching of arriving requests over the inference simulators.

The paper evaluates one offline ``(b, s, n)`` batch per run (Section VI);
production serving instead sees requests arrive over time.  This engine
generalizes the Section VI protocol to ORCA/vLLM-style iteration-level
scheduling on top of *any* :class:`~repro.systems.simulator.InferenceSimulator`:
requests are admitted FCFS into the running batch whenever the GPU KV budget
has room, every running request generates one token per iteration, and
requests leave the batch the moment their last token is produced.

Modelling choices (all deliberate simplifications at the same granularity as
the paper's own cost model):

* **iteration-granular pricing** — each decode iteration is priced by the
  wrapped simulator's :meth:`plan_decode_step`/:meth:`step_timing` on an
  epoch workload ``(b, s, n)`` with ``b`` the running batch, ``s`` the
  longest resident context, and ``n`` the steps until the next completion;
  the simulator is re-``prepare``-d whenever batch composition changes.
  For ALISA this re-prepare is served *incrementally* through its
  :class:`~repro.core.schedule_cache.ScheduleCache` — repeated epoch shapes
  reuse their offline schedule, nearby shapes share canonical solutions,
  and new shapes are warm-started from the nearest solved neighbor —
  instead of re-running the full offline grid search per epoch (pass a
  ``SchedulePolicy(exact=True)`` system to restore that behaviour);
* **reservation-based admission** — admitting a request reserves its full
  ``input_len + output_len`` KV footprint against the budget (vLLM's
  conservative no-preemption watermark), so the KV budget is never exceeded
  mid-flight and vLLM-style preemption waves never trigger;
* **inline prefill** — newly admitted requests are prefilled in one batched
  prefill that stalls decoding (ORCA's prioritized prefill iterations; no
  chunked prefill).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro._common import ConfigurationError, validate_positive
from repro.serving.trace import RequestRecord, ServingTrace
from repro.systems.memory import MemoryHierarchy
from repro.systems.simulator import InferenceSimulator
from repro.workloads.arrivals import Request
from repro.workloads.descriptors import Workload


@dataclass
class _RunningRequest:
    """Mutable in-flight state of one admitted request."""

    request: Request
    admission_time: float
    first_token_time: float | None = None
    generated: int = 0

    @property
    def context_length(self) -> int:
        return self.request.input_len + self.generated

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.generated


class ContinuousBatchingEngine:
    """Drives an :class:`InferenceSimulator` over an arrival trace.

    Parameters
    ----------
    simulator:
        Any system simulator (ALISA, vLLM, FlexGen, ...); its placement
        policy and cost accounting price every iteration.
    max_batch_size:
        Optional cap on concurrently running requests (``None`` = limited
        only by the KV budget).
    reserve_fraction:
        GPU memory head-room fraction forwarded to
        :meth:`~repro.systems.simulator.InferenceSimulator.gpu_kv_budget_tokens`.
    schedule_cache:
        Optional shared schedule cache injected into simulators that plan
        offline (currently :class:`~repro.core.engine.AlisaSystem`).  Lets
        several engines — e.g. one per arrival rate in a sweep — reuse each
        other's solved epoch shapes.  Ignored by simulators without a
        ``schedule_cache`` attribute.
    """

    def __init__(self, simulator: InferenceSimulator,
                 max_batch_size: int | None = None,
                 reserve_fraction: float = 0.05,
                 schedule_cache=None) -> None:
        if max_batch_size is not None:
            validate_positive(max_batch_size=max_batch_size)
        self.simulator = simulator
        self.max_batch_size = max_batch_size
        self.reserve_fraction = reserve_fraction
        if schedule_cache is not None:
            if not hasattr(simulator, "schedule_cache"):
                raise ConfigurationError(
                    f"simulator {simulator.name!r} does not plan offline and "
                    "cannot adopt a schedule cache"
                )
            simulator.schedule_cache = schedule_cache

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def kv_budget_tokens(self, requests: list[Request]) -> int:
        """Total KV tokens available across all concurrent sequences.

        Derived from the simulator's single-sequence budget (KV bytes scale
        linearly with batch size), so systems with compressed KV caches
        (ALISA's INT8) can admit proportionally more concurrent requests.
        """
        if not requests:
            raise ConfigurationError(
                "kv_budget_tokens needs at least one request to size its probe"
            )
        probe = Workload(
            batch_size=1,
            input_len=max(r.input_len for r in requests),
            output_len=max(r.output_len for r in requests),
            name="serving-probe",
        )
        return self.simulator.gpu_kv_budget_tokens(probe, self.reserve_fraction)

    def _fits(self, request: Request, running: list[_RunningRequest],
              reserved_tokens: int, budget_tokens: int) -> bool:
        if (self.max_batch_size is not None
                and len(running) >= self.max_batch_size):
            return False
        return reserved_tokens + request.max_seq_len <= budget_tokens

    # ------------------------------------------------------------------ #
    # serving loop
    # ------------------------------------------------------------------ #
    def serve(self, requests: list[Request]) -> ServingTrace:
        """Simulate serving ``requests`` and return the per-request trace."""
        trace = ServingTrace(
            system=self.simulator.name, model=self.simulator.config.name,
            metadata={"hardware": self.simulator.hardware.name,
                      "kv_dtype": self.simulator.kv_dtype},
        )
        solver_before = self.simulator.schedule_stats()
        if not requests:
            trace.metadata.update(kv_budget_tokens=0, peak_reserved_tokens=0,
                                  num_epochs=0, num_decode_steps=0,
                                  pcie_bytes=0.0)
            return trace

        budget = self.kv_budget_tokens(requests)
        for request in requests:
            if request.max_seq_len > budget:
                raise ConfigurationError(
                    f"request {request.request_id} needs "
                    f"{request.max_seq_len} KV tokens but the budget is "
                    f"{budget}; it can never be admitted"
                )

        pending = deque(sorted(requests,
                               key=lambda r: (r.arrival_time, r.request_id)))
        running: list[_RunningRequest] = []
        prefill_plans: dict[tuple[int, int, int], object] = {}
        memory = MemoryHierarchy.from_hardware(self.simulator.hardware)
        clock = 0.0
        reserved = 0
        peak_reserved = 0
        num_epochs = 0
        num_steps = 0

        while pending or running:
            # FCFS admission: the queue head blocks until it fits, so
            # requests always enter the batch in arrival order.
            admitted: list[Request] = []
            while (pending and pending[0].arrival_time <= clock
                   and self._fits(pending[0], running, reserved, budget)):
                request = pending.popleft()
                running.append(_RunningRequest(request, admission_time=clock))
                reserved += request.max_seq_len
                admitted.append(request)
            peak_reserved = max(peak_reserved, reserved)

            if not running:
                clock = max(clock, pending[0].arrival_time)
                continue

            if admitted:
                clock += self._prefill_time(admitted, memory, prefill_plans)

            num_epochs += 1
            clock, steps = self._decode_epoch(running, pending, reserved,
                                              budget, clock, memory, trace)
            num_steps += steps
            reserved = sum(r.request.max_seq_len for r in running)

        trace.metadata.update(
            kv_budget_tokens=budget, peak_reserved_tokens=peak_reserved,
            num_epochs=num_epochs, num_decode_steps=num_steps,
            pcie_bytes=memory.link.total_bytes,
        )
        solver_after = self.simulator.schedule_stats()
        if solver_after:
            # Per-serve increments: how the per-epoch re-prepares were served
            # (exact/canonical cache hits vs warm-started vs full solves).
            trace.metadata["scheduler"] = {
                key: value - solver_before.get(key, 0)
                for key, value in solver_after.items()
            }
        return trace

    # ------------------------------------------------------------------ #
    def _prefill_time(self, admitted: list[Request],
                      memory: MemoryHierarchy, plan_cache: dict) -> float:
        """Batched prefill of the newly admitted requests.

        Prefill plans are deterministic per workload shape, so they are
        cached across admission events: repeated shapes (every admission in
        a fixed-length trace) skip the simulator's ``prepare`` — for ALISA
        a full offline schedule search — and only re-price the plan.
        """
        workload = Workload(
            batch_size=len(admitted),
            input_len=max(r.input_len for r in admitted),
            output_len=max(r.output_len for r in admitted),
            name="serving-prefill",
        )
        key = (workload.batch_size, workload.input_len, workload.output_len)
        plan = plan_cache.get(key)
        if plan is None:
            self.simulator.prepare(workload)
            plan = self.simulator.plan_prefill(workload)
            plan_cache[key] = plan
        return self.simulator.prefill_timing(plan, workload, memory)

    def _decode_epoch(self, running: list[_RunningRequest],
                      pending: deque, reserved: int, budget: int,
                      clock: float, memory: MemoryHierarchy,
                      trace: ServingTrace) -> tuple[float, int]:
        """Decode with fixed batch composition until a completion or an
        admissible arrival ends the epoch."""
        workload = Workload(
            batch_size=len(running),
            input_len=max(r.context_length for r in running),
            output_len=min(r.remaining for r in running),
            name="serving-decode",
        )
        self.simulator.prepare(workload)
        # Re-place the already-resident context; its prefill was charged when
        # each request was admitted, so only placement state is initialized.
        self.simulator.plan_prefill(workload)

        steps = 0
        for step in range(workload.output_len):
            plan = self.simulator.plan_decode_step(step, workload)
            timing = self.simulator.step_timing(plan, step, workload, memory)
            clock += timing.total_time
            steps += 1

            finished: list[_RunningRequest] = []
            for request in running:
                request.generated += 1
                if request.first_token_time is None:
                    request.first_token_time = clock
                if request.remaining <= 0:
                    finished.append(request)
            for done in finished:
                running.remove(done)
                trace.add_record(RequestRecord(
                    request_id=done.request.request_id,
                    arrival_time=done.request.arrival_time,
                    admission_time=done.admission_time,
                    first_token_time=done.first_token_time,
                    completion_time=clock,
                    input_len=done.request.input_len,
                    output_len=done.request.output_len,
                ))
            if finished:
                # The epoch ends here; serve() recomputes the reservation
                # total from the surviving batch before the next admission.
                break
            if (pending and pending[0].arrival_time <= clock
                    and self._fits(pending[0], running, reserved, budget)):
                break
        return clock, steps
