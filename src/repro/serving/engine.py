"""Continuous batching of arriving requests over the inference simulators.

The paper evaluates one offline ``(b, s, n)`` batch per run (Section VI);
production serving instead sees requests arrive over time.  This engine
generalizes the Section VI protocol to ORCA/vLLM-style iteration-level
scheduling on top of *any* :class:`~repro.systems.simulator.InferenceSimulator`:
requests are admitted FCFS into the running batch whenever the GPU KV budget
has room, every running request generates one token per iteration, and
requests leave the batch the moment their last token is produced.

Public contract
---------------
:meth:`ContinuousBatchingEngine.serve` consumes a list of
:class:`~repro.workloads.arrivals.Request` (or a bounded-memory
:class:`~repro.workloads.arrivals.RequestStream`) and returns a
:class:`~repro.serving.trace.ServingTrace` containing exactly one
:class:`~repro.serving.trace.RequestRecord` per input request, with ordered
timestamps ``arrival <= admission <= first_token <= completion``.  Requests
are admitted strictly in ``(arrival_time, request_id)`` order (FCFS — the
queue head blocks admission until it fits).  A request whose KV footprint
can never fit raises
:class:`~repro._common.ConfigurationError` up front rather than deadlocking
or silently truncating.  Trace metadata reports the node KV budget, peak
reservation, per-shard budgets/occupancy, epoch/step counts, PCIe traffic,
communication-time share, and (for systems that plan offline) per-serve
scheduler-cache counters.

``record_mode="streaming"`` swaps the retained trace for a
:class:`~repro.serving.sketches.StreamingTrace`: the same summary surface,
O(1) memory, percentiles estimated by P² sketches, and goodput SLOs fixed
at serve time (``ttft_slo_s``/``tpot_slo_s``).  Everything except the
percentile estimates is exact and identical to the retained trace.

Event-driven core
-----------------
``serve`` no longer steps a wall clock.  :class:`EngineRun` re-expresses
one serve as a discrete-event state machine — queue a routed arrival
(``offer``), process the next admission/epoch event (``advance``), drain
after the source closes (``close``/``finalize``) — and
:func:`repro.serving.events.drive` runs one or many such runs off a merged
event heap, so idle time costs nothing and several replicas interleave on
true arrival order (see :mod:`repro.serving.events` for the heap
invariants).  The legacy clock loop is retained behind the simulator's
``exact_stepping=True`` escape hatch and pinned bit-identical to the event
path in ``tests/test_epoch_pricing.py`` and
``tests/test_serving_events.py``.

Sharded KV budgets (multi-GPU)
------------------------------
On a multi-GPU node the engine shards the node KV-token budget one shard
per GPU (shard budgets differ by at most one token and sum exactly to the
node budget).  Tensor parallelism splits every sequence's KV head-wise and
pipeline parallelism splits it layer-wise, so each admitted request
occupies ``ceil(max_seq_len / num_shards)`` tokens on *every* shard in
lockstep; admission requires that per-shard footprint to fit the tightest
shard.  The ceiling makes sharded admission slightly conservative — shards
can never be overfilled by rounding.  With one shard this degenerates to
exactly the single-GPU budget check, so 1-GPU serving traces are
bit-identical to the pre-sharding engine (regression-pinned in
``tests/test_serving_sharded.py``).

Epoch pricing fast path
-----------------------
Decode epochs are priced **vectorized**: one
:meth:`~repro.systems.simulator.InferenceSimulator.epoch_timings` call
prices all steps of a fixed-composition epoch as NumPy arrays, the epoch
boundary (first completion or first admissible arrival) falls out of a
cumulative sum plus ``searchsorted``, and priced epochs are memoized by
``(batch, context, steps, shard shape)`` so repeated epoch shapes —
fixed-length traces, rate sweeps, replica groups sharing a workload mix —
skip planning and pricing entirely.  This is behaviour-preserving: traces
are bit-identical to the per-step loop, which remains available by
constructing the simulator with ``exact_stepping=True`` (mirroring
``SchedulePolicy(exact=True)``) and is pinned against the fast path in
``tests/test_epoch_pricing.py``.

Modelling choices (all deliberate simplifications at the same granularity as
the paper's own cost model):

* **iteration-granular pricing** — each decode iteration is priced by the
  wrapped simulator's per-step formula on an epoch workload ``(b, s, n)``
  with ``b`` the running batch, ``s`` the longest resident context, and
  ``n`` the steps until the next completion; the simulator is
  re-``prepare``-d whenever an epoch shape is priced for the first time.
  For ALISA this re-prepare is served *incrementally* through its
  :class:`~repro.core.schedule_cache.ScheduleCache` — repeated epoch shapes
  reuse their offline schedule, nearby shapes share canonical solutions,
  and new shapes are warm-started from the nearest solved neighbor —
  instead of re-running the full offline grid search per epoch (pass a
  ``SchedulePolicy(exact=True)`` system to restore that behaviour);
* **reservation-based admission** — admitting a request reserves its full
  ``input_len + output_len`` KV footprint against the budget (vLLM's
  conservative no-preemption watermark), so the KV budget is never exceeded
  mid-flight and vLLM-style preemption waves never trigger;
* **inline prefill** — newly admitted requests are prefilled in one batched
  prefill that stalls decoding (ORCA's prioritized prefill iterations; no
  chunked prefill);
* **lockstep shards** — TP/PP shards advance together (collectives
  synchronize every layer or stage), so one clock drives all shards and
  communication time is part of each priced iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro._common import ConfigurationError, validate_positive
from repro.serving.events import (ADMISSION, COMPLETION, EPOCH_BOUNDARY,
                                  PREEMPTION, PREFILL_CHUNK,
                                  check_observers, drive, notify_finish)
from repro.serving.sketches import DEFAULT_QUANTILES, StreamingTrace
from repro.serving.trace import (
    RequestRecord,
    ServingTrace,
    normalize_class_slos,
)
from repro.systems.memory import MemoryHierarchy
from repro.systems.simulator import EpochTimings, InferenceSimulator
from repro.workloads.arrivals import SLO_CLASSES, Request, RequestStream
from repro.workloads.descriptors import Workload

#: Accepted values of ``ContinuousBatchingEngine(preemption=...)``.
PREEMPTION_MODES = (None, "retain", "recompute")


def _accumulate(start: float, values: np.ndarray) -> np.ndarray:
    """Running totals of ``start + values[0] + ... `` (sequential adds).

    ``np.cumsum`` accumulates left to right, so seeding it with ``start``
    reproduces the exact float additions of ``clock += value`` loops —
    which keeps the fast path bit-identical to step-wise accounting.
    """
    return np.cumsum(np.concatenate(((start,), values)))[1:]


@dataclass
class _RunningRequest:
    """Mutable in-flight state of one admitted request.

    ``prefill_tokens`` is how many prompt tokens the next prefill pass must
    compute for this request: the full ``input_len`` for a fresh admission,
    only the suffix when a session prefix was resident, the whole context so
    far when a ``"recompute"`` preemption dropped the KV, and 0 when a
    ``"retain"`` preemption kept it in host memory (the KV is swapped back
    instead).  ``swap_tokens`` sizes that pending swap-in.

    Under chunked prefill (``prefill_chunk_tokens=N``) ``chunk_remaining``
    is how many of those prefill tokens are still waiting in the run's
    chunk backlog, ``prefill_chunks`` counts the chunk events this request
    participated in, and ``preempting`` marks a request whose admission
    evicted running lower-priority work (its queueing delay is the
    preemption latency the chunk budget bounds).
    """

    request: Request
    admission_time: float
    first_token_time: float | None = None
    generated: int = 0
    prefill_tokens: int = 0
    prefix_hit: bool = False
    preemptions: int = 0
    swap_tokens: int = 0
    chunk_remaining: int = 0
    prefill_chunks: int = 0
    preempting: bool = False

    @property
    def context_length(self) -> int:
        return self.request.input_len + self.generated

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.generated


class _PrefixCache:
    """Resident KV prefixes of in-progress sessions (one per serve/run).

    When a non-final session turn completes, its KV (the whole
    ``input_len + output_len`` context — exactly the next turn's declared
    ``prefix_len``) is *retained* on the GPU instead of freed, keyed by
    ``session_id``.  The next turn of that session then charges only its
    suffix: admission consumes the entry, nets the retained tokens out of
    the new reservation, and prefills ``input_len - prefix_len`` tokens.  A
    stale entry (retained context differs from the turn's declared prefix —
    e.g. a replayed or edited trace) is dropped and counted as a miss.

    Retained prefixes are *evictable*: when an admission would not fit the
    tightest shard, entries are evicted oldest-retention-first (LRU) and
    their tokens freed, so retention never blocks admission that plain
    serving would allow.  An engine serving requests without session fields
    never populates the cache, and every code path below degenerates to
    ``+ 0`` — plain traces are bit-identical to the pre-session engine.
    """

    __slots__ = ("entries", "node_total", "shard_total", "hits", "misses",
                 "evicted", "reused_tokens", "retained", "consumed",
                 "listener")

    def __init__(self) -> None:
        self.entries: dict[int, tuple[int, int]] = {}
        self.node_total = 0
        self.shard_total = 0
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self.reused_tokens = 0
        self.retained = 0
        self.consumed = 0
        #: Optional ``listener(event, session_id, tokens)`` callback
        #: (``event`` in ``"hit"``/``"miss"``/``"evict"``) — the
        #: observability layer's tap on cache traffic.  ``None`` (the
        #: default) costs one attribute test per cache interaction.
        self.listener = None

    @property
    def touched(self) -> bool:
        """Did any session turn interact with the cache this serve?"""
        return bool(self.entries or self.hits or self.misses or self.evicted)

    def retain(self, session_id: int, node_tokens: int,
               shard_tokens: int) -> None:
        """Keep a completed turn's KV resident for the session's next turn.

        When the session's turns overlapped (turn ``t+1`` was admitted — as
        a miss — before turn ``t`` completed), an unconsumed entry for the
        same session may still be resident.  The new retention supersedes
        it: the old entry's tokens are freed from the ledger and the
        supersession counts as an eviction, so retained entries always
        balance against consumptions, evictions, and residents (the
        conservation law pinned in ``tests/test_sessions.py``).
        """
        previous = self.entries.pop(session_id, None)
        if previous is not None:
            self.node_total -= previous[0]
            self.shard_total -= previous[1]
            self.evicted += 1
            if self.listener is not None:
                self.listener("evict", session_id, previous[0])
        self.entries[session_id] = (node_tokens, shard_tokens)
        self.node_total += node_tokens
        self.shard_total += shard_tokens
        self.retained += 1

    def make_room(self, shard_delta: int, shard_reserved: int,
                  shard_limit: int) -> tuple[int, int]:
        """LRU-evict entries until ``shard_delta`` more tokens fit.

        Returns ``(node_freed, shard_freed)``; frees nothing when the
        admission already fits.
        """
        node_freed = shard_freed = 0
        while (self.entries
               and shard_reserved + shard_delta - shard_freed > shard_limit):
            session_id = next(iter(self.entries))
            tokens, shard_tokens = self.entries.pop(session_id)
            self.node_total -= tokens
            self.shard_total -= shard_tokens
            node_freed += tokens
            shard_freed += shard_tokens
            self.evicted += 1
            if self.listener is not None:
                self.listener("evict", session_id, tokens)
        return node_freed, shard_freed

    def admit(self, request: Request, node_footprint: int,
              shard_footprint: int, shard_reserved: int,
              shard_limit: int) -> tuple[int, int, bool]:
        """Account one admission against the cache.

        Returns ``(node_delta, shard_delta, hit)`` — the reservation deltas
        the caller applies (the request's footprint net of its consumed
        entry and of any pressure evictions) and whether the request's
        declared prefix was resident.
        """
        node_delta, shard_delta = node_footprint, shard_footprint
        hit = False
        session_id = getattr(request, "session_id", None)
        prefix_len = getattr(request, "prefix_len", 0)
        entry = (self.entries.pop(session_id, None)
                 if session_id is not None else None)
        if entry is not None:
            tokens, shard_tokens = entry
            self.node_total -= tokens
            self.shard_total -= shard_tokens
            node_delta -= tokens
            shard_delta -= shard_tokens
            hit = prefix_len > 0 and tokens == prefix_len
            self.consumed += 1
        if prefix_len > 0:
            if hit:
                self.hits += 1
                self.reused_tokens += prefix_len
            else:
                self.misses += 1
            if self.listener is not None:
                self.listener("hit" if hit else "miss", session_id,
                              prefix_len)
        node_freed, shard_freed = self.make_room(shard_delta, shard_reserved,
                                                 shard_limit)
        return node_delta - node_freed, shard_delta - shard_freed, hit

    def flush(self) -> None:
        """Drop every resident entry (a replica failure: the KV is gone).

        Each drop is ledgered as an eviction and fires the listener, so
        cache conservation (``retained == consumed + evicted + resident``)
        survives failures and observers see the flush as evict traffic.
        """
        while self.entries:
            session_id = next(iter(self.entries))
            tokens, shard_tokens = self.entries.pop(session_id)
            self.node_total -= tokens
            self.shard_total -= shard_tokens
            self.evicted += 1
            if self.listener is not None:
                self.listener("evict", session_id, tokens)

    def stats(self) -> dict:
        """The ``metadata["prefix_cache"]`` payload.

        Conservation law: every retained entry is eventually consumed by an
        admission, evicted (under pressure or by a superseding retention),
        or still resident at the end of the serve — so
        ``retained == consumed + evicted + resident`` always holds
        (regression-pinned in ``tests/test_sessions.py``).
        """
        judged = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "evicted": self.evicted,
                "reused_tokens": self.reused_tokens,
                "retained": self.retained,
                "consumed": self.consumed,
                "resident": len(self.entries),
                "hit_rate": self.hits / judged if judged else 0.0}


class RunGauges:
    """Live read-only gauges of one :class:`EngineRun`.

    Handed to observers through
    :meth:`repro.obs.Observer.on_serve_start`; every property reads the
    run's *current* state, so sampling the same object from later
    callbacks (as :class:`repro.obs.MetricsTimeline` does on a simulated
    interval) sees the state at that instant.  Strictly read-only — the
    view never mutates the run.
    """

    __slots__ = ("_run",)

    def __init__(self, run: "EngineRun") -> None:
        self._run = run

    @property
    def replica(self) -> int:
        return self._run.replica

    @property
    def clock(self) -> float:
        """The run's simulated clock (seconds)."""
        return self._run._clock

    @property
    def batch_size(self) -> int:
        """Requests currently in the running batch."""
        return len(self._run._running)

    @property
    def queue_depth(self) -> int:
        """Requests queued at the replica, not yet admitted."""
        run = self._run
        if run._priority:
            return sum(len(queue)
                       for queue in run._pending_classes.values())
        return len(run._pending)

    @property
    def queue_depth_by_class(self) -> dict[str, int]:
        """Queue depth per SLO class (all classes, zeros included)."""
        run = self._run
        if run._priority:
            return {name: len(queue)
                    for name, queue in run._pending_classes.items()}
        depths = {name: 0 for name in SLO_CLASSES}
        for request in run._pending:
            depths[request.slo_class] += 1
        return depths

    @property
    def kv_occupancy(self) -> float:
        """Reserved fraction of the tightest shard's KV budget."""
        run = self._run
        if run._shard_limit <= 0:
            return 0.0
        return run._shard_reserved / run._shard_limit

    @property
    def shard_occupancy(self) -> list[float]:
        """Per-shard reserved fraction (shards fill in lockstep today)."""
        run = self._run
        return [run._shard_reserved / budget if budget > 0 else 0.0
                for budget in run._shard_budgets]

    @property
    def prefix_hit_rate(self) -> float:
        """Running prefix-cache hit rate (0.0 before any judgement)."""
        prefix = self._run._prefix
        judged = prefix.hits + prefix.misses
        return prefix.hits / judged if judged else 0.0

    @property
    def num_preemptions(self) -> int:
        """Preemptions so far (cumulative; sample deltas for a rate)."""
        return self._run._num_preemptions


class ContinuousBatchingEngine:
    """Drives an :class:`InferenceSimulator` over an arrival trace.

    Parameters
    ----------
    simulator:
        Any system simulator (ALISA, vLLM, FlexGen, ...); its placement
        policy and cost accounting price every iteration.
    max_batch_size:
        Optional cap on concurrently running requests (``None`` = limited
        only by the KV budget).
    reserve_fraction:
        GPU memory head-room fraction forwarded to
        :meth:`~repro.systems.simulator.InferenceSimulator.gpu_kv_budget_tokens`.
    schedule_cache:
        Optional shared schedule cache injected into simulators that plan
        offline (currently :class:`~repro.core.engine.AlisaSystem`).  Lets
        several engines — e.g. one per arrival rate in a sweep — reuse each
        other's solved epoch shapes.  Ignored by simulators without a
        ``schedule_cache`` attribute.
    preemption:
        ``None`` (default) serves strictly FCFS.  ``"retain"`` or
        ``"recompute"`` enables priority scheduling over the request
        ``slo_class`` tiers: an arriving interactive request may evict
        running batch requests at an epoch boundary, either swapping their
        KV to host memory and back (``"retain"``, priced on the PCIe link)
        or dropping it and re-prefilling the generated context on
        re-admission (``"recompute"``).  Preemption is event-path only —
        combining it with ``exact_stepping=True`` raises.
    prefix_reuse:
        When True (default), the KV of a non-final session turn stays
        resident so the session's next turn is charged only its suffix (see
        :class:`_PrefixCache`).  ``False`` frees every completed request's
        KV immediately, making session turns behave like unrelated
        requests.
    prefill_chunk_tokens:
        ``None`` (default) prefills each admission batch in one indivisible
        pass (ORCA-style prioritized prefill).  An integer budget instead
        splits every prefill into chunks of at most that many tokens,
        interleaved with decode as ``PREFILL_CHUNK`` events: admission and
        preemption run between chunks, so a higher-priority arrival waits
        at most one chunk's priced time — bounded preemption latency
        independent of prompt length.  Prefix-reuse hits compose (only the
        suffix is chunked) and mid-prefill preemption retains or recomputes
        completed chunks per ``preemption=``.  Event-path only: combining
        it with ``exact_stepping=True`` raises.

    The number of KV shards equals the simulator node's ``gpu_count`` (the
    simulator's :class:`~repro.systems.cost.ParallelismSpec` already
    validates that its degree matches).
    """

    def __init__(self, simulator: InferenceSimulator,
                 max_batch_size: int | None = None,
                 reserve_fraction: float = 0.05,
                 schedule_cache=None,
                 preemption: str | None = None,
                 prefix_reuse: bool = True,
                 prefill_chunk_tokens: int | None = None) -> None:
        if max_batch_size is not None:
            validate_positive(max_batch_size=max_batch_size)
        if preemption not in PREEMPTION_MODES:
            raise ConfigurationError(
                f"unknown preemption mode {preemption!r}; known: "
                f"{list(PREEMPTION_MODES)}"
            )
        if preemption is not None and simulator.exact_stepping:
            raise ConfigurationError(
                "preemption schedules new event kinds and is only "
                "implemented on the event-driven path; it cannot be "
                "combined with exact_stepping=True"
            )
        if prefill_chunk_tokens is not None:
            validate_positive(prefill_chunk_tokens=prefill_chunk_tokens)
            if simulator.exact_stepping:
                raise ConfigurationError(
                    "chunked prefill schedules new event kinds and is only "
                    "implemented on the event-driven path; it cannot be "
                    "combined with exact_stepping=True"
                )
        self.simulator = simulator
        self.max_batch_size = max_batch_size
        self.reserve_fraction = reserve_fraction
        self.preemption = preemption
        self.prefix_reuse = prefix_reuse
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.num_shards = simulator.hardware.gpu_count
        if schedule_cache is not None:
            if not hasattr(simulator, "schedule_cache"):
                raise ConfigurationError(
                    f"simulator {simulator.name!r} does not plan offline and "
                    "cannot adopt a schedule cache"
                )
            simulator.schedule_cache = schedule_cache
        # Pricing caches, engine state so they survive across serve() calls
        # (a rate sweep reuses one engine per configuration).  Prefill plans
        # are deterministic per workload shape; priced epochs are
        # deterministic per (b, s, n, shard shape).  ReplicaGroup shares
        # both across replicas whose simulators price identically — see
        # adopt_pricing_caches.
        self._prefill_plans: dict[tuple[int, int, int], object] = {}
        self._epoch_cache: dict[tuple, EpochTimings] = {}
        self._epoch_hits = 0
        self._epoch_misses = 0

    def adopt_pricing_caches(self, other: "ContinuousBatchingEngine",
                             share_epochs: bool = True) -> None:
        """Share prefill-plan (and optionally priced-epoch) caches.

        Only valid when both engines' simulators have equal
        :meth:`~repro.systems.simulator.InferenceSimulator.pricing_signature`
        and the engines use the same admission knobs — the caller
        (:class:`~repro.cluster.group.ReplicaGroup`) checks this, and
        passes ``share_epochs=False`` for simulators whose priced epochs
        are not pure functions of the shape
        (:meth:`~repro.systems.simulator.InferenceSimulator.pricing_is_shape_pure`).
        """
        self._prefill_plans = other._prefill_plans
        if share_epochs:
            self._epoch_cache = other._epoch_cache

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def kv_budget_tokens(self, requests: list[Request]) -> int:
        """Total KV tokens available across all concurrent sequences.

        Derived from the simulator's single-sequence budget (KV bytes scale
        linearly with batch size), so systems with compressed KV caches
        (ALISA's INT8) can admit proportionally more concurrent requests.
        """
        if not requests:
            raise ConfigurationError(
                "kv_budget_tokens needs at least one request to size its probe"
            )
        return self.kv_budget_tokens_for_bounds(
            max(r.input_len for r in requests),
            max(r.output_len for r in requests))

    def kv_budget_tokens_for_bounds(self, max_input_len: int,
                                    max_output_len: int) -> int:
        """KV budget probed from length *bounds* instead of a request list.

        The budget depends on the probe's maximum lengths (activation
        bytes scale with the prompt length), so streams and event-driven
        runs — which never materialize their request lists — probe with
        the same bounds a list probe would reach.
        """
        probe = Workload(
            batch_size=1,
            input_len=max_input_len,
            output_len=max_output_len,
            name="serving-probe",
        )
        return self.simulator.gpu_kv_budget_tokens(probe, self.reserve_fraction)

    def shard_budgets(self, node_budget_tokens: int) -> list[int]:
        """Per-shard KV-token budgets (one shard per GPU).

        The node budget is split as evenly as integers allow: shard budgets
        differ by at most one token and always sum exactly to the node
        budget, so no capacity is lost (or invented) by sharding.
        """
        shards = self.num_shards
        base, remainder = divmod(node_budget_tokens, shards)
        return [base + (1 if i < remainder else 0) for i in range(shards)]

    def shard_footprint(self, request: Request) -> int:
        """KV tokens ``request`` occupies on *each* shard once admitted.

        TP shards a sequence's KV head-wise and PP layer-wise; either way
        every shard holds an equal slice, rounded up so admission can never
        overfill a shard.
        """
        return -(-request.max_seq_len // self.num_shards)

    def _fits(self, request: Request, running: list[_RunningRequest],
              shard_reserved_tokens: int, shard_limit_tokens: int,
              prefix: _PrefixCache | None = None) -> bool:
        """Would admitting ``request`` fit the tightest shard right now?

        ``shard_reserved_tokens`` counts running requests *and* retained
        session prefixes; every retained prefix is evictable (and the
        request's own session entry is consumed either way), so the
        feasible case nets the whole cache out.  With an empty cache this
        is exactly the pre-session arithmetic.
        """
        if (self.max_batch_size is not None
                and len(running) >= self.max_batch_size):
            return False
        evictable = prefix.shard_total if prefix is not None else 0
        return (shard_reserved_tokens + self.shard_footprint(request)
                - evictable <= shard_limit_tokens)

    def _admit_request(self, request: Request, prefix: _PrefixCache,
                       shard_reserved: int, shard_limit: int,
                       clock: float) -> tuple[_RunningRequest, int, int]:
        """Admission bookkeeping shared by the clock loop and event runs.

        Returns ``(wrapper, node_delta, shard_delta)``; the caller applies
        the deltas to its reservation totals.
        """
        node_delta, shard_delta, hit = prefix.admit(
            request, request.max_seq_len, self.shard_footprint(request),
            shard_reserved, shard_limit)
        prefix_len = getattr(request, "prefix_len", 0)
        wrapper = _RunningRequest(
            request, admission_time=clock,
            prefill_tokens=request.input_len - (prefix_len if hit else 0),
            prefix_hit=hit)
        return wrapper, node_delta, shard_delta

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, requests, record_mode: str = "full",
              ttft_slo_s: float | None = None,
              tpot_slo_s: float | None = None,
              class_slos: dict | None = None,
              observers=None, faults=None, retry=None, shedding=None):
        """Simulate serving ``requests`` and return the serving trace.

        ``requests`` is a list of :class:`Request` or a
        :class:`~repro.workloads.arrivals.RequestStream` (bounded memory:
        the stream is consumed one arrival at a time and never
        materialized).  ``record_mode="full"`` (default) returns a
        :class:`ServingTrace` with one retained record per request;
        ``"streaming"`` returns a
        :class:`~repro.serving.sketches.StreamingTrace` with the same
        summary surface in O(1) memory — ``ttft_slo_s``/``tpot_slo_s`` fix
        the goodput SLOs the streaming trace will answer for (ignored in
        full mode, where goodput is computed from the retained records).

        The default path is event-driven (:class:`EngineRun` +
        :func:`~repro.serving.events.drive`); a simulator built with
        ``exact_stepping=True`` serves through the retained clock-stepped
        loop instead, which is pinned bit-identical.

        ``class_slos`` fixes the per-``slo_class`` goodput SLOs that
        :meth:`~repro.serving.sketches.StreamingTrace.per_class_summary`
        will answer for.  Like the scalar SLOs it only *binds* in
        streaming mode (full mode computes per-class figures from the
        retained records on demand), but it is validated in both.

        ``observers`` is an optional list of :class:`repro.obs.Observer`
        instances receiving every simulated-time event (see
        ``docs/observability.md``).  Observation is passive — traces are
        bit-identical with and without observers — and event-path only:
        combining observers with ``exact_stepping=True`` raises.

        ``faults`` is an optional :class:`~repro.faults.FaultSchedule`
        describing replica-0 outages on this single-replica serve (see
        :mod:`repro.faults`; multi-replica schedules belong on
        :meth:`~repro.cluster.group.ReplicaGroup.serve`).  ``retry`` is
        the :class:`~repro.faults.RetryPolicy` for interrupted requests
        and ``shedding`` an optional :class:`~repro.faults.LoadShedder`;
        both require ``faults``.  Fault injection is event-path only, and
        ``faults=None`` serves are bit-identical to the pre-fault engine.

        ``trace.metadata["wall_clock_s"]`` records the real time the
        simulation took, so bench regressions can be diagnosed from
        committed traces.
        """
        started = perf_counter()
        observers = check_observers(observers)
        if observers and self.simulator.exact_stepping:
            raise ConfigurationError(
                "observers hook the event-driven path and cannot be "
                "combined with exact_stepping=True"
            )
        if faults is None:
            if retry is not None or shedding is not None:
                raise ConfigurationError(
                    "retry=/shedding= configure fault recovery and need a "
                    "faults= schedule to act on"
                )
            trace = self._serve(requests, record_mode, ttft_slo_s,
                                tpot_slo_s, class_slos, observers)
        else:
            trace = self._serve_with_faults(
                requests, record_mode, ttft_slo_s, tpot_slo_s, class_slos,
                observers, faults, retry, shedding)
        trace.metadata["wall_clock_s"] = perf_counter() - started
        notify_finish(observers, trace, class_slos)
        return trace

    def _serve_with_faults(self, requests, record_mode: str,
                           ttft_slo_s: float | None,
                           tpot_slo_s: float | None,
                           class_slos: dict | None, observers: tuple,
                           faults, retry, shedding):
        """Single-replica fault-injection serve (see :mod:`repro.faults`)."""
        from repro.faults import FaultCoordinator
        if self.simulator.exact_stepping:
            raise ConfigurationError(
                "fault injection schedules new event kinds and is only "
                "implemented on the event-driven path; it cannot be "
                "combined with exact_stepping=True"
            )
        if hasattr(requests, "pop_next"):
            raise ConfigurationError(
                "fault injection does not support closed-loop sources — "
                "lower the session trace to its open-loop request stream"
            )
        trace = self.make_trace(record_mode, ttft_slo_s, tpot_slo_s,
                                class_slos=class_slos)
        coordinator = FaultCoordinator(faults, retry=retry, shedder=shedding)
        if isinstance(requests, RequestStream):
            max_input, max_output = requests.length_bounds
            source = iter(requests)
        else:
            if not requests:
                # Still reject a schedule naming replicas the serve does
                # not have — an empty trace must not mask a bad config.
                if faults.max_replica() >= 1:
                    raise ConfigurationError(
                        f"fault schedule names replica "
                        f"{faults.max_replica()} but the serve has only "
                        f"1 replicas"
                    )
                trace.metadata.update(
                    kv_budget_tokens=0, peak_reserved_tokens=0,
                    num_epochs=0, num_decode_steps=0, pcie_bytes=0.0,
                    shards=[], comm_time_s=0.0, comm_time_share=0.0,
                    resilience={"num_failures": 0, "num_retries": 0,
                                "num_failed": 0, "num_shed": 0,
                                "downtime_s": 0.0, "availability": 1.0})
                return trace
            max_input = max(r.input_len for r in requests)
            max_output = max(r.output_len for r in requests)
            source = sorted(requests,
                            key=lambda r: (r.arrival_time, r.request_id))
        run = self.start_run(trace, max_input_len=max_input,
                             max_output_len=max_output,
                             observers=observers, fault_mode=True)
        record_sink = (trace.observe if record_mode == "streaming" else None)
        coordinator.bind([run], lambda request: 0, router=None,
                         observers=observers, record_sink=record_sink)
        if isinstance(source, list):
            for request in source:  # legacy contract: OOM raises up front
                run.check_admissible(request)
        drive(source, [run], lambda request: 0, observers=observers,
              faults=coordinator)
        result = run.finalize()
        if record_sink is None:
            result.records.extend(coordinator.records)
            result.records.sort(
                key=lambda r: (r.completion_time, r.request_id))
        result.metadata["resilience"] = coordinator.resilience(
            result.duration, 1)
        return result

    def _serve(self, requests, record_mode: str,
               ttft_slo_s: float | None, tpot_slo_s: float | None,
               class_slos: dict | None, observers: tuple):
        """Dispatch one serve to the right source/stepping body."""
        trace = self.make_trace(record_mode, ttft_slo_s, tpot_slo_s,
                                class_slos=class_slos)
        if hasattr(requests, "pop_next"):
            # Closed-loop source (see events.ContinuationSource): future
            # arrivals depend on this serve's own completions, which the
            # run feeds back through the source's on_completion observer.
            if self.simulator.exact_stepping:
                raise ConfigurationError(
                    "closed-loop sources are driven by the event loop and "
                    "cannot be served with exact_stepping=True"
                )
            max_input, max_output = requests.length_bounds
            run = self.start_run(trace, max_input_len=max_input,
                                 max_output_len=max_output,
                                 observer=requests.on_completion,
                                 eager_epochs=True, observers=observers)
            drive(requests, [run], lambda request: 0, observers=observers)
            return run.finalize()
        if isinstance(requests, RequestStream):
            if self.simulator.exact_stepping:
                raise ConfigurationError(
                    "exact_stepping replays the retained clock loop over a "
                    "materialized request list; serve a RequestStream with "
                    "the event-driven default instead"
                )
            max_input, max_output = requests.length_bounds
            run = self.start_run(trace, max_input_len=max_input,
                                 max_output_len=max_output,
                                 observers=observers)
            drive(iter(requests), [run], lambda request: 0,
                  observers=observers)
            return run.finalize()
        if not requests:
            trace.metadata.update(kv_budget_tokens=0, peak_reserved_tokens=0,
                                  num_epochs=0, num_decode_steps=0,
                                  pcie_bytes=0.0, shards=[],
                                  comm_time_s=0.0, comm_time_share=0.0)
            return trace
        if self.simulator.exact_stepping:
            return self._serve_clock_loop(requests, trace)
        run = self.start_run(
            trace,
            max_input_len=max(r.input_len for r in requests),
            max_output_len=max(r.output_len for r in requests),
            observers=observers)
        for request in requests:  # legacy contract: OOM raises up front
            run.check_admissible(request)
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_time, r.request_id))
        drive(ordered, [run], lambda request: 0, observers=observers)
        return run.finalize()

    def make_trace(self, record_mode: str, ttft_slo_s: float | None = None,
                   tpot_slo_s: float | None = None, quantiles=None,
                   class_slos: dict | None = None):
        """Empty trace of the requested ``record_mode``, base metadata set.

        ``quantiles`` (streaming mode only) overrides the percentile ranks
        the streaming trace sketches; ``None`` keeps the defaults.  The
        cluster layer passes ``quantiles=()`` for its per-replica sinks,
        whose summaries need only counts and totals — that disables the
        sketches entirely.
        """
        parallelism = self.simulator.parallelism
        metadata = {"hardware": self.simulator.hardware.name,
                    "kv_dtype": self.simulator.kv_dtype,
                    "parallelism": {"mode": parallelism.mode,
                                    "degree": parallelism.degree,
                                    "label": parallelism.label},
                    "record_mode": record_mode}
        if record_mode == "full":
            # Full mode derives per-class figures from the retained records
            # on demand, but a malformed mapping should fail here, exactly
            # as it would have in streaming mode.
            normalize_class_slos(class_slos)
            return ServingTrace(system=self.simulator.name,
                                model=self.simulator.config.name,
                                metadata=metadata)
        if record_mode == "streaming":
            return StreamingTrace(system=self.simulator.name,
                                  model=self.simulator.config.name,
                                  metadata=metadata,
                                  quantiles=(DEFAULT_QUANTILES
                                             if quantiles is None
                                             else quantiles),
                                  ttft_slo_s=ttft_slo_s,
                                  tpot_slo_s=tpot_slo_s,
                                  class_slos=class_slos)
        raise ConfigurationError(
            f"unknown record_mode {record_mode!r}; known: ['full', "
            f"'streaming']"
        )

    def start_run(self, trace, max_input_len: int | None = None,
                  max_output_len: int | None = None,
                  observer=None, eager_epochs: bool = False,
                  observers: tuple = (), replica: int = 0,
                  fault_mode: bool = False) -> "EngineRun":
        """Begin one event-driven serve over this engine.

        ``max_input_len``/``max_output_len`` bound the lengths of every
        request the run will be offered — they size the KV-budget probe
        exactly like :meth:`kv_budget_tokens` does for a list.  ``None``
        builds an idle run that may never be offered a request (a replica a
        routing policy starved; it finalizes to the empty-trace metadata).
        ``observer`` is an extra per-record sink called after the trace
        observes each completion (the cluster layer's streaming fan-out,
        or a closed-loop source's ``on_completion``).  ``eager_epochs``
        must be True for runs driven by a closed-loop source: the run then
        prices epochs without waiting for its next queue head (which may
        depend on its own completions).  ``observers`` are the serve's
        observability hooks (see :mod:`repro.obs`) and ``replica`` the
        index they see this run as.  Drive the run (alone or merged
        with others) through :func:`repro.serving.events.drive`, then call
        :meth:`EngineRun.finalize`.  ``fault_mode`` builds a run that a
        :class:`~repro.faults.FaultCoordinator` may fail and recover:
        late, out-of-order retry offers are accepted and the run exposes
        the coordinator's :meth:`EngineRun.fail`/:meth:`EngineRun.recover`
        surface.
        """
        if max_input_len is None or max_output_len is None:
            budget = 0
        else:
            budget = self.kv_budget_tokens_for_bounds(max_input_len,
                                                      max_output_len)
        return EngineRun(self, trace, budget, observer=observer,
                         eager_epochs=eager_epochs, observers=observers,
                         replica=replica, fault_mode=fault_mode)

    def _serve_clock_loop(self, requests: list[Request], trace):
        """Retained clock-stepped serving loop (``exact_stepping=True``).

        The pre-event-loop implementation, kept as the semantic reference:
        the event-driven path is pinned bit-identical to it.
        """
        solver_before = self.simulator.schedule_stats()
        budget = self.kv_budget_tokens(requests)
        shard_budgets = self.shard_budgets(budget)
        shard_limit = min(shard_budgets)
        for request in requests:
            footprint = self.shard_footprint(request)
            if footprint > shard_limit:
                raise ConfigurationError(
                    f"request {request.request_id} needs {footprint} KV "
                    f"tokens on each of {self.num_shards} shard(s) but the "
                    f"tightest shard budget is {shard_limit} (node budget "
                    f"{budget}); it can never be admitted"
                )

        pending = deque(sorted(requests,
                               key=lambda r: (r.arrival_time, r.request_id)))
        running: list[_RunningRequest] = []
        prefix = _PrefixCache()
        epoch_hits_before = self._epoch_hits
        epoch_misses_before = self._epoch_misses
        memory = MemoryHierarchy.from_hardware(self.simulator.hardware)
        clock = 0.0
        reserved = 0          # node-level KV tokens across all shards
        shard_reserved = 0    # per-shard tokens (shards fill in lockstep)
        peak_reserved = 0
        peak_shard_reserved = 0
        num_epochs = 0
        num_steps = 0
        comm_time = 0.0

        while pending or running:
            # FCFS admission: the queue head blocks until it fits, so
            # requests always enter the batch in arrival order.
            admitted: list[_RunningRequest] = []
            while (pending and pending[0].arrival_time <= clock
                   and self._fits(pending[0], running, shard_reserved,
                                  shard_limit, prefix)):
                request = pending.popleft()
                wrapper, node_delta, shard_delta = self._admit_request(
                    request, prefix, shard_reserved, shard_limit, clock)
                running.append(wrapper)
                reserved += node_delta
                shard_reserved += shard_delta
                admitted.append(wrapper)
            peak_reserved = max(peak_reserved, reserved)
            peak_shard_reserved = max(peak_shard_reserved, shard_reserved)

            if not running:
                clock = max(clock, pending[0].arrival_time)
                continue

            if admitted:
                prefill, prefill_comm = self._prefill_time(admitted, memory)
                clock += prefill
                comm_time += prefill_comm

            num_epochs += 1
            clock, steps, epoch_comm = self._decode_epoch(
                running, pending, shard_reserved, shard_limit, clock, memory,
                trace, prefix)
            num_steps += steps
            comm_time += epoch_comm
            reserved = (sum(r.request.max_seq_len for r in running)
                        + prefix.node_total)
            shard_reserved = (sum(self.shard_footprint(r.request)
                                  for r in running) + prefix.shard_total)

        trace.metadata.update(
            kv_budget_tokens=budget, peak_reserved_tokens=peak_reserved,
            num_epochs=num_epochs, num_decode_steps=num_steps,
            pcie_bytes=memory.link.total_bytes,
            # One entry per shard even though TP/PP shards fill in lockstep
            # today (identical peaks): the per-shard shape is the interface
            # data-parallel placement (see ROADMAP) will populate with
            # genuinely divergent values.
            shards=[
                {"shard": index, "budget_tokens": shard_budget,
                 "peak_reserved_tokens": peak_shard_reserved,
                 "peak_occupancy": (peak_shard_reserved / shard_budget
                                    if shard_budget > 0 else 0.0)}
                for index, shard_budget in enumerate(shard_budgets)
            ],
            comm_time_s=comm_time,
            comm_time_share=comm_time / clock if clock > 0 else 0.0,
        )
        if prefix.touched:
            trace.metadata["prefix_cache"] = prefix.stats()
        if not self.simulator.exact_stepping:
            # How many decode epochs were priced fresh vs served from the
            # epoch-price memo (cumulative counters, per-serve deltas).
            trace.metadata["epoch_cache"] = {
                "hits": self._epoch_hits - epoch_hits_before,
                "misses": self._epoch_misses - epoch_misses_before,
            }
        solver_after = self.simulator.schedule_stats()
        if solver_after:
            # Per-serve increments: how the per-epoch re-prepares were served
            # (exact/canonical cache hits vs warm-started vs full solves).
            trace.metadata["scheduler"] = {
                key: value - solver_before.get(key, 0)
                for key, value in solver_after.items()
            }
        return trace

    # ------------------------------------------------------------------ #
    def _prefill_time(self, admitted: list[_RunningRequest],
                      memory: MemoryHierarchy) -> tuple[float, float]:
        """Batched prefill of the newly admitted requests.

        Returns ``(wall_clock_time, communication_time)`` — the latter is
        the interconnect share of the prefill pass (0 on a single GPU).
        The pass is sized by each request's ``prefill_tokens`` (the full
        prompt, a session turn's suffix, or a recomputed context), so a
        prefix hit shortens it; a batch of pure swap-ins (``"retain"``
        resumes, 0 tokens each) skips it entirely.  Prefill plans are
        deterministic per workload shape, so they are cached on the engine
        across admission events *and* serve() calls: repeated shapes (every
        admission in a fixed-length trace, every rate of a sweep) skip the
        simulator's ``prepare`` — for ALISA a full offline schedule search
        — and only re-price the plan.
        """
        input_len = max(r.prefill_tokens for r in admitted)
        if input_len == 0:
            return 0.0, 0.0
        workload = Workload(
            batch_size=len(admitted),
            input_len=input_len,
            output_len=max(r.request.output_len for r in admitted),
            name="serving-prefill",
        )
        key = (workload.batch_size, workload.input_len, workload.output_len)
        plan = self._prefill_plans.get(key)
        if plan is None:
            self.simulator.prepare(workload)
            plan = self.simulator.plan_prefill(workload)
            self._prefill_plans[key] = plan
        time = self.simulator.prefill_timing(plan, workload, memory)
        comm = self.simulator.parallel_comm_time(workload,
                                                 query_len=workload.input_len)
        return time, comm

    def _chunk_time(self, parts: list[tuple[_RunningRequest, int]],
                    memory: MemoryHierarchy) -> tuple[float, float]:
        """Price one prefill chunk: ``parts`` are ``(wrapper, tokens)``.

        A chunk is priced exactly like a prefill pass of its own shape —
        batch of the participating requests, input length of the longest
        slice — through the same plan cache (:attr:`_prefill_plans` is
        keyed by shape, and plans are pure per shape), so a sweep's
        repeated chunk shapes skip ``prepare`` just like whole prefills do.
        Returns ``(wall_clock_time, communication_time)``.
        """
        workload = Workload(
            batch_size=len(parts),
            input_len=max(tokens for _, tokens in parts),
            output_len=max(w.request.output_len for w, _ in parts),
            name="serving-prefill-chunk",
        )
        key = (workload.batch_size, workload.input_len, workload.output_len)
        plan = self._prefill_plans.get(key)
        if plan is None:
            self.simulator.prepare(workload)
            plan = self.simulator.plan_prefill(workload)
            self._prefill_plans[key] = plan
        time = self.simulator.prefill_timing(plan, workload, memory)
        comm = self.simulator.parallel_comm_time(workload,
                                                 query_len=workload.input_len)
        return time, comm

    def _decode_epoch(self, running: list[_RunningRequest],
                      pending: deque, shard_reserved: int, shard_limit: int,
                      clock: float, memory: MemoryHierarchy,
                      sink, prefix: _PrefixCache) -> tuple[float, int, float]:
        """Decode with fixed batch composition until a completion or an
        admissible arrival ends the epoch.

        The epoch is priced through the vectorized fast path (memoized per
        epoch shape) unless the simulator was built with
        ``exact_stepping=True``, which restores the per-step Python loop;
        both are bit-identical (pinned in ``tests/test_epoch_pricing.py``).
        Returns ``(clock, steps, communication_time)``.
        """
        workload = Workload(
            batch_size=len(running),
            input_len=max(r.context_length for r in running),
            output_len=min(r.remaining for r in running),
            name="serving-decode",
        )
        # The batch composition is fixed for the whole epoch, so the FCFS
        # head's admissibility is too: the epoch can only be cut by the
        # head's arrival, and only if it would fit.
        cut_arrival = None
        if pending and self._fits(pending[0], running, shard_reserved,
                                  shard_limit, prefix):
            cut_arrival = pending[0].arrival_time
        if self.simulator.exact_stepping:
            clock, steps, first_clock, comm_per_step = \
                self._price_epoch_stepwise(workload, cut_arrival,
                                           clock, memory)
        else:
            clock, steps, first_clock, comm_per_step = \
                self._price_epoch_fast(workload, cut_arrival, clock, memory)
        self._finish_epoch(running, sink, steps, first_clock, clock, prefix)
        return clock, steps, steps * comm_per_step

    def _price_epoch_fast(self, workload: Workload,
                          cut_arrival: float | None,
                          clock: float, memory: MemoryHierarchy,
                          ) -> tuple[float, int, float, float]:
        """Vectorized epoch pricing with per-shape memoization.

        One ``epoch_timings`` call prices all ``output_len`` steps as
        arrays; the epoch boundary falls out of a cumulative sum over the
        timing vector plus a ``searchsorted`` against ``cut_arrival`` (the
        earliest admissible arrival, ``None`` when no arrival can end the
        epoch) — no per-step Python loop.  Priced epochs are keyed by
        ``(batch, context, steps, shard shape)``, so repeated epoch shapes
        (the common case in fixed-length traces and rate sweeps) skip
        planning *and* pricing — including the simulator's per-epoch
        ``prepare``, which for ALISA is the offline schedule search.
        """
        key = (workload.batch_size, workload.input_len, workload.output_len,
               self.simulator.parallelism.label)
        timings = self._epoch_cache.get(key)
        if timings is None:
            self._epoch_misses += 1
            self.simulator.prepare(workload)
            # Re-place the already-resident context; its prefill was charged
            # when each request was admitted, so only placement state is
            # initialized.
            self.simulator.plan_prefill(workload)
            timings = self.simulator.epoch_timings(workload, memory.link)
            self._epoch_cache[key] = timings
        else:
            self._epoch_hits += 1
        comm_per_step = float(timings.comm_times[0])

        num_steps = workload.output_len
        clocks = _accumulate(clock, timings.total_times)
        steps = num_steps
        if cut_arrival is not None:
            # First step whose post-step clock reaches the cut arrival; the
            # final step always completes requests first, so only earlier
            # steps can end the epoch by admission.
            cut = int(np.searchsorted(clocks[:num_steps - 1],
                                      cut_arrival, side="left"))
            if cut < num_steps - 1:
                steps = cut + 1
        # Replay the steps' PCIe traffic onto the serve-level link ledger
        # (sequential adds, identical to per-step recording).
        link = memory.link
        link.bytes_host_to_device = float(
            _accumulate(link.bytes_host_to_device,
                        timings.h2d_bytes[:steps])[-1])
        link.bytes_device_to_host = float(
            _accumulate(link.bytes_device_to_host,
                        timings.d2h_bytes[:steps])[-1])
        return (float(clocks[steps - 1]), steps, float(clocks[0]),
                comm_per_step)

    def _price_epoch_stepwise(self, workload: Workload,
                              cut_arrival: float | None,
                              clock: float, memory: MemoryHierarchy,
                              ) -> tuple[float, int, float, float]:
        """Legacy per-step pricing loop (``exact_stepping=True``)."""
        self.simulator.prepare(workload)
        self.simulator.plan_prefill(workload)
        comm_per_step = self.simulator.parallel_comm_time(workload)
        steps = 0
        first_clock = None
        for step in range(workload.output_len):
            plan = self.simulator.plan_decode_step(step, workload)
            timing = self.simulator.step_timing(plan, step, workload, memory)
            clock += timing.total_time
            steps += 1
            if first_clock is None:
                first_clock = clock
            if steps == workload.output_len:
                break  # the final step completes requests; epoch over
            if cut_arrival is not None and cut_arrival <= clock:
                break
        return clock, steps, first_clock, comm_per_step

    def _finish_epoch(self, running: list[_RunningRequest],
                      sink, steps: int, first_clock: float,
                      end_clock: float,
                      prefix: _PrefixCache | None = None) -> None:
        """Apply an epoch's effects to the batch and record completions.

        All running requests decrement uniformly, so the finishers are
        exactly the requests whose remaining output equalled the steps
        taken, and first tokens land at the epoch's first cumulative clock
        — no per-step scan of the batch is needed.  A finishing non-final
        session turn hands its KV to the prefix cache instead of freeing it
        (when ``prefix_reuse`` is on).  ``sink`` is anything with
        ``observe(record)``: a :class:`~repro.serving.trace.ServingTrace`,
        a :class:`~repro.serving.sketches.StreamingTrace`, or an
        :class:`EngineRun` fanning records out to both a trace and a
        cluster-level sink.
        """
        for request in running:
            request.generated += steps
            if request.first_token_time is None:
                request.first_token_time = first_clock
        finished = [r for r in running if r.remaining <= 0]
        for done in finished:
            request = done.request
            if (prefix is not None and self.prefix_reuse
                    and getattr(request, "final_turn", True) is False):
                prefix.retain(request.session_id, request.max_seq_len,
                              self.shard_footprint(request))
            sink.observe(RequestRecord(
                request_id=request.request_id,
                arrival_time=request.arrival_time,
                admission_time=done.admission_time,
                first_token_time=done.first_token_time,
                completion_time=end_clock,
                input_len=request.input_len,
                output_len=request.output_len,
                slo_class=request.slo_class,
                prefix_len=getattr(request, "prefix_len", 0),
                prefix_hit=done.prefix_hit,
                preemptions=done.preemptions,
                preempting=done.preempting,
                prefill_chunks=done.prefill_chunks,
            ))
        if finished:
            # The epoch ends here; serve() recomputes the reservation
            # totals from the surviving batch before the next admission.
            running[:] = [r for r in running if r.remaining > 0]


class EngineRun:
    """One serve over one engine, as a discrete-event state machine.

    Re-expresses the retained clock loop event by event so that
    :func:`repro.serving.events.drive` can interleave many runs on a merged
    heap.  The life cycle is: ``offer(request)`` for every routed arrival
    (in ``(arrival_time, request_id)`` order), ``advance()`` whenever the
    driver pops this run's scheduled event, ``close()`` once the arrival
    source is exhausted, and ``finalize()`` after the loop drains — which
    writes the exact metadata the clock loop writes and returns the trace.

    State-machine invariants (they are what keep the event path
    bit-identical to the clock loop):

    * at most one scheduled event, and it is immutable once priced —
      arrivals only append behind the FCFS queue head the pricing used;
    * a decode epoch is priced only when the next queue head is known
      (queue non-empty or run closed); otherwise the run *blocks* and
      consumes no work until ``offer``/``close`` unblocks it;
    * an idle run with a queued head wakes exactly at
      ``max(clock, head.arrival_time)`` (the clock loop's idle jump);
    * admission, prefill, epoch pricing, and reservation accounting reuse
      the engine's own methods — the two paths share every formula.
    """

    def __init__(self, engine: ContinuousBatchingEngine, trace,
                 budget_tokens: int, observer=None,
                 eager_epochs: bool = False, observers: tuple = (),
                 replica: int = 0, fault_mode: bool = False) -> None:
        self.engine = engine
        self.trace = trace
        self.replica = replica
        self._observer = observer
        #: Observability hooks (see repro.obs).  Every hook site below is
        #: guarded by ``if self._obs`` so an observer-free run executes
        #: the exact pre-observability instruction stream — bit-identical
        #: golden journals, zero overhead when disabled.
        self._obs = tuple(observers) if observers else ()
        self._budget = budget_tokens
        self._shard_budgets = engine.shard_budgets(budget_tokens)
        self._shard_limit = min(self._shard_budgets)
        self._memory = MemoryHierarchy.from_hardware(engine.simulator.hardware)
        self._pending: deque[Request] = deque()
        self._running: list[_RunningRequest] = []
        self._prefix = _PrefixCache()
        #: Priority scheduling state (``engine.preemption`` set): one FCFS
        #: queue per SLO class, plus the wrappers of preempted requests
        #: awaiting re-admission (their requests sit back in the queues).
        self._priority = engine.preemption is not None
        self._pending_classes: dict[str, deque[Request]] = {
            name: deque() for name in SLO_CLASSES} if self._priority else {}
        self._preempted: dict[int, _RunningRequest] = {}
        self._num_preemptions = 0
        self._swap_bytes = 0.0
        self._recompute_tokens = 0
        #: Chunked prefill state (``engine.prefill_chunk_tokens`` set):
        #: admitted requests whose prefill is still being chunked, in
        #: admission order.  Decode epochs are scheduled only once the
        #: backlog drains, so chunking preserves the inline-prefill
        #: semantics that every admitted request finishes prefill before
        #: the batch decodes.
        self._chunking = engine.prefill_chunk_tokens is not None
        self._prefill_backlog: deque[_RunningRequest] = deque()
        self._num_chunks = 0
        self._chunked_tokens = 0
        self._max_chunk_s = 0.0
        #: Closed-loop mode: never block awaiting the next queue head
        #: (the head may depend on this run's own completions — blocking
        #: would deadlock); epochs priced with an empty queue get no
        #: arrival cut.
        self._eager = eager_epochs
        #: Fault-injection mode (see repro.faults): the run may be failed
        #: and recovered mid-serve, and must accept the retry offers that
        #: implies — after close(), and out of (arrival_time, request_id)
        #: order.  ``_arrival_floor`` is the latest dispatch instant seen,
        #: so a retry of an old arrival is never admitted before the
        #: coordinator actually re-dispatched it.
        self._fault_mode = fault_mode
        self._down = False
        self._num_failures = 0
        self._drained_bytes = 0.0
        self._arrival_floor = 0.0
        self._record_filter = None
        self._clock = 0.0
        self._reserved = 0
        self._shard_reserved = 0
        self._peak_reserved = 0
        self._peak_shard_reserved = 0
        self._num_epochs = 0
        self._num_steps = 0
        self._comm_time = 0.0
        self._offered = 0
        self._closed = False
        self._finalized = False
        #: The scheduled event: ``(ADMISSION, time)`` or
        #: ``(kind, end_clock, steps, first_clock, comm_per_step)``.
        self._event: tuple | None = None
        self._last_key: tuple[float, int] | None = None
        # Per-run deltas of the engine/simulator-lifetime counters.
        self._solver_before = engine.simulator.schedule_stats()
        self._epoch_hits_before = engine._epoch_hits
        self._epoch_misses_before = engine._epoch_misses
        if self._obs:
            self._prefix.listener = self._prefix_event
            gauges = RunGauges(self)
            for ob in self._obs:
                ob.on_serve_start(self.replica, gauges)

    def _prefix_event(self, event: str, session_id, tokens: int) -> None:
        """Fan the prefix cache's hit/miss/evict traffic out to observers."""
        for ob in self._obs:
            ob.on_prefix(self.replica, self._clock, event, session_id,
                         tokens)

    # ------------------------------------------------------------------ #
    # record sink (fans out to the trace and an optional cluster sink)
    # ------------------------------------------------------------------ #
    def observe(self, record: RequestRecord) -> None:
        if self._record_filter is not None:
            record = self._record_filter(record)
        self.trace.observe(record)
        if self._observer is not None:
            self._observer(record)
        if self._obs:
            for ob in self._obs:
                ob.on_completion(self.replica, record)

    # ------------------------------------------------------------------ #
    # driver interface (see repro.serving.events.ReplicaRun)
    # ------------------------------------------------------------------ #
    def check_admissible(self, request: Request) -> None:
        """Raise if ``request`` can never fit this run's shard budgets."""
        footprint = self.engine.shard_footprint(request)
        if footprint > self._shard_limit:
            raise ConfigurationError(
                f"request {request.request_id} needs {footprint} KV "
                f"tokens on each of {self.engine.num_shards} shard(s) but "
                f"the tightest shard budget is {self._shard_limit} (node "
                f"budget {self._budget}); it can never be admitted"
            )

    def offer(self, request: Request,
              now: float | None = None) -> tuple[float, str] | None:
        """Queue one routed arrival; return a newly scheduled event.

        ``now`` (fault mode only) is the simulated instant the arrival was
        dispatched to this run — for a retry that is later than the
        request's original ``arrival_time``, and the run must not admit it
        before then.
        """
        if self._down:
            raise ConfigurationError(
                "cannot offer a request to a failed replica — health-aware "
                "routing must exclude it"
            )
        if self._closed and not self._fault_mode:
            raise ConfigurationError(
                "cannot offer a request to a closed run"
            )
        key = (request.arrival_time, request.request_id)
        if (self._last_key is not None and key < self._last_key
                and not self._fault_mode):
            raise ConfigurationError(
                f"requests must be offered in (arrival_time, request_id) "
                f"order; got {key} after {self._last_key}"
            )
        self._last_key = key
        if now is not None and now > self._arrival_floor:
            self._arrival_floor = now
        self.check_admissible(request)
        if self._priority:
            self._pending_classes[request.slo_class].append(request)
        else:
            self._pending.append(request)
        self._offered += 1
        if self._obs:
            for ob in self._obs:
                ob.on_arrival(self.replica, request.arrival_time, request)
        if self._event is None:
            # A queued arrival can only unblock an idle or head-starved
            # run; an already-scheduled event is never affected (it was
            # priced against the queue head, and this request is behind it).
            return self._schedule()
        return None

    def advance(self) -> tuple[float, str] | None:
        """Process the scheduled event; return the next one (if any)."""
        if self._event is None:
            raise ConfigurationError("run has no scheduled event to advance")
        event, self._event = self._event, None
        if event[0] == ADMISSION:
            self._clock = max(self._clock, event[1])
        elif event[0] == PREFILL_CHUNK:
            _, end, parts, _, comm = event
            self._apply_chunk(end, parts, comm)
        else:
            kind, end, steps, first, comm_per_step = event
            self._apply_epoch(kind, end, steps, first, comm_per_step)
        return self._cycle()

    def close(self) -> tuple[float, str] | None:
        """No further arrivals: unblock a head-starved run, mark closed."""
        if self._closed:
            return None
        self._closed = True
        if self._event is None and self._running:
            # The run was blocked awaiting its next queue head; it now
            # knows no head is coming and can price its remaining epochs.
            return self._schedule()
        return None

    @property
    def finished(self) -> bool:
        return (self._closed and self._event is None
                and not self._has_pending and not self._running)

    # ------------------------------------------------------------------ #
    # fault surface (driven by repro.faults.FaultCoordinator)
    # ------------------------------------------------------------------ #
    def gauges(self) -> RunGauges:
        """Live gauge view of this run (the load shedder reads these)."""
        return RunGauges(self)

    def set_record_filter(self, record_filter) -> None:
        """Install a record transform applied before every sink sees it
        (the coordinator's retry-count annotation)."""
        self._record_filter = record_filter

    def stage_resumption(self, wrapper: _RunningRequest) -> None:
        """Park a migrated wrapper (drain-retained KV) for its re-offer.

        The request is offered right after; admission then takes the
        preemption-resume path — full footprint re-reserved, the retained
        host KV swap-in priced on *this* replica's link, the remaining
        prefill (if it was interrupted mid-chunk) re-chunked here.
        """
        self._preempted[wrapper.request.request_id] = wrapper

    def fail(self, time: float, mode: str) -> list:
        """Take this replica down at ``time``; return its interrupted work.

        Returns ``(ready_time, request, wrapper)`` triples — ``wrapper`` is
        ``None`` when the request must re-prefill from scratch on its next
        replica, or a migrated :class:`_RunningRequest` whose retained KV
        travels with it.

        ``"crash"`` loses everything instantly: queued, running, and
        preempted requests are interrupted at the fail instant with no
        wrapper (the node's device *and* host KV images are gone), and any
        epoch in flight is cancelled — its already-ledgered PCIe traffic
        stays on the link ledger (documented imprecision: the transfer was
        issued before the crash).  ``"drain"`` stops admissions but
        migrates work: each running request's resident KV
        (``context_length`` minus any un-prefilled chunk backlog) is
        serialized device-to-host on this replica's link, so its
        ``ready_time`` is its transfer's end; already-preempted wrappers
        migrate for free (their KV is in host memory already) and queued
        requests leave at the fail instant.  Both modes flush the prefix
        cache — a recovered replica rejoins cold.
        """
        engine = self.engine
        if not self._fault_mode:
            raise ConfigurationError(
                "fail() on a run not started with fault_mode=True"
            )
        if self._down:
            raise ConfigurationError(
                f"replica {self.replica} failed while already down"
            )
        self._down = True
        self._num_failures += 1
        self._clock = max(self._clock, time)
        self._event = None  # the in-flight event died with the replica
        fail_clock = self._clock
        interrupted: list[tuple[float, Request, _RunningRequest | None]] = []
        queued: list[Request] = []
        if self._priority:
            for name in SLO_CLASSES:
                queue = self._pending_classes[name]
                queued.extend(queue)
                queue.clear()
        else:
            queued.extend(self._pending)
            self._pending.clear()
        for request in queued:
            # A preempted request sits in the queue with its wrapper parked
            # in _preempted; under drain the wrapper's host-resident KV
            # migrates without a new transfer, under crash it is lost.
            wrapper = self._preempted.pop(request.request_id, None)
            if mode == "crash":
                wrapper = None
            interrupted.append((fail_clock, request, wrapper))
        ready = fail_clock
        for wrapper in self._running:
            if mode == "drain":
                resident = wrapper.context_length - wrapper.chunk_remaining
                if resident > 0:
                    num_bytes = engine.simulator.cost_model.kv_bytes(
                        1, resident, engine.simulator.kv_dtype)
                    ready += self._memory.link.device_to_host(num_bytes)
                    self._drained_bytes += num_bytes
                wrapper.swap_tokens = resident
                wrapper.prefill_tokens = wrapper.chunk_remaining
                wrapper.chunk_remaining = 0
                interrupted.append((ready, wrapper.request, wrapper))
            else:
                interrupted.append((fail_clock, wrapper.request, None))
        self._running.clear()
        self._preempted.clear()
        self._prefill_backlog.clear()
        self._prefix.flush()
        self._reserved = 0
        self._shard_reserved = 0
        self._clock = ready
        return interrupted

    def recover(self, time: float) -> tuple[float, str] | None:
        """Bring the replica back up (cold) and reschedule if work waits."""
        if not self._down:
            raise ConfigurationError(
                f"replica {self.replica} recovered while not down"
            )
        self._down = False
        self._clock = max(self._clock, time)
        return self._schedule()

    # ------------------------------------------------------------------ #
    # internals: the clock loop's iteration, split at its wait points
    # ------------------------------------------------------------------ #
    @property
    def _has_pending(self) -> bool:
        if self._priority:
            return any(self._pending_classes.values())
        return bool(self._pending)

    def _next_arrival(self) -> float:
        """Earliest queued arrival (any class); queues must be non-empty."""
        if self._priority:
            return min(queue[0].arrival_time
                       for queue in self._pending_classes.values() if queue)
        return self._pending[0].arrival_time

    def _cycle(self) -> tuple[float, str] | None:
        """One admission round at the current clock, then (re)schedule."""
        engine = self.engine
        admitted = (self._admit_priority() if self._priority
                    else self._admit_fifo())
        if self._reserved > self._peak_reserved:
            self._peak_reserved = self._reserved
        if self._shard_reserved > self._peak_shard_reserved:
            self._peak_shard_reserved = self._shard_reserved
        if admitted:
            if self._chunking:
                # Chunked prefill: nothing is priced here — the admitted
                # requests join the chunk backlog and _schedule_chunk
                # prices budget-sized slices, interleaving the next
                # admission round between them.
                for wrapper in admitted:
                    if wrapper.prefill_tokens > 0:
                        wrapper.chunk_remaining = wrapper.prefill_tokens
                        self._prefill_backlog.append(wrapper)
            else:
                prefill, prefill_comm = engine._prefill_time(admitted,
                                                             self._memory)
                prefill_start = self._clock
                self._clock += prefill
                self._comm_time += prefill_comm
                if self._obs and prefill > 0.0:
                    batch = [wrapper.request for wrapper in admitted]
                    for ob in self._obs:
                        ob.on_prefill(self.replica, prefill_start,
                                      self._clock, batch)
        return self._schedule()

    def _admit_fifo(self) -> list[_RunningRequest]:
        """FCFS admission: the queue head blocks until it fits."""
        engine = self.engine
        pending, running = self._pending, self._running
        admitted: list[_RunningRequest] = []
        while (pending and pending[0].arrival_time <= self._clock
               and engine._fits(pending[0], running, self._shard_reserved,
                                self._shard_limit, self._prefix)):
            admitted.append(self._admit_one(pending.popleft()))
        return admitted

    def _admit_priority(self) -> list[_RunningRequest]:
        """Priority admission: highest arrived class first, may preempt.

        The candidate is always the head of the highest-priority class
        whose head has arrived.  An infeasible candidate blocks itself
        *and* every lower class (strict priority — lower-class requests
        never jump a starved higher class), unless it is entitled to evict
        enough lower-priority running requests to fit.
        """
        engine = self.engine
        running = self._running
        admitted: list[_RunningRequest] = []
        while True:
            candidate_queue = None
            for name in SLO_CLASSES:
                queue = self._pending_classes[name]
                if queue and queue[0].arrival_time <= self._clock:
                    candidate_queue = queue
                    break
            if candidate_queue is None:
                break
            candidate = candidate_queue[0]
            if engine._fits(candidate, running, self._shard_reserved,
                            self._shard_limit, self._prefix):
                admitted.append(self._admit_one(candidate_queue.popleft()))
            elif self._can_preempt(candidate):
                self._preempt_for(candidate)
                wrapper = self._admit_one(candidate_queue.popleft())
                # Its queueing delay is the preemption latency the chunk
                # budget bounds (ServingTrace.p99_preemption_latency).
                wrapper.preempting = True
                admitted.append(wrapper)
            else:
                break
        if self._num_preemptions and admitted:
            # A same-cycle preemption may have evicted a request admitted
            # moments earlier; it must not be prefilled as admitted.
            still_running = {id(r) for r in running}
            admitted = [r for r in admitted if id(r) in still_running]
        return admitted

    def _admit_one(self, request: Request) -> _RunningRequest:
        """Admit one request (or resume its preempted wrapper)."""
        engine = self.engine
        wrapper = self._preempted.pop(request.request_id, None)
        if wrapper is not None:
            # Re-admission of preempted work: the full footprint is
            # re-reserved (evicting retained prefixes if it must), the
            # prefix cache is otherwise untouched, and a retained KV image
            # is swapped back over the PCIe link.
            footprint = engine.shard_footprint(request)
            node_freed, shard_freed = self._prefix.make_room(
                footprint, self._shard_reserved, self._shard_limit)
            self._reserved += request.max_seq_len - node_freed
            self._shard_reserved += footprint - shard_freed
            if wrapper.swap_tokens:
                num_bytes = engine.simulator.cost_model.kv_bytes(
                    1, wrapper.swap_tokens, engine.simulator.kv_dtype)
                self._clock += self._memory.link.host_to_device(num_bytes)
                self._swap_bytes += num_bytes
                wrapper.swap_tokens = 0
            self._running.append(wrapper)
            if self._obs:
                for ob in self._obs:
                    ob.on_admission(self.replica, self._clock, request,
                                    prefix_hit=wrapper.prefix_hit,
                                    resumed=True)
            return wrapper
        wrapper, node_delta, shard_delta = engine._admit_request(
            request, self._prefix, self._shard_reserved, self._shard_limit,
            self._clock)
        self._reserved += node_delta
        self._shard_reserved += shard_delta
        self._running.append(wrapper)
        if self._obs:
            for ob in self._obs:
                ob.on_admission(self.replica, self._clock, request,
                                prefix_hit=wrapper.prefix_hit,
                                resumed=False)
        return wrapper

    def _can_preempt(self, candidate: Request) -> bool:
        """Could evicting every lower-priority running request fit
        ``candidate``?  (The actual eviction stops as soon as it fits.)"""
        engine = self.engine
        rank = SLO_CLASSES.index
        candidate_rank = rank(candidate.slo_class)
        victims = [r for r in self._running
                   if rank(r.request.slo_class) > candidate_rank]
        if not victims:
            return False
        if (engine.max_batch_size is not None
                and len(self._running) - len(victims) + 1
                > engine.max_batch_size):
            return False
        freed = sum(engine.shard_footprint(v.request) for v in victims)
        return (self._shard_reserved - freed
                + engine.shard_footprint(candidate)
                - self._prefix.shard_total <= self._shard_limit)

    def _preempt_for(self, candidate: Request) -> None:
        """Evict lower-priority running requests until ``candidate`` fits.

        Victims are evicted latest-admitted-first (LIFO — the least sunk
        work is sacrificed) and their requests re-enqueued at the head of
        their class queue, which keeps that queue (arrival, id)-sorted
        because earlier-admitted requests have earlier keys.
        """
        engine = self.engine
        rank = SLO_CLASSES.index
        candidate_rank = rank(candidate.slo_class)
        running = self._running
        for index in range(len(running) - 1, -1, -1):
            victim = running[index]
            if rank(victim.request.slo_class) <= candidate_rank:
                continue
            self._evict(victim, index)
            if engine._fits(candidate, running, self._shard_reserved,
                            self._shard_limit, self._prefix):
                return

    def _evict(self, victim: _RunningRequest, index: int) -> None:
        engine = self.engine
        request = victim.request
        evict_start = self._clock
        del self._running[index]
        self._reserved -= request.max_seq_len
        self._shard_reserved -= engine.shard_footprint(request)
        victim.preemptions += 1
        self._num_preemptions += 1
        # A mid-prefill victim (chunked prefill) leaves the chunk backlog;
        # only the KV its completed chunks actually computed is resident —
        # that is what "retain" swaps out and what "recompute" wastes.
        # With chunking off (or prefill done) chunk_remaining is 0 and
        # ``resident`` is exactly the full context, the PR 7 arithmetic.
        if victim.chunk_remaining > 0:
            try:
                self._prefill_backlog.remove(victim)
            except ValueError:
                pass  # evicted before its admission round backlogged it
        resident = victim.context_length - victim.chunk_remaining
        if engine.preemption == "retain":
            # Swap the context computed so far out to host memory now; the
            # matching swap-in is priced at re-admission, and any chunks
            # that never ran are re-prefilled there too.
            num_bytes = engine.simulator.cost_model.kv_bytes(
                1, resident, engine.simulator.kv_dtype)
            self._clock += self._memory.link.device_to_host(num_bytes)
            self._swap_bytes += num_bytes
            victim.swap_tokens = resident
            victim.prefill_tokens = victim.chunk_remaining
        else:  # "recompute": drop the KV, re-prefill the context on resume
            victim.swap_tokens = 0
            victim.prefill_tokens = victim.context_length
            self._recompute_tokens += resident
        victim.chunk_remaining = 0
        self._preempted[request.request_id] = victim
        self._pending_classes[request.slo_class].appendleft(request)
        if self._obs:
            for ob in self._obs:
                ob.on_preemption(self.replica, evict_start, self._clock,
                                 request, engine.preemption, resident)

    def _schedule(self) -> tuple[float, str] | None:
        """Compute the run's next event from its state (None = wait)."""
        if not self._running:
            if self._has_pending:
                # Idle with a queued head: wake at its arrival instant (but
                # never before a retry's re-dispatch — the floor is 0.0
                # outside fault mode).
                time = max(self._clock, self._next_arrival())
                if self._arrival_floor > time:
                    time = self._arrival_floor
                self._event = (ADMISSION, time)
                return (time, ADMISSION)
            return None  # awaiting offers, or finished once closed
        if self._chunking and self._prefill_backlog:
            # Chunks take priority over decode (prioritized prefill) and
            # never wait on the next queue head: a chunk is a fixed-
            # duration event, and the admission round between chunks is
            # what bounds a preemptor's wait.
            return self._schedule_chunk()
        if not self._has_pending and not self._closed and not self._eager:
            return None  # blocked: the epoch cut needs the next queue head
        return self._schedule_epoch()

    def _cut_arrival(self) -> tuple[float | None, bool]:
        """The earliest arrival that can end the next epoch, if any.

        Returns ``(arrival_time, needs_preemption)``.  The batch is fixed
        for the whole epoch, so each queue head's feasibility is too.  In
        priority mode an *arrived* head was just refused by the admission
        round — it is infeasible against this batch and blocks its own and
        every lower class, but higher classes keep their cuts.
        """
        engine = self.engine
        if not self._priority:
            pending = self._pending
            if pending and engine._fits(pending[0], self._running,
                                        self._shard_reserved,
                                        self._shard_limit, self._prefix):
                return pending[0].arrival_time, False
            return None, False
        best: tuple[float, bool] | None = None
        for name in SLO_CLASSES:
            queue = self._pending_classes[name]
            if not queue:
                continue
            head = queue[0]
            if head.arrival_time <= self._clock:
                break
            fits = engine._fits(head, self._running, self._shard_reserved,
                                self._shard_limit, self._prefix)
            if fits or self._can_preempt(head):
                if best is None or head.arrival_time < best[0]:
                    best = (head.arrival_time, not fits)
        return best if best is not None else (None, False)

    def _schedule_chunk(self) -> tuple[float, str]:
        """Price the next prefill chunk off the backlog head.

        The chunk takes tokens FCFS from the backlog until the budget is
        spent — it may finish one request's prefill and start the next's
        in the same pass (the batched-chunk shape prices both together).
        """
        engine = self.engine
        budget = engine.prefill_chunk_tokens
        parts: list[tuple[_RunningRequest, int]] = []
        for wrapper in self._prefill_backlog:
            if budget <= 0:
                break
            take = min(wrapper.chunk_remaining, budget)
            parts.append((wrapper, take))
            budget -= take
        time, comm = engine._chunk_time(parts, self._memory)
        if time > self._max_chunk_s:
            self._max_chunk_s = time
        end = self._clock + time
        self._event = (PREFILL_CHUNK, end, parts, time, comm)
        return (end, PREFILL_CHUNK)

    def _apply_chunk(self, end: float,
                     parts: list[tuple[_RunningRequest, int]],
                     comm: float) -> None:
        chunk_start = self._clock
        self._clock = end
        self._comm_time += comm
        self._num_chunks += 1
        for wrapper, tokens in parts:
            wrapper.chunk_remaining -= tokens
            wrapper.prefill_chunks += 1
            self._chunked_tokens += tokens
        backlog = self._prefill_backlog
        while backlog and backlog[0].chunk_remaining <= 0:
            backlog.popleft()
        if self._obs:
            chunk_parts = [(wrapper.request, tokens)
                           for wrapper, tokens in parts]
            for ob in self._obs:
                ob.on_prefill_chunk(self.replica, chunk_start, end,
                                    chunk_parts)

    def _schedule_epoch(self) -> tuple[float, str]:
        engine = self.engine
        running = self._running
        workload = Workload(
            batch_size=len(running),
            input_len=max(r.context_length for r in running),
            output_len=min(r.remaining for r in running),
            name="serving-decode",
        )
        self._num_epochs += 1
        cut_arrival, needs_preemption = self._cut_arrival()
        price = (engine._price_epoch_stepwise
                 if engine.simulator.exact_stepping
                 else engine._price_epoch_fast)
        end, steps, first, comm_per_step = price(
            workload, cut_arrival, self._clock, self._memory)
        # The final step of a full epoch completes its shortest requests; a
        # shorter epoch was cut by an arrival — one that will preempt, or
        # one that simply fits.
        if steps == workload.output_len:
            kind = COMPLETION
        elif needs_preemption:
            kind = PREEMPTION
        else:
            kind = EPOCH_BOUNDARY
        self._event = (kind, end, steps, first, comm_per_step)
        return (end, kind)

    def _apply_epoch(self, kind: str, end: float, steps: int, first: float,
                     comm_per_step: float) -> None:
        engine = self.engine
        epoch_start = self._clock
        self._clock = end
        self._num_steps += steps
        self._comm_time += steps * comm_per_step
        if self._obs:
            # Before _finish_epoch: the batch here is the epoch's actual
            # composition (completions leave via observe → on_completion).
            batch = [r.request for r in self._running]
            for ob in self._obs:
                ob.on_epoch(self.replica, epoch_start, end, kind, steps,
                            first, batch)
        engine._finish_epoch(self._running, self, steps, first, end,
                             self._prefix)
        self._reserved = (sum(r.request.max_seq_len for r in self._running)
                          + self._prefix.node_total)
        self._shard_reserved = (sum(engine.shard_footprint(r.request)
                                    for r in self._running)
                                + self._prefix.shard_total)

    # ------------------------------------------------------------------ #
    def finalize(self):
        """Write the serve metadata and return the trace.

        Produces exactly the metadata the retained clock loop writes —
        including the empty-trace shape for a run that was never offered a
        request (a replica the routing policy starved).
        """
        if not self.finished:
            raise ConfigurationError(
                "finalize() before the event loop drained this run"
            )
        if self._finalized:
            return self.trace
        self._finalized = True
        if self._obs:
            for ob in self._obs:
                ob.on_serve_end(self.replica, self._clock)
        engine = self.engine
        trace = self.trace
        if self._fault_mode:
            trace.metadata["faults"] = {
                "num_failures": self._num_failures,
                "drained_bytes": self._drained_bytes,
            }
        if self._offered == 0:
            trace.metadata.update(kv_budget_tokens=0, peak_reserved_tokens=0,
                                  num_epochs=0, num_decode_steps=0,
                                  pcie_bytes=0.0, shards=[],
                                  comm_time_s=0.0, comm_time_share=0.0)
            return trace
        trace.metadata.update(
            kv_budget_tokens=self._budget,
            peak_reserved_tokens=self._peak_reserved,
            num_epochs=self._num_epochs,
            num_decode_steps=self._num_steps,
            pcie_bytes=self._memory.link.total_bytes,
            shards=[
                {"shard": index, "budget_tokens": shard_budget,
                 "peak_reserved_tokens": self._peak_shard_reserved,
                 "peak_occupancy": (self._peak_shard_reserved / shard_budget
                                    if shard_budget > 0 else 0.0)}
                for index, shard_budget in enumerate(self._shard_budgets)
            ],
            comm_time_s=self._comm_time,
            comm_time_share=(self._comm_time / self._clock
                             if self._clock > 0 else 0.0),
        )
        if self._prefix.touched:
            trace.metadata["prefix_cache"] = self._prefix.stats()
        if engine.preemption is not None:
            trace.metadata["preemption"] = {
                "mode": engine.preemption,
                "count": self._num_preemptions,
                "swap_bytes": self._swap_bytes,
                "recompute_tokens": self._recompute_tokens,
            }
        if engine.prefill_chunk_tokens is not None:
            trace.metadata["prefill_chunking"] = {
                "chunk_tokens": engine.prefill_chunk_tokens,
                "num_chunks": self._num_chunks,
                "chunked_tokens": self._chunked_tokens,
                "max_chunk_s": self._max_chunk_s,
            }
        if not engine.simulator.exact_stepping:
            trace.metadata["epoch_cache"] = {
                "hits": engine._epoch_hits - self._epoch_hits_before,
                "misses": engine._epoch_misses - self._epoch_misses_before,
            }
        solver_after = engine.simulator.schedule_stats()
        if solver_after:
            trace.metadata["scheduler"] = {
                key: value - self._solver_before.get(key, 0)
                for key, value in solver_after.items()
            }
        return trace
