"""Discrete-event driver for the serving and cluster layers.

The clock-stepped serving loop advanced wall-clock time iteration by
iteration, so simulating an idle second cost as much as a busy one.  The
event-driven core instead jumps between the instants where something can
actually change:

* **arrival** — the next request of the (sorted) arrival source reaches the
  front-end and is routed to exactly one replica run;
* **epoch-boundary** — a replica's priced decode epoch ends early because
  its queue head became admissible (the batch composition changes);
* **completion** — a replica's priced decode epoch ends because its
  shortest-remaining requests produce their last token.

:func:`drive` merges these into one :mod:`heapq` stream over any number of
replica runs (``ContinuousBatchingEngine.start_run`` builds one run per
replica) and a ``route`` callback that picks the run each arrival joins.

Heap invariants
---------------
1. **Arrivals outrun run events at equal timestamps.**  Admission uses
   ``arrival_time <= clock``, so a request arriving exactly at an epoch
   boundary must already be queued when the boundary is processed —
   otherwise the next epoch would be priced against the wrong queue head.
2. **At most one scheduled event per run, and it never changes.**  A run's
   next event is a pure function of its state; new arrivals only append to
   the run's FCFS queue tail, which cannot affect an already-priced epoch
   (the epoch cut depends only on the queue *head*).
3. **A run prices an epoch only when its next queue head is known** — its
   pending queue is non-empty or the source is exhausted (``close``).  The
   epoch cut depends on the next routed request even when that request
   arrives after the epoch's natural end, so a run with an empty queue
   *blocks* (consumes zero work) until the next arrival is routed to it or
   the source closes.  This is the conservative-synchronization condition
   that keeps event-driven traces bit-identical to the clock-stepped loop.
4. **One lazy arrival at a time.**  Only the next unrouted request sits in
   the heap, so a million-request source never materializes: memory holds
   the heap (O(replicas)), each run's backlog, and the metric sinks.

Ties between run events at one timestamp break by run index, and the heap
sequence number makes every entry unique — ordering is deterministic, which
is what makes serving traces a pure function of ``(trace seed, routing
policy, router seed)``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from repro._common import ConfigurationError
from repro.serving.trace import normalize_class_slos
from repro.workloads.arrivals import Request

#: Event kinds, as they appear in ``drive``'s journal.
ARRIVAL = "arrival"
ADMISSION = "admission"
EPOCH_BOUNDARY = "epoch-boundary"
COMPLETION = "completion"
#: An epoch cut short because a higher-priority arrival will evict running
#: lower-priority requests at the boundary (engines built with
#: ``preemption="retain"`` or ``"recompute"``; never emitted otherwise, so
#: preemption-free journals are unchanged).
PREEMPTION = "preemption"
#: One budget-sized slice of a chunked prefill pass (engines built with
#: ``prefill_chunk_tokens=N``).  Chunks are fixed-duration events — they are
#: never cut by arrivals — and admission/preemption runs between them, which
#: is what bounds the wait of a higher-priority arrival to one chunk's
#: priced time.  Never emitted with chunking disabled, so chunk-free
#: journals are unchanged.
PREFILL_CHUNK = "prefill-chunk"
#: A replica goes down / comes back per a :mod:`repro.faults` schedule
#: (serves with ``faults=``).  Fault events outrank even arrivals at equal
#: timestamps, so routing always sees the current health; never emitted
#: with ``faults=None``, so fault-free journals are unchanged.
REPLICA_FAIL = "replica-fail"
REPLICA_RECOVER = "replica-recover"

#: Marker in the heap's index slot distinguishing re-injected retry
#: arrivals from source arrivals (which trigger the one-ahead pull).
_RETRY = "retry"


class ReplicaRun(Protocol):
    """What :func:`drive` needs from a replica run (see ``EngineRun``)."""

    def offer(self, request: Request) -> tuple[float, str] | None:
        """Queue an arrival; return a newly scheduled ``(time, kind)``."""

    def advance(self) -> tuple[float, str] | None:
        """Process the run's scheduled event; return the next one."""

    def close(self) -> tuple[float, str] | None:
        """No further arrivals will be offered; return a scheduled event."""

    @property
    def finished(self) -> bool:
        """True once the run has drained its queue and running batch."""


class ContinuationSource(Protocol):
    """An arrival source fed by the simulation it drives (closed loop).

    Unlike a plain iterable, a continuation source's future arrivals may
    depend on completions the engine has not produced yet: popping returns
    ``None`` while the source is *waiting* (turns outstanding but none
    ready), and only :attr:`exhausted` says no arrival will ever come
    again.  The serve layer feeds completions back through whatever
    callback the source exposes (see
    ``repro.workloads.sessions.ClosedLoopSessions.on_completion``) —
    :func:`drive` itself only pops.
    """

    def peek_time(self) -> float | None:
        """Arrival time of the earliest ready request (None when none)."""

    def pop_next(self) -> Request | None:
        """Pop the earliest ready request (None when none is ready)."""

    @property
    def exhausted(self) -> bool:
        """True once every request has been popped — none will ever follow."""


def check_observers(observers) -> tuple:
    """Canonicalise an ``observers=`` serve argument to a tuple.

    ``None``/empty becomes ``()`` — the zero-overhead path every hook
    site guards on.  Anything else must be a list/tuple of objects
    implementing the :class:`repro.obs.Observer` callbacks (duck-typed:
    the serving core never imports :mod:`repro.obs`); a plainly wrong
    argument fails here rather than deep inside a serve.
    """
    if not observers:
        return ()
    if not isinstance(observers, (list, tuple)):
        raise ConfigurationError(
            "observers must be a list/tuple of Observer-like objects "
            f"(got {type(observers).__name__}; wrap a single observer in "
            "a list)"
        )
    for observer in observers:
        if not callable(getattr(observer, "on_completion", None)):
            raise ConfigurationError(
                f"observer {observer!r} does not implement the Observer "
                "callbacks (subclass repro.obs.Observer)"
            )
    return tuple(observers)


def notify_finish(observers, trace, class_slos: dict | None) -> None:
    """Call every observer's ``finish`` hook with the final trace.

    Runs after the serve's metadata (including ``wall_clock_s``) is
    written, with the normalized per-class SLOs — the point where e.g.
    :class:`repro.obs.SpanTracer` attaches
    ``trace.metadata["slo_attribution"]``.
    """
    if not observers:
        return
    slos = normalize_class_slos(class_slos)
    for observer in observers:
        observer.finish(trace, slos)


def drive(source, runs: list[ReplicaRun],
          route: Callable[[Request], int],
          journal: list | None = None,
          observers: tuple = (),
          faults=None) -> None:
    """Run the merged event loop to completion.

    ``source`` yields requests in ``(arrival_time, request_id)`` order (one
    is pulled ahead at a time, so generators and streams never
    materialize); ``route(request)`` returns the index of the run each
    arrival joins, called exactly once per request in arrival order —
    dispatch-time routing, exactly as a front-end load balancer decides.
    ``journal``, when given, receives ``(time, kind, run_index)`` tuples
    for every processed event (a test/debug surface; see
    ``tests/test_serving_events.py``).  ``observers`` receive the same
    stream through their ``on_event`` hook (see :mod:`repro.obs`),
    *before* the event is applied — discrete-event state is piecewise
    constant, so that is the state at the event instant.

    A :class:`ContinuationSource` (anything with ``pop_next``) switches to
    the closed-loop body: arrivals are popped only when they precede every
    scheduled run event, so turns injected by completions mid-loop are
    served in true time order, and runs are closed only once the source is
    exhausted — not merely momentarily empty.

    ``faults``, when given, is a bound
    :class:`repro.faults.FaultCoordinator` and switches to the
    fault-injection body (:func:`_drive_with_faults`) — a separate loop,
    so serves with ``faults=None`` execute exactly the instruction stream
    they always did.
    """
    if not runs:
        raise ConfigurationError("drive needs at least one replica run")
    if faults is not None:
        if hasattr(source, "pop_next"):
            raise ConfigurationError(
                "fault injection does not support closed-loop sources — "
                "lower the session trace to its open-loop request stream"
            )
        _drive_with_faults(source, runs, journal, observers, faults)
        return
    if hasattr(source, "pop_next"):
        _drive_continuation(source, runs, route, journal, observers)
        return
    arrivals = iter(source)
    heap: list[tuple] = []
    sequence = 0
    last_key: tuple[float, int] | None = None
    closed = False

    def push_run_event(index: int, event: tuple[float, str] | None) -> None:
        nonlocal sequence
        if event is None:
            return
        time, kind = event
        sequence += 1
        # Run events tie-break after arrivals (invariant 1) and between
        # themselves by run index; the sequence number keeps entries unique
        # so heapq never compares payloads.
        heapq.heappush(heap, (time, index, sequence, kind, index, None))

    def pull_arrival() -> None:
        nonlocal sequence, closed, last_key
        if closed:
            return
        request = next(arrivals, None)
        if request is None:
            closed = True
            for index, run in enumerate(runs):
                push_run_event(index, run.close())
            return
        key = (request.arrival_time, request.request_id)
        if last_key is not None and key < last_key:
            raise ConfigurationError(
                f"arrival source must be sorted by (arrival_time, "
                f"request_id); got {key} after {last_key}"
            )
        last_key = key
        sequence += 1
        heapq.heappush(heap,
                       (request.arrival_time, -1, sequence, ARRIVAL, None,
                        request))

    pull_arrival()
    while heap:
        time, _, _, kind, index, request = heapq.heappop(heap)
        if kind == ARRIVAL:
            target = route(request)
            if not 0 <= target < len(runs):
                raise ConfigurationError(
                    f"route() must return a run index in [0, {len(runs)}), "
                    f"got {target!r}"
                )
            if journal is not None:
                journal.append((time, ARRIVAL, target))
            if observers:
                for observer in observers:
                    observer.on_event(time, ARRIVAL, target)
            push_run_event(target, runs[target].offer(request))
            pull_arrival()
        else:
            if journal is not None:
                journal.append((time, kind, index))
            if observers:
                for observer in observers:
                    observer.on_event(time, kind, index)
            push_run_event(index, runs[index].advance())

    for index, run in enumerate(runs):
        if not run.finished:
            raise ConfigurationError(
                f"event loop drained with run {index} unfinished — a run "
                f"scheduled no event while holding work (driver invariant "
                f"violation)"
            )


def _drive_continuation(source, runs: list[ReplicaRun],
                        route: Callable[[Request], int],
                        journal: list | None = None,
                        observers: tuple = ()) -> None:
    """Closed-loop body of :func:`drive` (see :class:`ContinuationSource`).

    The one-ahead pull of the open-loop body is unsound here: a completion
    at time ``t`` may inject a turn earlier than an arrival already pulled
    into the heap.  Instead the source is *peeked* every iteration and an
    arrival is popped only when it precedes every scheduled run event
    (arrivals win ties, invariant 1), which keeps the offered order sorted:
    any turn injected later departs from a completion at or after the
    current heap minimum, so it can never predate an arrival already
    popped.  Runs are closed only when the source is exhausted — a
    momentarily-empty source still owes the arrivals its outstanding
    completions will trigger.  Runs driven closed-loop must therefore never
    block awaiting their next queue head (``EngineRun`` is built with
    ``eager_epochs=True``), or the loop would deadlock on the circular wait
    between an epoch's cut and the arrival it produces.
    """
    heap: list[tuple] = []
    sequence = 0
    closed = False

    def push_run_event(index: int, event: tuple[float, str] | None) -> None:
        nonlocal sequence
        if event is None:
            return
        time, kind = event
        sequence += 1
        heapq.heappush(heap, (time, index, sequence, kind, index, None))

    while True:
        ready = source.peek_time()
        if ready is not None and (not heap
                                  or (ready, -1) <= (heap[0][0], heap[0][1])):
            request = source.pop_next()
            target = route(request)
            if not 0 <= target < len(runs):
                raise ConfigurationError(
                    f"route() must return a run index in [0, {len(runs)}), "
                    f"got {target!r}"
                )
            if journal is not None:
                journal.append((request.arrival_time, ARRIVAL, target))
            if observers:
                for observer in observers:
                    observer.on_event(request.arrival_time, ARRIVAL, target)
            push_run_event(target, runs[target].offer(request))
            continue
        if ready is None and source.exhausted and not closed:
            closed = True
            for index, run in enumerate(runs):
                push_run_event(index, run.close())
            continue
        if not heap:
            break
        time, _, _, kind, index, _ = heapq.heappop(heap)
        if journal is not None:
            journal.append((time, kind, index))
        if observers:
            for observer in observers:
                observer.on_event(time, kind, index)
        push_run_event(index, runs[index].advance())

    if not source.exhausted:
        raise ConfigurationError(
            "closed-loop event loop drained with the source still waiting "
            "for completions — a run dropped work without recording it"
        )
    for index, run in enumerate(runs):
        if not run.finished:
            raise ConfigurationError(
                f"event loop drained with run {index} unfinished — a run "
                f"scheduled no event while holding work (driver invariant "
                f"violation)"
            )


def _drive_with_faults(source, runs: list[ReplicaRun],
                       journal: list | None, observers: tuple,
                       faults) -> None:
    """Fault-injection body of :func:`drive`.

    Differences from the open-loop body, each forced by failures:

    * **fault events** — the coordinator's fail/recover timeline is pushed
      up front at priority ``-2``, so a failure at time ``t`` is processed
      before an arrival at ``t`` (routing sees current health) and before
      any run event at ``t`` (an epoch "ending" at the crash instant never
      lands);
    * **stale-event invalidation** — invariant 2 ("a scheduled run event
      never changes") breaks when a replica fails: its in-flight event is
      cancelled.  Each run's live event sequence number is tracked in
      ``valid``; popped run events whose sequence no longer matches are
      skipped;
    * **coordinator dispatch** — arrivals (and re-injected retries, pushed
      at priority ``-1`` like source arrivals) route through
      ``faults.dispatch``, which may shed or park them instead of
      returning a run index;
    * **late offers** — retries and parked arrivals may be offered after
      the source closed and out of ``(arrival_time, request_id)`` order;
      runs built for fault mode accept both (``EngineRun(fault_mode=True)``).
    """
    arrivals = iter(source)
    heap: list[tuple] = []
    sequence = 0
    last_key: tuple[float, int] | None = None
    closed = False
    #: Per-run sequence number of the one live scheduled event (0 = none);
    #: a failure zeroes it, orphaning the heap entry.
    valid = [0] * len(runs)

    def emit(time: float, kind: str, index: int) -> None:
        if journal is not None:
            journal.append((time, kind, index))
        if observers:
            for observer in observers:
                observer.on_event(time, kind, index)

    def push_run_event(index: int, event: tuple[float, str] | None) -> None:
        nonlocal sequence
        if event is None:
            # No new event scheduled; any live one stays valid (only a
            # failure invalidates).
            return
        time, kind = event
        sequence += 1
        valid[index] = sequence
        heapq.heappush(heap, (time, index, sequence, kind, index, None))

    def push_arrival(time: float, marker, request: Request) -> None:
        nonlocal sequence
        sequence += 1
        heapq.heappush(heap, (time, -1, sequence, ARRIVAL, marker, request))

    def dispatch(time: float, request: Request, retrying: bool) -> None:
        target = faults.dispatch(time, request, retrying)
        emit(time, ARRIVAL, -1 if target is None else target)
        if target is not None:
            push_run_event(target, runs[target].offer(request, now=time))

    def pull_arrival() -> None:
        nonlocal closed, last_key
        if closed:
            return
        request = next(arrivals, None)
        if request is None:
            closed = True
            for index, run in enumerate(runs):
                push_run_event(index, run.close())
            return
        key = (request.arrival_time, request.request_id)
        if last_key is not None and key < last_key:
            raise ConfigurationError(
                f"arrival source must be sorted by (arrival_time, "
                f"request_id); got {key} after {last_key}"
            )
        last_key = key
        push_arrival(request.arrival_time, None, request)

    for time, kind, replica in faults.timeline():
        sequence += 1
        heapq.heappush(heap, (time, -2, sequence, kind, replica, None))

    pull_arrival()
    while heap:
        time, _, seq, kind, index, request = heapq.heappop(heap)
        if kind == ARRIVAL:
            from_source = request is not None and index is None
            dispatch(time, request, retrying=index is _RETRY)
            if from_source:
                pull_arrival()
        elif kind == REPLICA_FAIL:
            emit(time, REPLICA_FAIL, index)
            valid[index] = 0  # the run's in-flight event died with it
            for retry_time, retry_request in faults.fail(time, index):
                push_arrival(retry_time, _RETRY, retry_request)
        elif kind == REPLICA_RECOVER:
            emit(time, REPLICA_RECOVER, index)
            event, released = faults.recover(time, index)
            push_run_event(index, event)
            for parked_request, retrying in released:
                dispatch(time, parked_request, retrying)
        else:
            if seq != valid[index]:
                continue  # cancelled by a failure after it was scheduled
            emit(time, kind, index)
            push_run_event(index, runs[index].advance())

    faults.finish()
    for index, run in enumerate(runs):
        if not run.finished:
            raise ConfigurationError(
                f"event loop drained with run {index} unfinished — a run "
                f"scheduled no event while holding work (driver invariant "
                f"violation)"
            )
