"""Online serving layer: continuous batching over the system simulators.

Generalizes the paper's offline Section VI protocol to multi-request
serving: arrival traces (:mod:`repro.workloads.arrivals`) are driven through
any :class:`~repro.systems.simulator.InferenceSimulator` by the
:class:`ContinuousBatchingEngine`, producing per-request TTFT/TPOT/latency
records in a :class:`ServingTrace` — or, with ``record_mode="streaming"``,
bounded-memory sketch summaries in a :class:`StreamingTrace`.  The engine
is event-driven (:mod:`repro.serving.events`): runs advance through an
event heap instead of a global clock loop, so arrival traces can be lazy
:class:`~repro.workloads.arrivals.RequestStream` iterators of any length.
"""

from repro.serving.engine import (
    PREEMPTION_MODES,
    ContinuousBatchingEngine,
    EngineRun,
)
from repro.serving.events import (
    ADMISSION,
    ARRIVAL,
    COMPLETION,
    EPOCH_BOUNDARY,
    PREEMPTION,
    PREFILL_CHUNK,
    REPLICA_FAIL,
    REPLICA_RECOVER,
    ContinuationSource,
    drive,
)
from repro.serving.sketches import (
    DEFAULT_QUANTILES,
    P2Quantile,
    StreamingGoodput,
    StreamingMean,
    StreamingPercentiles,
    StreamingTrace,
)
from repro.serving.trace import (
    RequestRecord,
    ServingTrace,
    normalize_class_slos,
)
from repro.workloads.arrivals import Request, RequestStream

__all__ = [
    "ADMISSION",
    "ARRIVAL",
    "COMPLETION",
    "DEFAULT_QUANTILES",
    "EPOCH_BOUNDARY",
    "PREEMPTION",
    "PREEMPTION_MODES",
    "PREFILL_CHUNK",
    "REPLICA_FAIL",
    "REPLICA_RECOVER",
    "ContinuationSource",
    "ContinuousBatchingEngine",
    "EngineRun",
    "P2Quantile",
    "Request",
    "RequestRecord",
    "RequestStream",
    "ServingTrace",
    "StreamingGoodput",
    "StreamingMean",
    "StreamingPercentiles",
    "StreamingTrace",
    "drive",
    "normalize_class_slos",
]
