"""Online serving layer: continuous batching over the system simulators.

Generalizes the paper's offline Section VI protocol to multi-request
serving: arrival traces (:mod:`repro.workloads.arrivals`) are driven through
any :class:`~repro.systems.simulator.InferenceSimulator` by the
:class:`ContinuousBatchingEngine`, producing per-request TTFT/TPOT/latency
records in a :class:`ServingTrace`.
"""

from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.trace import RequestRecord, ServingTrace
from repro.workloads.arrivals import Request

__all__ = [
    "ContinuousBatchingEngine",
    "Request",
    "RequestRecord",
    "ServingTrace",
]
