"""Per-request records and aggregate traces for the serving layer.

Follows the idioms of :mod:`repro.systems.trace`: frozen per-event records
collected into a mutable trace whose properties derive the figures-of-merit.
Where :class:`~repro.systems.trace.InferenceTrace` summarises one offline
``(b, s, n)`` run (the paper's Section VI protocol), :class:`ServingTrace`
summarises an online run of many requests, using the standard LLM-serving
latency definitions:

* **TTFT** (time to first token) — arrival to first generated token,
  including queueing and prefill;
* **TPOT** (time per output token) — mean inter-token gap after the first
  token;
* **end-to-end latency** — arrival to final token;
* **goodput** — generated tokens per second from requests that met their
  TTFT/TPOT SLOs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._common import ConfigurationError
from repro.evaluation.metrics import percentiles, serving_goodput


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request."""

    request_id: int
    arrival_time: float
    admission_time: float
    first_token_time: float
    completion_time: float
    input_len: int
    output_len: int

    def __post_init__(self) -> None:
        if not (self.arrival_time <= self.admission_time
                <= self.first_token_time <= self.completion_time):
            raise ConfigurationError(
                f"request {self.request_id}: timestamps must be ordered "
                f"arrival <= admission <= first token <= completion"
            )

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for admission into the running batch."""
        return self.admission_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token (queueing + prefill + first decode step)."""
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first one.

        Single-token outputs have no inter-token gap; their TPOT is 0 by
        convention (they can only violate a TTFT SLO, never a TPOT one).
        """
        if self.output_len <= 1:
            return 0.0
        return ((self.completion_time - self.first_token_time)
                / (self.output_len - 1))

    @property
    def e2e_latency(self) -> float:
        return self.completion_time - self.arrival_time


@dataclass
class ServingTrace:
    """End-to-end record of one simulated serving run."""

    system: str
    model: str
    records: list[RequestRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def observe(self, record: RequestRecord) -> None:
        """Record-sink entry point shared with
        :class:`~repro.serving.sketches.StreamingTrace` — the serving
        engine writes completions through ``observe`` so either record
        mode can sit behind it."""
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        """Makespan: serve start (t=0) to the last request's completion."""
        if not self.records:
            return 0.0
        return max(record.completion_time for record in self.records)

    @property
    def generated_tokens(self) -> int:
        return sum(record.output_len for record in self.records)

    @property
    def throughput(self) -> float:
        """Generated tokens per second over the whole run (0 when empty)."""
        if self.duration <= 0:
            return 0.0
        return self.generated_tokens / self.duration

    def ttft_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        if not self.records:
            return {}
        return percentiles((r.ttft for r in self.records), qs)

    def tpot_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        if not self.records:
            return {}
        return percentiles((r.tpot for r in self.records), qs)

    def latency_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        if not self.records:
            return {}
        return percentiles((r.e2e_latency for r in self.records), qs)

    def goodput(self, ttft_slo_s: float | None = None,
                tpot_slo_s: float | None = None) -> float:
        """SLO-conditioned token goodput (tokens per second)."""
        return serving_goodput(self.records, self.duration,
                               ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s)

    @property
    def mean_queueing_delay(self) -> float:
        if not self.records:
            return 0.0
        return (sum(r.queueing_delay for r in self.records)
                / len(self.records))

    def summary(self) -> dict:
        """Flat summary dictionary used by experiment reports."""
        ttft = self.ttft_percentiles()
        tpot = self.tpot_percentiles()
        latency = self.latency_percentiles()
        return {
            "system": self.system,
            "model": self.model,
            "num_requests": self.num_requests,
            "generated_tokens": self.generated_tokens,
            "duration_s": self.duration,
            "throughput_tokens_per_s": self.throughput,
            "mean_queueing_delay_s": self.mean_queueing_delay,
            "p50_ttft_s": ttft.get(50.0, 0.0),
            "p90_ttft_s": ttft.get(90.0, 0.0),
            "p99_ttft_s": ttft.get(99.0, 0.0),
            "p50_tpot_s": tpot.get(50.0, 0.0),
            "p99_tpot_s": tpot.get(99.0, 0.0),
            "p50_latency_s": latency.get(50.0, 0.0),
            "p99_latency_s": latency.get(99.0, 0.0),
        }
