"""Per-request records and aggregate traces for the serving layer.

Follows the idioms of :mod:`repro.systems.trace`: frozen per-event records
collected into a mutable trace whose properties derive the figures-of-merit.
Where :class:`~repro.systems.trace.InferenceTrace` summarises one offline
``(b, s, n)`` run (the paper's Section VI protocol), :class:`ServingTrace`
summarises an online run of many requests, using the standard LLM-serving
latency definitions:

* **TTFT** (time to first token) — arrival to first generated token,
  including queueing and prefill;
* **TPOT** (time per output token) — mean inter-token gap after the first
  token;
* **end-to-end latency** — arrival to final token;
* **goodput** — generated tokens per second from requests that met their
  TTFT/TPOT SLOs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._common import ConfigurationError
from repro.evaluation.metrics import percentiles, serving_goodput
from repro.workloads.arrivals import SLO_CLASSES

#: Terminal states a request can reach.  Every arrival terminates as
#: exactly one record in exactly one of these states; only ``completed``
#: requests generated tokens, so latency/throughput/goodput metrics are
#: computed over completed records while ``failed`` (retry budget
#: exhausted under replica failures) and ``shed`` (dropped by degraded-mode
#: load shedding) records carry the termination instant for availability
#: accounting.  Fault-free serves only ever produce ``completed`` records.
REQUEST_STATUSES = ("completed", "failed", "shed")


def normalize_class_slos(class_slos: dict | None) -> dict:
    """Canonicalise a per-class SLO mapping to ``{name: (ttft, tpot)}``.

    Accepts ``{name: (ttft_slo_s, tpot_slo_s)}`` tuples or
    ``{name: {"ttft_slo_s": ..., "tpot_slo_s": ...}}`` dicts (missing or
    ``None`` entries leave that dimension unconstrained).  ``None`` maps to
    ``{}`` — no class is SLO-constrained.
    """
    if not class_slos:
        return {}
    normalized: dict[str, tuple[float | None, float | None]] = {}
    for name, slos in class_slos.items():
        if name not in SLO_CLASSES:
            raise ConfigurationError(
                f"unknown slo_class {name!r} in class SLOs; "
                f"known: {list(SLO_CLASSES)}"
            )
        if isinstance(slos, dict):
            unknown = set(slos) - {"ttft_slo_s", "tpot_slo_s"}
            if unknown:
                raise ConfigurationError(
                    f"class {name!r}: unknown SLO keys {sorted(unknown)}; "
                    f"known: ['tpot_slo_s', 'ttft_slo_s']"
                )
            normalized[name] = (slos.get("ttft_slo_s"), slos.get("tpot_slo_s"))
        else:
            ttft, tpot = slos
            normalized[name] = (ttft, tpot)
    return normalized


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request.

    ``slo_class``/``prefix_len``/``prefix_hit``/``preemptions`` carry the
    session-workload facts through to trace summaries: the request's
    priority tier, how many of its prompt tokens were a shared session
    prefix, whether that prefix was resident at admission (so only the
    suffix KV was charged), and how many times the request was preempted
    by higher-priority arrivals before completing.  ``preempting`` marks a
    request whose own admission evicted running lower-priority work — its
    queueing delay is the *preemption latency* the chunked-prefill budget
    bounds — and ``prefill_chunks`` counts the prefill chunks it
    participated in (0 when chunking was disabled).

    Under fault injection (:mod:`repro.faults`) ``status`` records the
    terminal state (:data:`REQUEST_STATUSES`) and ``retries`` how many
    times the request was re-dispatched after a replica failure; for
    ``failed``/``shed`` records the admission/first-token/completion
    timestamps all equal the termination instant.
    """

    request_id: int
    arrival_time: float
    admission_time: float
    first_token_time: float
    completion_time: float
    input_len: int
    output_len: int
    slo_class: str = SLO_CLASSES[0]
    prefix_len: int = 0
    prefix_hit: bool = False
    preemptions: int = 0
    preempting: bool = False
    prefill_chunks: int = 0
    status: str = "completed"
    retries: int = 0

    def __post_init__(self) -> None:
        if not (self.arrival_time <= self.admission_time
                <= self.first_token_time <= self.completion_time):
            raise ConfigurationError(
                f"request {self.request_id}: timestamps must be ordered "
                f"arrival <= admission <= first token <= completion"
            )
        if self.slo_class not in SLO_CLASSES:
            raise ConfigurationError(
                f"request {self.request_id}: unknown slo_class "
                f"{self.slo_class!r}; known: {list(SLO_CLASSES)}"
            )
        if self.prefix_len < 0 or self.preemptions < 0:
            raise ConfigurationError(
                f"request {self.request_id}: prefix_len and preemptions "
                f"must be non-negative"
            )
        if self.prefill_chunks < 0:
            raise ConfigurationError(
                f"request {self.request_id}: prefill_chunks must be "
                f"non-negative"
            )
        if self.status not in REQUEST_STATUSES:
            raise ConfigurationError(
                f"request {self.request_id}: unknown status "
                f"{self.status!r}; known: {list(REQUEST_STATUSES)}"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"request {self.request_id}: retries must be non-negative"
            )

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for admission into the running batch."""
        return self.admission_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token (queueing + prefill + first decode step)."""
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first one.

        Single-token outputs have no inter-token gap; their TPOT is 0 by
        convention (they can only violate a TTFT SLO, never a TPOT one).
        """
        if self.output_len <= 1:
            return 0.0
        return ((self.completion_time - self.first_token_time)
                / (self.output_len - 1))

    @property
    def e2e_latency(self) -> float:
        return self.completion_time - self.arrival_time


@dataclass
class ServingTrace:
    """End-to-end record of one simulated serving run."""

    system: str
    model: str
    records: list[RequestRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def observe(self, record: RequestRecord) -> None:
        """Record-sink entry point shared with
        :class:`~repro.serving.sketches.StreamingTrace` — the serving
        engine writes completions through ``observe`` so either record
        mode can sit behind it."""
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        """Every terminated request, whatever its status."""
        return len(self.records)

    @property
    def completed_records(self) -> list[RequestRecord]:
        """Records that actually generated tokens.

        Latency/token metrics are computed over these; ``failed``/``shed``
        records (fault injection only) would otherwise credit tokens that
        were never produced.  Fault-free traces are all-completed, so every
        metric below is unchanged by the filter.
        """
        return [r for r in self.records if r.status == "completed"]

    @property
    def duration(self) -> float:
        """Makespan: serve start (t=0) to the last request's termination."""
        if not self.records:
            return 0.0
        return max(record.completion_time for record in self.records)

    @property
    def generated_tokens(self) -> int:
        return sum(record.output_len for record in self.completed_records)

    @property
    def throughput(self) -> float:
        """Generated tokens per second over the whole run (0 when empty)."""
        if self.duration <= 0:
            return 0.0
        return self.generated_tokens / self.duration

    def ttft_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        records = self.completed_records
        if not records:
            return {}
        return percentiles((r.ttft for r in records), qs)

    def tpot_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        records = self.completed_records
        if not records:
            return {}
        return percentiles((r.tpot for r in records), qs)

    def latency_percentiles(self, qs=(50, 90, 99)) -> dict[float, float]:
        records = self.completed_records
        if not records:
            return {}
        return percentiles((r.e2e_latency for r in records), qs)

    def goodput(self, ttft_slo_s: float | None = None,
                tpot_slo_s: float | None = None) -> float:
        """SLO-conditioned token goodput (tokens per second)."""
        return serving_goodput(self.completed_records, self.duration,
                               ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s)

    @property
    def mean_queueing_delay(self) -> float:
        records = self.completed_records
        if not records:
            return 0.0
        return (sum(r.queueing_delay for r in records)
                / len(records))

    # ------------------------------------------------------------------ #
    # resilience accounting (fault injection; all zero without faults)
    # ------------------------------------------------------------------ #
    @property
    def num_failed(self) -> int:
        """Requests that exhausted their retry budget under failures."""
        return sum(1 for r in self.records if r.status == "failed")

    @property
    def num_shed(self) -> int:
        """Requests dropped by degraded-mode load shedding."""
        return sum(1 for r in self.records if r.status == "shed")

    @property
    def num_retries(self) -> int:
        """Total re-dispatches across all terminated requests."""
        return sum(r.retries for r in self.records)

    # ------------------------------------------------------------------ #
    # session / SLO-class columns
    # ------------------------------------------------------------------ #
    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-bearing requests whose prefix was resident.

        Only requests that declared a shared prefix (``prefix_len > 0``)
        count; a trace with no session turns reports 0.0.
        """
        bearing = hits = 0
        for record in self.completed_records:
            if record.prefix_len > 0:
                bearing += 1
                hits += record.prefix_hit
        return hits / bearing if bearing else 0.0

    @property
    def num_preemptions(self) -> int:
        """Total preemptions suffered across all completed requests."""
        return sum(record.preemptions for record in self.completed_records)

    @property
    def preemption_waits(self) -> list[float]:
        """Queueing delays of requests whose admission preempted running
        work — the latency a higher-priority arrival paid before it could
        evict its way into the batch."""
        return [record.queueing_delay for record in self.completed_records
                if record.preempting]

    @property
    def p99_preemption_latency(self) -> float:
        """P99 of :attr:`preemption_waits` (0.0 when nothing preempted).

        With chunked prefill enabled this is the column the chunk budget
        bounds: preemption points recur at least once per chunk, so no
        preemptor waits longer than one chunk's priced duration plus a
        decode step.
        """
        waits = self.preemption_waits
        if not waits:
            return 0.0
        return percentiles(waits, (99,))[99.0]

    @property
    def prefill_chunks_per_request(self) -> float:
        """Mean prefill chunks per request (0.0 when chunking is off)."""
        records = self.completed_records
        if not records:
            return 0.0
        return (sum(record.prefill_chunks for record in records)
                / len(records))

    def per_class_summary(self, class_slos: dict | None = None) -> dict:
        """Per-SLO-class breakdown: ``{slo_class: {metric: value}}``.

        One entry per class present in the records.  ``class_slos`` maps
        class names to their goodput SLOs (any shape
        :func:`normalize_class_slos` accepts); classes without an entry
        report unconstrained goodput (equal to their token throughput).
        Goodput divides by the whole trace's duration, so class columns sum
        to the trace totals.
        """
        slos = normalize_class_slos(class_slos)
        grouped: dict[str, list[RequestRecord]] = {}
        for record in self.completed_records:
            grouped.setdefault(record.slo_class, []).append(record)
        duration = self.duration
        out = {}
        for name in sorted(grouped):
            records = grouped[name]
            ttft_slo_s, tpot_slo_s = slos.get(name, (None, None))
            out[name] = {
                "num_requests": len(records),
                "generated_tokens": sum(r.output_len for r in records),
                "goodput_tokens_per_s": serving_goodput(
                    records, duration, ttft_slo_s=ttft_slo_s,
                    tpot_slo_s=tpot_slo_s),
                "mean_ttft_s": sum(r.ttft for r in records) / len(records),
                "mean_queueing_delay_s": (sum(r.queueing_delay
                                              for r in records)
                                          / len(records)),
            }
        return out

    def summary(self) -> dict:
        """Flat summary dictionary used by experiment reports."""
        ttft = self.ttft_percentiles()
        tpot = self.tpot_percentiles()
        latency = self.latency_percentiles()
        return {
            "system": self.system,
            "model": self.model,
            "num_requests": self.num_requests,
            "generated_tokens": self.generated_tokens,
            "duration_s": self.duration,
            "throughput_tokens_per_s": self.throughput,
            "mean_queueing_delay_s": self.mean_queueing_delay,
            "p50_ttft_s": ttft.get(50.0, 0.0),
            "p90_ttft_s": ttft.get(90.0, 0.0),
            "p99_ttft_s": ttft.get(99.0, 0.0),
            "p50_tpot_s": tpot.get(50.0, 0.0),
            "p99_tpot_s": tpot.get(99.0, 0.0),
            "p50_latency_s": latency.get(50.0, 0.0),
            "p99_latency_s": latency.get(99.0, 0.0),
            "prefix_hit_rate": self.prefix_hit_rate,
            "num_preemptions": self.num_preemptions,
            "p99_preemption_latency_s": self.p99_preemption_latency,
            "prefill_chunks_per_request": self.prefill_chunks_per_request,
            "num_failed": self.num_failed,
            "num_shed": self.num_shed,
            "num_retries": self.num_retries,
        }
